//! # mcmap
//!
//! A Rust reproduction of *Kang, Yang, Kim, Bacivarov, Ha, Thiele — "Static
//! Mapping of Mixed-Critical Applications for Fault-Tolerant MPSoCs", DAC
//! 2014*: worst-case response-time analysis and design-space exploration
//! for MPSoCs that combine fault-tolerance hardening (re-execution, active
//! and passive replication) with mixed-criticality task dropping.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — platform and application models;
//! * [`hardening`] — hardening transforms and reliability analysis;
//! * [`sched`] — the holistic best/worst-case scheduling backend;
//! * [`sim`] — a discrete-event simulator with fault injection;
//! * [`ga`] — the multi-objective evolutionary framework (SPEA-II/NSGA-II);
//! * [`eval`] — the parallel, memoizing candidate-evaluation engine;
//! * [`core`] — Algorithm 1 (the mixed-criticality WCRT analysis) and the
//!   mapping DSE;
//! * [`lint`] — the static analyzer over models, hardening specs, and
//!   genomes (structured `MC0xxx` diagnostics);
//! * [`resilience`] — panic isolation, atomic checkpointing, corruption
//!   detection, and deterministic fault injection;
//! * [`serve`] — the DSE as a long-running multi-tenant job service
//!   (framed-JSON TCP protocol, sliced fair scheduling, cross-job
//!   evaluation cache);
//! * [`benchmarks`] — the Cruise, DT-med/large, and synthetic benchmarks.
//!
//! # Examples
//!
//! Analyzing the Cruise benchmark under a hardening plan (see
//! `examples/quickstart.rs` for a complete walkthrough):
//!
//! ```
//! use mcmap::benchmarks::cruise;
//!
//! let b = cruise();
//! assert_eq!(b.apps.num_apps(), 5);
//! ```

#![warn(missing_docs)]

pub use mcmap_benchmarks as benchmarks;
pub use mcmap_core as core;
pub use mcmap_eval as eval;
pub use mcmap_ga as ga;
pub use mcmap_hardening as hardening;
pub use mcmap_lint as lint;
pub use mcmap_model as model;
pub use mcmap_obs as obs;
pub use mcmap_resilience as resilience;
pub use mcmap_sched as sched;
pub use mcmap_serve as serve;
pub use mcmap_sim as sim;
pub use mcmap_telemetry as telemetry;
