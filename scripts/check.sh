#!/usr/bin/env bash
# Full local gate: formatting, lints, the whole test suite, the evaluation
# engine's determinism suite, the server and validation-campaign
# kill-and-resume smokes, and the eval-engine + fleet-scale + wcrt-analysis
# + delta-analysis + obs-overhead + telemetry-overhead + serve-load +
# sim-validation benches (which write the machine-readable
# results/BENCH_eval.json, results/BENCH_scale.json,
# results/BENCH_sched.json, results/BENCH_delta.json,
# results/BENCH_obs.json, results/BENCH_telemetry.json,
# results/BENCH_serve.json, and results/BENCH_sim.json — the fleet-scale
# smoke writes its JSON to a temp dir so the committed fleet-med artifact
# is regenerated only by scripts/bench_all.sh).
# Usage: scripts/check.sh [--fix]
#   --fix   apply rustfmt and clippy suggestions instead of just checking
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
    cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged -- -D warnings
else
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings
fi

cargo test --workspace -q

# Thread-count / cache invariance of the DSE (bit-identical Pareto fronts).
cargo test -q --test determinism

# Resilience gates: the chaos harness (seeded fault injection) and the
# kill-at-every-generation resume sweep.
cargo test -q --test chaos
cargo test -q --test resume

# Kill-and-resume smoke over the real CLI: start a checkpointed run,
# SIGKILL it mid-flight, resume, and require the resumed front to match an
# uninterrupted run of the same configuration byte-for-byte.
scripts/smoke_resume.sh

# Job-server smoke over the serve/client CLI: SIGTERM and SIGKILL a server
# mid-flight, restart it on the same jobs directory, resume every job, and
# require the resumed fronts to match an uninterrupted server's
# byte-for-byte.
scripts/smoke_serve.sh

# Validation-campaign smoke: SIGTERM a checkpointed Monte-Carlo campaign
# mid-flight, resume it on a different thread count, and require the
# resumed summary to match an uninterrupted run's byte-for-byte.
scripts/smoke_validate.sh

# Engine micro/macro bench; emits results/BENCH_eval.json and asserts the
# small-batch no-thrash floor (parallel >= 0.95x serial on DT-med).
cargo bench -p mcmap-bench --bench eval_engine

# Fleet scaling gate: serial vs. parallel exploration of a generated
# fleet workload with bit-identical fronts asserted, and >2x wall speedup
# asserted when the persistent pool has >= 4 participants; emits
# results/BENCH_scale.json. Smoke budget here — run the bench with its
# defaults (fleet-med, pop 8 x gens 2) for the committed artifact.
MCMAP_FLEET=fleet-small MCMAP_POP=6 MCMAP_GENS=1 \
MCMAP_BENCH_OUT="$(mktemp -d)" \
  cargo bench -p mcmap-bench --bench fleet_scale

# Analysis fast-path gate (bit-identical windows, >= 1.5x over the cold
# enumeration); emits results/BENCH_sched.json.
cargo bench -p mcmap-bench --bench wcrt_analysis

# Genome-delta incremental-analysis gate (bit-identical fronts, >= 2x
# fewer executed backend runs); emits results/BENCH_delta.json.
cargo bench -p mcmap-bench --bench delta_analysis

# Tracing overhead gate (budget 5 %); emits results/BENCH_obs.json.
cargo bench -p mcmap-bench --bench obs_overhead

# Metrics-collection overhead gate (budget 5 %); emits
# results/BENCH_telemetry.json.
cargo bench -p mcmap-bench --bench telemetry_overhead

# Multi-tenant serve load gate (100 concurrent jobs, zero failures,
# nonzero cross-job cache hits); emits results/BENCH_serve.json.
cargo bench -p mcmap-bench --bench serve_load

# Monte-Carlo validation gate: 1000 fault profiles against the cruise
# portfolio, zero WCRT-bound violations within coverage, thread-invariant
# summaries, and the closed-loop reaction mission holding bounds in every
# visited mode; emits results/BENCH_sim.json.
cargo bench -p mcmap-bench --bench sim_validation

echo "check.sh: all gates passed"
