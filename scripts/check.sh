#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# Usage: scripts/check.sh [--fix]
#   --fix   apply rustfmt and clippy suggestions instead of just checking
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
    cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged -- -D warnings
else
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings
fi

cargo test --workspace -q

echo "check.sh: all gates passed"
