#!/usr/bin/env bash
# Regenerate every machine-readable BENCH_*.json artifact and guard the
# schemas: after each emitter runs, the top-level key set of the fresh
# JSON is diffed against the committed artifact (HEAD). A key that
# appears or disappears is a schema drift the offline tooling consuming
# these files must hear about — the script exits nonzero and names it.
# Fresh files (no committed counterpart yet) are reported, not failed.
#
# Usage: scripts/bench_all.sh [--keep]
#   --keep   leave the regenerated JSONs in results/ (default: results/
#            is updated in place — that is the point of the script)
#
# Budget knobs pass through to the benches (MCMAP_POP, MCMAP_GENS,
# MCMAP_FLEET, MCMAP_THREADS, ...).
set -euo pipefail
cd "$(dirname "$0")/.."

# emitter bench -> artifact it writes
declare -A EMITTERS=(
    [eval_engine]=BENCH_eval.json
    [fleet_scale]=BENCH_scale.json
    [wcrt_analysis]=BENCH_sched.json
    [delta_analysis]=BENCH_delta.json
    [obs_overhead]=BENCH_obs.json
    [telemetry_overhead]=BENCH_telemetry.json
    [serve_load]=BENCH_serve.json
    [sim_validation]=BENCH_sim.json
)

keys_of() {
    jq -S 'keys' "$1"
}

drift=0
for bench in eval_engine fleet_scale wcrt_analysis delta_analysis \
             obs_overhead telemetry_overhead serve_load sim_validation; do
    artifact="results/${EMITTERS[$bench]}"
    echo "== $bench -> $artifact"
    cargo bench -q -p mcmap-bench --bench "$bench"

    if ! git cat-file -e "HEAD:$artifact" 2>/dev/null; then
        echo "   (new artifact — no committed schema to compare)"
        continue
    fi
    committed=$(git show "HEAD:$artifact" | jq -S 'keys')
    fresh=$(keys_of "$artifact")
    if [[ "$committed" != "$fresh" ]]; then
        echo "   SCHEMA DRIFT in $artifact:"
        diff <(echo "$committed") <(echo "$fresh") | sed 's/^/   /' || true
        drift=1
    else
        echo "   schema OK ($(echo "$fresh" | jq 'length') top-level keys)"
    fi
done

if [[ $drift -ne 0 ]]; then
    echo "bench_all.sh: schema drift detected — update the consumers and commit the new artifacts together" >&2
    exit 1
fi
echo "bench_all.sh: all artifacts regenerated, schemas stable"
