#!/usr/bin/env bash
# Kill-and-resume smoke over the real CLI.
#
# Three runs of the same exploration (cruise, fixed seed):
#   1. an uninterrupted baseline with checkpointing on;
#   2. a run stopped with SIGTERM (graceful: checkpoint + trace flush at the
#      next generation boundary, exit code 130), then resumed;
#   3. a run killed with SIGKILL (hard: no cleanup, possibly a torn trace
#      line), then resumed.
# Both resumed runs must print the exact front the baseline printed, and
# their stitched traces must parse cleanly with the same event count.
#
# Race-proof by construction: if a signal lands after the run already
# finished, the resume degenerates to a no-op replay of the final
# checkpoint, which must still match the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

POP=12
GENS=40
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

cargo build -q -p mcmap-bench --bin mcmap_cli
CLI=target/debug/mcmap_cli

run_baseline() {
    "$CLI" dse cruise "$POP" "$GENS" \
        --checkpoint "$TMP/baseline.ckpt" --trace "$TMP/baseline.jsonl" \
        > "$TMP/baseline.out"
}

# Starts a checkpointed run in the background, waits for its first
# checkpoint, delivers $1 (TERM|KILL), then resumes and compares.
interrupt_and_resume() {
    local sig="$1" tag="$2"
    local ckpt="$TMP/$tag.ckpt" trace="$TMP/$tag.jsonl"

    "$CLI" dse cruise "$POP" "$GENS" \
        --checkpoint "$ckpt" --trace "$trace" > "$TMP/$tag.part1.out" &
    local pid=$!
    for _ in $(seq 1 200); do
        [[ -f "$ckpt" ]] && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.05
    done
    kill "-$sig" "$pid" 2>/dev/null || true
    local code=0
    wait "$pid" || code=$?

    if [[ "$sig" == TERM && "$code" == 130 ]]; then
        grep -q "interrupted after generation" "$TMP/$tag.part1.out" \
            || { echo "smoke_resume: $tag: exit 130 without the partial-results notice"; exit 1; }
    fi
    [[ -f "$ckpt" ]] \
        || { echo "smoke_resume: $tag: no checkpoint survived the $sig"; exit 1; }

    "$CLI" dse cruise "$POP" "$GENS" \
        --resume "$ckpt" --checkpoint "$ckpt" --trace "$trace" > "$TMP/$tag.part2.out"
    # Only the resume notice and the trace *path* may differ.
    normalize() { grep -v "^resumed from checkpoint" "$1" | sed 's/trace written to [^ ]*/trace written to TRACE/'; }
    diff <(normalize "$TMP/baseline.out") <(normalize "$TMP/$tag.part2.out") \
        || { echo "smoke_resume: $tag: resumed front differs from the uninterrupted run"; exit 1; }

    # The stitched trace must parse cleanly end to end and contain exactly
    # the events of the uninterrupted trace.
    "$CLI" obs "$trace" > /dev/null \
        || { echo "smoke_resume: $tag: stitched trace does not parse"; exit 1; }
    local want got
    want=$(wc -l < "$TMP/baseline.jsonl")
    got=$(wc -l < "$trace")
    [[ "$want" == "$got" ]] \
        || { echo "smoke_resume: $tag: stitched trace has $got events, baseline $want"; exit 1; }
    echo "smoke_resume: $tag: resumed run matches the baseline ($got trace events)"
}

run_baseline
interrupt_and_resume TERM sigterm
interrupt_and_resume KILL sigkill
echo "smoke_resume: all kill-and-resume smokes passed"
