#!/usr/bin/env bash
# Kill-and-resume smoke over the job server's real CLI surface.
#
# Three servers, one jobs directory each, same two job specs (cruise,
# seeds 8 and 9):
#   1. a baseline server that runs both jobs to completion — their fronts
#      are the reference;
#   2. a server SIGTERMed mid-flight (graceful drain: running slices stop
#      at their next generation boundary, checkpoints written), then
#      restarted on the same directory — both jobs surface as interrupted,
#      resume, and must reproduce the reference fronts byte-for-byte;
#   3. the same with SIGKILL (no cleanup whatsoever, possibly a torn trace
#      line and a stale `running` status on disk).
#
# Race-proof by construction: if a signal lands after a job already
# completed, its resume degenerates to a no-op (the client tolerates the
# "not resumable" error and `wait` still returns `completed`).
set -euo pipefail
cd "$(dirname "$0")/.."

POP=12
GENS=12
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

cargo build -q -p mcmap-bench --bin mcmap_cli
CLI=target/debug/mcmap_cli

# Polls until the server accepts connections.
wait_ready() {
    local addr="$1"
    for _ in $(seq 1 100); do
        "$CLI" client "$addr" list > /dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "smoke_serve: server on $addr never became ready"
    exit 1
}

start_server() {
    local addr="$1" dir="$2"
    "$CLI" serve --addr "$addr" --jobs-dir "$dir" --workers 2 --slice 1 \
        > /dev/null 2>&1 &
    SERVER_PID=$!
    wait_ready "$addr"
}

submit_two() {
    local addr="$1"
    "$CLI" client "$addr" submit cruise "$POP" "$GENS" --seed 8 > /dev/null
    "$CLI" client "$addr" submit cruise "$POP" "$GENS" --seed 9 > /dev/null
}

wait_completed() {
    local addr="$1" tag="$2"
    for id in job-000001 job-000002; do
        local state
        state=$("$CLI" client "$addr" wait "$id") \
            || { echo "smoke_serve: $tag: $id ended $state, not completed"; exit 1; }
    done
}

fronts() {
    local addr="$1" out_prefix="$2"
    "$CLI" client "$addr" front job-000001 > "${out_prefix}1.json"
    "$CLI" client "$addr" front job-000002 > "${out_prefix}2.json"
}

# Interrupts a mid-flight server with $1, restarts it on the same jobs
# directory, resumes every job, and compares the fronts to the baseline.
interrupt_and_resume() {
    local sig="$1" tag="$2" port="$3"
    local addr="127.0.0.1:$port" dir="$TMP/$tag"

    start_server "$addr" "$dir"
    submit_two "$addr"
    # Wait until the first job has at least one checkpointed boundary, so
    # the signal lands mid-exploration rather than before any work.
    for _ in $(seq 1 200); do
        "$CLI" client "$addr" status job-000001 2>/dev/null \
            | grep -q '"generation_done":[0-9]' && break
        sleep 0.05
    done
    kill "-$sig" "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""

    # Restart on the same directory: unfinished jobs must surface as
    # interrupted (even after SIGKILL left a stale `running` on disk) and
    # resume bit-identically.
    start_server "$addr" "$dir"
    for id in job-000001 job-000002; do
        "$CLI" client "$addr" resume "$id" > /dev/null 2>&1 \
            || true # already completed before the signal landed
    done
    wait_completed "$addr" "$tag"
    fronts "$addr" "$TMP/${tag}_front"
    "$CLI" client "$addr" shutdown > /dev/null
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""

    for j in 1 2; do
        diff "$TMP/baseline_front$j.json" "$TMP/${tag}_front$j.json" \
            || { echo "smoke_serve: $tag: resumed front of job $j differs from the baseline"; exit 1; }
    done
    echo "smoke_serve: $tag: both resumed jobs match the baseline fronts"
}

# Baseline: both jobs run to completion uninterrupted.
BASE_ADDR="127.0.0.1:$((20000 + RANDOM % 20000))"
start_server "$BASE_ADDR" "$TMP/baseline"
submit_two "$BASE_ADDR"
wait_completed "$BASE_ADDR" baseline
fronts "$BASE_ADDR" "$TMP/baseline_front"
"$CLI" client "$BASE_ADDR" shutdown > /dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

interrupt_and_resume TERM sigterm "$((20000 + RANDOM % 20000))"
interrupt_and_resume KILL sigkill "$((20000 + RANDOM % 20000))"
echo "smoke_serve: all server kill-and-resume smokes passed"
