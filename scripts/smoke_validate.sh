#!/usr/bin/env bash
# Kill-and-resume smoke over the validation campaign CLI.
#
# One stored portfolio (cruise, fixed seed), then three campaign runs
# against it:
#   1. an uninterrupted baseline;
#   2. a checkpointed run stopped with SIGTERM (graceful: finish the
#      chunk in flight, checkpoint, exit code 130), then resumed — on a
#      different thread count, so the comparison also gates the
#      campaign's thread invariance;
#   3. (implicit) the portfolio round-trip itself: every run after the
#      first reads the portfolio back from disk.
# The resumed run must print byte-identical stdout to the baseline:
# the summary carries no trace of the interruption or the parallelism.
#
# Race-proof by construction: the final chunk also writes a checkpoint,
# so a signal landing after completion degenerates the resume into a
# no-op replay that must still match the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

POP=16
GENS=16
PROFILES=2000
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

cargo build -q -p mcmap-bench --bin mcmap_cli
CLI=target/debug/mcmap_cli

# A 1-profile run whose only job is to explore once and store the
# portfolio; every later run reuses the file and skips the DSE.
"$CLI" validate cruise "$POP" "$GENS" --portfolio "$TMP/portfolio" \
    --profiles 1 > /dev/null 2>&1
[[ -f "$TMP/portfolio" ]] \
    || { echo "smoke_validate: portfolio file was not written"; exit 1; }

# Uninterrupted baseline.
"$CLI" validate cruise "$POP" "$GENS" --portfolio "$TMP/portfolio" \
    --profiles "$PROFILES" > "$TMP/baseline.out" 2> /dev/null

# Checkpointed run, SIGTERMed after its first checkpoint lands.
CKPT="$TMP/campaign.ckpt"
"$CLI" validate cruise "$POP" "$GENS" --portfolio "$TMP/portfolio" \
    --profiles "$PROFILES" --checkpoint "$CKPT" \
    > "$TMP/part1.out" 2> "$TMP/part1.err" &
pid=$!
for _ in $(seq 1 400); do
    [[ -f "$CKPT" ]] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
kill -TERM "$pid" 2>/dev/null || true
code=0
wait "$pid" || code=$?

if [[ "$code" == 130 ]]; then
    grep -q "interrupted after" "$TMP/part1.err" \
        || { echo "smoke_validate: exit 130 without the resume hint"; exit 1; }
    grep -q "\[interrupted at" "$TMP/part1.out" \
        || { echo "smoke_validate: exit 130 without the partial-summary marker"; exit 1; }
fi
[[ -f "$CKPT" ]] \
    || { echo "smoke_validate: no checkpoint survived the SIGTERM"; exit 1; }

# Resume on a single thread; the baseline used the default pool. The
# summaries must nonetheless match byte for byte.
"$CLI" validate cruise "$POP" "$GENS" --portfolio "$TMP/portfolio" \
    --profiles "$PROFILES" --checkpoint "$CKPT" --resume --threads 1 \
    > "$TMP/resumed.out" 2> /dev/null

diff "$TMP/baseline.out" "$TMP/resumed.out" \
    || { echo "smoke_validate: resumed summary differs from the uninterrupted run"; exit 1; }

echo "smoke_validate: resumed campaign matches the baseline byte-for-byte"
