//! Round-trip (de)serialization of the model types behind the `serde`
//! feature — downstream users persist systems as JSON.

use mcmap_model::{
    AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcKind, Processor, Task, TaskGraph,
    Time,
};

fn sample_arch() -> Architecture {
    Architecture::builder()
        .processor(Processor::new("big", ProcKind::new(0), 18.0, 140.0, 5e-8))
        .processor(Processor::new("little", ProcKind::new(1), 6.0, 55.0, 8e-8))
        .fabric(Fabric::new(64).with_base_latency(Time::from_ticks(1)))
        .build()
        .unwrap()
}

fn sample_apps() -> AppSet {
    let hi = TaskGraph::builder("hi", Time::from_ticks(1_000))
        .deadline(Time::from_ticks(800))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(
            Task::new("a")
                .with_exec(
                    ProcKind::new(0),
                    ExecBounds::new(Time::from_ticks(10), Time::from_ticks(20)),
                )
                .with_exec(
                    ProcKind::new(1),
                    ExecBounds::new(Time::from_ticks(18), Time::from_ticks(36)),
                )
                .with_detect_overhead(Time::from_ticks(2))
                .with_voting_overhead(Time::from_ticks(1)),
        )
        .task(Task::new("b").with_uniform_exec(2, ExecBounds::exact(Time::from_ticks(5))))
        .channel(0, 1, 32)
        .build()
        .unwrap();
    let lo = TaskGraph::builder("lo", Time::from_ticks(2_000))
        .criticality(Criticality::Droppable { service: 2.5 })
        .task(Task::new("c").with_uniform_exec(2, ExecBounds::exact(Time::from_ticks(9))))
        .build()
        .unwrap();
    AppSet::new(vec![hi, lo]).unwrap()
}

#[test]
fn architecture_round_trips_through_json() {
    let arch = sample_arch();
    let json = serde_json::to_string(&arch).unwrap();
    let back: Architecture = serde_json::from_str(&json).unwrap();
    assert_eq!(arch, back);
    assert_eq!(back.fabric().transfer_time(64), Time::from_ticks(2));
}

#[test]
fn appset_round_trips_through_json() {
    let apps = sample_apps();
    let json = serde_json::to_string_pretty(&apps).unwrap();
    let back: AppSet = serde_json::from_str(&json).unwrap();
    assert_eq!(apps, back);
    assert_eq!(back.hyperperiod(), Time::from_ticks(2_000));
    assert_eq!(back.total_service(), 2.5);
    // Structure (channels, profiles, overheads) survives.
    let hi = back.app(mcmap_model::AppId::new(0));
    assert_eq!(hi.num_channels(), 1);
    assert_eq!(
        hi.task(mcmap_model::TaskId::new(0))
            .exec_on(ProcKind::new(1))
            .unwrap()
            .wcet,
        Time::from_ticks(36)
    );
}

#[test]
fn json_is_human_readable() {
    let json = serde_json::to_string_pretty(&sample_apps()).unwrap();
    assert!(json.contains("\"period\""));
    assert!(json.contains("\"NonDroppable\""));
    assert!(json.contains("\"service\""));
}
