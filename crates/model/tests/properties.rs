//! Property-based tests for the model crate.

use mcmap_model::{lcm_time, AppSet, Criticality, ExecBounds, Task, TaskGraph, TaskId, Time};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lcm_is_commutative_and_divisible(a in 1u64..10_000, b in 1u64..10_000) {
        let ab = lcm_time(Time::from_ticks(a), Time::from_ticks(b));
        let ba = lcm_time(Time::from_ticks(b), Time::from_ticks(a));
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.ticks() % a, 0);
        prop_assert_eq!(ab.ticks() % b, 0);
        prop_assert!(ab.ticks() <= a * b);
    }

    #[test]
    fn time_div_ceil_bounds(t in 0u64..1_000_000, d in 1u64..10_000) {
        let k = Time::from_ticks(t).div_ceil(Time::from_ticks(d));
        prop_assert!(k * d >= t);
        prop_assert!(k.saturating_sub(1) * d < t || t == 0);
    }

    #[test]
    fn saturating_ops_never_panic(a in any::<u64>(), b in any::<u64>()) {
        let x = Time::from_ticks(a);
        let y = Time::from_ticks(b);
        let _ = x.saturating_add(y);
        let _ = x.saturating_sub(y);
        let _ = x.saturating_mul(b);
        prop_assert!(x.saturating_sub(y) <= x);
        prop_assert!(x.saturating_add(y) >= x);
    }
}

/// Strategy: a random layered DAG description (tasks per layer, edges).
fn layered_dag() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (prop::collection::vec(1usize..4, 1..5), 1_000u64..100_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layered_graphs_always_build_and_topo_sort((layers, period) in layered_dag()) {
        let total: usize = layers.iter().sum();
        let mut b = TaskGraph::builder("g", Time::from_ticks(period));
        for i in 0..total {
            b = b.task(
                Task::new(format!("t{i}"))
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1 + i as u64))),
            );
        }
        // Chain layer l to layer l+1, first member to each.
        let mut offset = 0usize;
        let mut prev_first = None::<usize>;
        for width in &layers {
            if let Some(p) = prev_first {
                for i in 0..*width {
                    b = b.channel(p, offset + i, 8);
                }
            }
            prev_first = Some(offset);
            offset += width;
        }
        let g = b.build().expect("layered graphs are acyclic");
        prop_assert_eq!(g.num_tasks(), total);
        // Topological order respects all edges.
        let topo = g.topological_order();
        let pos = |t: TaskId| topo.iter().position(|&x| x == t).unwrap();
        for (_, c) in g.channels() {
            prop_assert!(pos(c.src) < pos(c.dst));
        }
        // Sources + successors cover every task exactly once in a BFS.
        let mut seen = vec![false; total];
        let mut stack: Vec<TaskId> = g.sources().collect();
        while let Some(t) = stack.pop() {
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            stack.extend(g.successors(t));
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn appset_hyperperiod_divides_by_all_periods(
        periods in prop::collection::vec(1u64..5_000, 1..6)
    ) {
        let graphs: Vec<TaskGraph> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                TaskGraph::builder(format!("a{i}"), Time::from_ticks(p))
                    .criticality(Criticality::Droppable { service: 1.0 })
                    .task(Task::new("t").with_uniform_exec(
                        1,
                        ExecBounds::exact(Time::from_ticks(1)),
                    ))
                    .build()
                    .expect("valid")
            })
            .collect();
        let set = AppSet::new(graphs).expect("nonempty");
        for &p in &periods {
            prop_assert_eq!(set.hyperperiod().ticks() % p, 0);
        }
        prop_assert_eq!(set.num_tasks(), periods.len());
        // Flat index is the inverse of task_refs enumeration.
        for (i, &r) in set.task_refs().iter().enumerate() {
            prop_assert_eq!(set.flat_index(r), i);
        }
    }
}
