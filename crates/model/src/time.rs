//! Discrete time values used throughout the library.
//!
//! All scheduling, analysis, and simulation code operates on an abstract
//! integer time base (think of one tick as a microsecond). Integer time keeps
//! fixed-point response-time iterations exact and makes analysis results
//! reproducible across platforms, which floating-point time would not.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in time or a duration, measured in abstract integer ticks.
///
/// `Time` is a thin wrapper around `u64` that prevents accidental mixing of
/// time quantities with other integers (task counts, byte sizes, ...).
/// Arithmetic is checked in debug builds and saturating semantics are
/// available explicitly via [`Time::saturating_sub`].
///
/// # Examples
///
/// ```
/// use mcmap_model::Time;
///
/// let wcet = Time::from_ticks(150);
/// let overhead = Time::from_ticks(10);
/// assert_eq!((wcet + overhead).ticks(), 160);
/// assert_eq!(wcet * 3, Time::from_ticks(450));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero duration / time origin.
    pub const ZERO: Time = Time(0);
    /// The largest representable time, used as "unbounded"/"unschedulable".
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from raw ticks.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::Time;
    /// assert_eq!(Time::from_ticks(42).ticks(), 42);
    /// ```
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` if this value is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero instead of panicking on underflow.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::Time;
    /// assert_eq!(Time::from_ticks(3).saturating_sub(Time::from_ticks(5)), Time::ZERO);
    /// ```
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Addition clamped at [`Time::MAX`] instead of panicking on overflow.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Multiplication clamped at [`Time::MAX`].
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> Time {
        Time(self.0.saturating_mul(factor))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Ceiling division: the number of whole periods of length `divisor`
    /// needed to cover `self`.
    ///
    /// This is the `⌈t / T⌉` that appears in every response-time equation.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::Time;
    /// assert_eq!(Time::from_ticks(10).div_ceil(Time::from_ticks(4)), 3);
    /// assert_eq!(Time::from_ticks(8).div_ceil(Time::from_ticks(4)), 2);
    /// assert_eq!(Time::ZERO.div_ceil(Time::from_ticks(4)), 0);
    /// ```
    #[inline]
    pub fn div_ceil(self, divisor: Time) -> u64 {
        assert!(divisor.0 != 0, "division of Time by zero");
        self.0.div_ceil(divisor.0)
    }

    /// Converts to a floating-point tick count (for objective computations).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Time::MAX {
            write!(f, "∞")
        } else {
            write!(f, "{}t", self.0)
        }
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

/// Least common multiple of two time values, saturating at [`Time::MAX`].
///
/// Used to compute the hyperperiod of an application set.
///
/// # Examples
///
/// ```
/// use mcmap_model::{lcm_time, Time};
/// assert_eq!(lcm_time(Time::from_ticks(4), Time::from_ticks(6)), Time::from_ticks(12));
/// ```
pub fn lcm_time(a: Time, b: Time) -> Time {
    if a.is_zero() || b.is_zero() {
        return Time::ZERO;
    }
    let g = gcd(a.0, b.0);
    Time((a.0 / g).saturating_mul(b.0))
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        let t = Time::from_ticks(123);
        assert_eq!(t.ticks(), 123);
        assert_eq!(u64::from(t), 123);
        assert_eq!(Time::from(123u64), t);
    }

    #[test]
    fn zero_and_max_constants() {
        assert!(Time::ZERO.is_zero());
        assert!(!Time::MAX.is_zero());
        assert!(Time::ZERO < Time::MAX);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Time::from_ticks(10);
        let b = Time::from_ticks(4);
        assert_eq!(a + b, Time::from_ticks(14));
        assert_eq!(a - b, Time::from_ticks(6));
        assert_eq!(a * 3, Time::from_ticks(30));
        assert_eq!(a / 2, Time::from_ticks(5));
        assert_eq!(a % b, Time::from_ticks(2));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = Time::from_ticks(5);
        t += Time::from_ticks(3);
        assert_eq!(t, Time::from_ticks(8));
        t -= Time::from_ticks(8);
        assert_eq!(t, Time::ZERO);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            Time::from_ticks(1).saturating_sub(Time::from_ticks(2)),
            Time::ZERO
        );
        assert_eq!(Time::MAX.saturating_add(Time::from_ticks(1)), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Time::MAX.checked_add(Time::from_ticks(1)), None);
        assert_eq!(
            Time::from_ticks(1).checked_add(Time::from_ticks(2)),
            Some(Time::from_ticks(3))
        );
    }

    #[test]
    fn div_ceil_matches_manual() {
        assert_eq!(Time::from_ticks(0).div_ceil(Time::from_ticks(7)), 0);
        assert_eq!(Time::from_ticks(1).div_ceil(Time::from_ticks(7)), 1);
        assert_eq!(Time::from_ticks(7).div_ceil(Time::from_ticks(7)), 1);
        assert_eq!(Time::from_ticks(8).div_ceil(Time::from_ticks(7)), 2);
    }

    #[test]
    #[should_panic(expected = "division of Time by zero")]
    fn div_ceil_by_zero_panics() {
        let _ = Time::from_ticks(1).div_ceil(Time::ZERO);
    }

    #[test]
    fn min_max_behave() {
        let a = Time::from_ticks(3);
        let b = Time::from_ticks(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn lcm_of_periods() {
        assert_eq!(
            lcm_time(Time::from_ticks(10), Time::from_ticks(15)),
            Time::from_ticks(30)
        );
        assert_eq!(
            lcm_time(Time::from_ticks(7), Time::from_ticks(7)),
            Time::from_ticks(7)
        );
        assert_eq!(lcm_time(Time::ZERO, Time::from_ticks(5)), Time::ZERO);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1u64, 2, 3].iter().map(|&t| Time::from_ticks(t)).sum();
        assert_eq!(total, Time::from_ticks(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_ticks(5).to_string(), "5t");
        assert_eq!(Time::MAX.to_string(), "∞");
    }
}
