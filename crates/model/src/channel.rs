//! Data-dependency channels between tasks.

use crate::TaskId;

/// A directed data dependency `e := (src_e, dst_e)` inside a task graph.
///
/// Each invocation of the producing task transfers `bytes` bytes to the
/// consuming task; if the two tasks are mapped to different processors the
/// transfer occupies the communication fabric for
/// [`Fabric::transfer_time`](crate::Fabric::transfer_time) ticks.
///
/// # Examples
///
/// ```
/// use mcmap_model::{Channel, TaskId};
/// let c = Channel::new(TaskId::new(0), TaskId::new(1), 128);
/// assert_eq!(c.bytes, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Message size per invocation, in bytes (the paper's `s_e`).
    pub bytes: u64,
}

impl Channel {
    /// Creates a channel.
    #[inline]
    pub const fn new(src: TaskId, dst: TaskId, bytes: u64) -> Self {
        Channel { src, dst, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_stores_endpoints() {
        let c = Channel::new(TaskId::new(2), TaskId::new(5), 16);
        assert_eq!(c.src, TaskId::new(2));
        assert_eq!(c.dst, TaskId::new(5));
        assert_eq!(c.bytes, 16);
    }

    #[test]
    fn channels_compare_structurally() {
        assert_eq!(
            Channel::new(TaskId::new(0), TaskId::new(1), 8),
            Channel::new(TaskId::new(0), TaskId::new(1), 8)
        );
        assert_ne!(
            Channel::new(TaskId::new(0), TaskId::new(1), 8),
            Channel::new(TaskId::new(0), TaskId::new(1), 9)
        );
    }
}
