//! # mcmap-model
//!
//! Platform and application models for fault-tolerant mixed-criticality
//! MPSoC mapping, following the system model of *Kang et al., "Static Mapping
//! of Mixed-Critical Applications for Fault-Tolerant MPSoCs", DAC 2014*
//! (§2.1):
//!
//! * an [`Architecture`] `A := (P, nw)` of heterogeneous [`Processor`]s
//!   (type, leakage power, dynamic power, transient fault rate `λ_p`)
//!   connected by a bandwidth-limited [`Fabric`];
//! * an [`AppSet`] `T` of periodic [`TaskGraph`]s, each either
//!   *non-droppable* (with a reliability constraint `f_t`) or *droppable*
//!   (with a service value `sv_t`) — see [`Criticality`];
//! * [`Task`]s carrying best/worst-case execution times per processor kind,
//!   voting overhead `ve_v`, and detection overhead `dt_v`; [`Channel`]s
//!   carrying `s_e` bytes per invocation.
//!
//! All durations use the integer [`Time`] type, keeping analyses exact and
//! reproducible.
//!
//! # Examples
//!
//! Building a two-application system on a two-processor platform:
//!
//! ```
//! use mcmap_model::{
//!     AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcKind, Processor, Task,
//!     TaskGraph, Time,
//! };
//!
//! # fn main() -> Result<(), mcmap_model::ModelError> {
//! let arch = Architecture::builder()
//!     .processor(Processor::new("arm0", ProcKind::new(0), 10.0, 45.0, 1e-7))
//!     .processor(Processor::new("arm1", ProcKind::new(0), 10.0, 45.0, 1e-7))
//!     .fabric(Fabric::new(32))
//!     .build()?;
//!
//! let control = TaskGraph::builder("control", Time::from_ticks(1_000))
//!     .criticality(Criticality::NonDroppable { max_failure_rate: 1e-5 })
//!     .task(Task::new("sense").with_uniform_exec(1, ExecBounds::new(
//!         Time::from_ticks(40), Time::from_ticks(90))))
//!     .task(Task::new("act").with_uniform_exec(1, ExecBounds::new(
//!         Time::from_ticks(60), Time::from_ticks(120))))
//!     .channel(0, 1, 64)
//!     .build()?;
//!
//! let video = TaskGraph::builder("video", Time::from_ticks(2_000))
//!     .criticality(Criticality::Droppable { service: 3.0 })
//!     .task(Task::new("decode").with_uniform_exec(1, ExecBounds::new(
//!         Time::from_ticks(300), Time::from_ticks(700))))
//!     .build()?;
//!
//! let apps = AppSet::new(vec![control, video])?;
//! assert_eq!(apps.hyperperiod(), Time::from_ticks(2_000));
//! assert_eq!(arch.num_processors(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod appset;
mod arch;
mod channel;
mod dot;
mod error;
mod graph;
mod ids;
mod task;
mod time;

pub use appset::AppSet;
pub use arch::{Architecture, ArchitectureBuilder, Fabric, ProcKind, Processor};
pub use channel::Channel;
pub use dot::{appset_to_dot, to_dot};
pub use error::ModelError;
pub use graph::{Criticality, TaskGraph, TaskGraphBuilder};
pub use ids::{AppId, ChannelId, ProcId, TaskId, TaskRef};
pub use task::{ExecBounds, Task};
pub use time::{lcm_time, Time};
