//! Typed identifiers for processors, applications, tasks, and channels.
//!
//! All identifiers are dense indices into the owning collection
//! ([`Architecture`](crate::Architecture) for processors, an
//! [`AppSet`](crate::AppSet) for applications, a
//! [`TaskGraph`](crate::TaskGraph) for tasks and channels). Newtypes keep the
//! index spaces apart at compile time — a [`TaskId`] can never be used where a
//! [`ProcId`] is expected.

use core::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a dense index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the dense index of this identifier.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Index of a processor within an [`Architecture`](crate::Architecture).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::ProcId;
    /// let p = ProcId::new(2);
    /// assert_eq!(p.index(), 2);
    /// assert_eq!(p.to_string(), "p2");
    /// ```
    ProcId,
    "p"
);

define_id!(
    /// Index of an application (task graph) within an
    /// [`AppSet`](crate::AppSet).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::AppId;
    /// assert_eq!(AppId::new(0).to_string(), "a0");
    /// ```
    AppId,
    "a"
);

define_id!(
    /// Index of a task within a [`TaskGraph`](crate::TaskGraph).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::TaskId;
    /// assert_eq!(TaskId::new(3).to_string(), "v3");
    /// ```
    TaskId,
    "v"
);

define_id!(
    /// Index of a channel within a [`TaskGraph`](crate::TaskGraph).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::ChannelId;
    /// assert_eq!(ChannelId::new(1).to_string(), "e1");
    /// ```
    ChannelId,
    "e"
);

/// A globally unique reference to a task: the owning application plus the
/// task's index within that application's graph.
///
/// # Examples
///
/// ```
/// use mcmap_model::{AppId, TaskId, TaskRef};
/// let r = TaskRef::new(AppId::new(1), TaskId::new(4));
/// assert_eq!(r.to_string(), "a1/v4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskRef {
    /// The owning application.
    pub app: AppId,
    /// The task within the application's graph.
    pub task: TaskId,
}

impl TaskRef {
    /// Creates a task reference.
    #[inline]
    pub const fn new(app: AppId, task: TaskId) -> Self {
        TaskRef { app, task }
    }
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.app, self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_usize() {
        let p: ProcId = 7usize.into();
        assert_eq!(usize::from(p), 7);
        let t: TaskId = 0usize.into();
        assert_eq!(t.index(), 0);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcId::new(0) < ProcId::new(1));
        assert!(TaskId::new(5) > TaskId::new(2));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<TaskId> = (0..4).map(TaskId::new).collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn display_uses_domain_prefixes() {
        assert_eq!(ProcId::new(0).to_string(), "p0");
        assert_eq!(AppId::new(1).to_string(), "a1");
        assert_eq!(TaskId::new(2).to_string(), "v2");
        assert_eq!(ChannelId::new(3).to_string(), "e3");
    }

    #[test]
    fn task_ref_orders_by_app_then_task() {
        let a = TaskRef::new(AppId::new(0), TaskId::new(9));
        let b = TaskRef::new(AppId::new(1), TaskId::new(0));
        assert!(a < b);
    }

    #[test]
    fn default_ids_are_index_zero() {
        assert_eq!(ProcId::default(), ProcId::new(0));
        assert_eq!(TaskId::default(), TaskId::new(0));
    }
}
