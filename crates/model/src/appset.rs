//! Application sets: the collection of task graphs sharing the MPSoC.

use crate::{lcm_time, AppId, Criticality, ModelError, TaskGraph, TaskId, TaskRef, Time};

/// The set `T` of applications sharing the platform.
///
/// Provides a flat, stable enumeration of every task in the system
/// ([`TaskRef`]) which the scheduling and analysis layers use as their index
/// space, plus the hyperperiod over which mixed-criticality state transitions
/// are analyzed (the system returns to the normal state at each hyperperiod
/// boundary, §3).
///
/// # Examples
///
/// ```
/// use mcmap_model::{AppSet, Criticality, ExecBounds, Task, TaskGraph, Time};
///
/// # fn main() -> Result<(), mcmap_model::ModelError> {
/// let a = TaskGraph::builder("a", Time::from_ticks(20))
///     .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(3))))
///     .build()?;
/// let b = TaskGraph::builder("b", Time::from_ticks(30))
///     .criticality(Criticality::Droppable { service: 2.0 })
///     .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(4))))
///     .build()?;
/// let set = AppSet::new(vec![a, b])?;
/// assert_eq!(set.hyperperiod(), Time::from_ticks(60));
/// assert_eq!(set.num_tasks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppSet {
    apps: Vec<TaskGraph>,
    hyperperiod: Time,
    /// Flat enumeration of all tasks, in (app, task) order.
    flat: Vec<TaskRef>,
    /// Prefix offsets: flat index of the first task of each app.
    offsets: Vec<usize>,
}

impl AppSet {
    /// Creates an application set from task graphs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyAppSet`] if `apps` is empty or
    /// [`ModelError::DeadlineExceedsPeriod`] if any app has a deadline beyond
    /// its period.
    pub fn new(apps: Vec<TaskGraph>) -> Result<Self, ModelError> {
        if apps.is_empty() {
            return Err(ModelError::EmptyAppSet);
        }
        for (i, app) in apps.iter().enumerate() {
            if app.deadline() > app.period() {
                return Err(ModelError::DeadlineExceedsPeriod { app: AppId::new(i) });
            }
        }
        let hyperperiod = apps
            .iter()
            .map(TaskGraph::period)
            .fold(Time::from_ticks(1), lcm_time);
        let mut flat = Vec::new();
        let mut offsets = Vec::with_capacity(apps.len());
        for (ai, app) in apps.iter().enumerate() {
            offsets.push(flat.len());
            for ti in 0..app.num_tasks() {
                flat.push(TaskRef::new(AppId::new(ai), TaskId::new(ti)));
            }
        }
        Ok(AppSet {
            apps,
            hyperperiod,
            flat,
            offsets,
        })
    }

    /// Creates an application set **without** validating any invariant.
    /// Intended for diagnostic tooling (`mcmap-lint`) that must inspect
    /// malformed systems; analyses still require [`AppSet::new`]. Zero
    /// periods are treated as one tick for the hyperperiod computation only.
    pub fn new_unvalidated(apps: Vec<TaskGraph>) -> Self {
        let hyperperiod = apps
            .iter()
            .map(|a| {
                if a.period().is_zero() {
                    Time::from_ticks(1)
                } else {
                    a.period()
                }
            })
            .fold(Time::from_ticks(1), lcm_time);
        let mut flat = Vec::new();
        let mut offsets = Vec::with_capacity(apps.len());
        for (ai, app) in apps.iter().enumerate() {
            offsets.push(flat.len());
            for ti in 0..app.num_tasks() {
                flat.push(TaskRef::new(AppId::new(ai), TaskId::new(ti)));
            }
        }
        AppSet {
            apps,
            hyperperiod,
            flat,
            offsets,
        }
    }

    /// Number of applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Total number of tasks across all applications.
    pub fn num_tasks(&self) -> usize {
        self.flat.len()
    }

    /// Returns an application by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn app(&self, id: AppId) -> &TaskGraph {
        &self.apps[id.index()]
    }

    /// Iterates over `(AppId, &TaskGraph)`.
    pub fn apps(&self) -> impl Iterator<Item = (AppId, &TaskGraph)> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| (AppId::new(i), a))
    }

    /// All application ids.
    pub fn app_ids(&self) -> impl Iterator<Item = AppId> {
        (0..self.apps.len()).map(AppId::new)
    }

    /// The least common multiple of all application periods.
    pub fn hyperperiod(&self) -> Time {
        self.hyperperiod
    }

    /// Flat enumeration of every task in the system, grouped by application.
    pub fn task_refs(&self) -> &[TaskRef] {
        &self.flat
    }

    /// The dense flat index of a task reference (inverse of
    /// [`AppSet::task_refs`] indexing).
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range for this set.
    pub fn flat_index(&self, r: TaskRef) -> usize {
        let base = self.offsets[r.app.index()];
        let idx = base + r.task.index();
        debug_assert_eq!(self.flat[idx], r);
        idx
    }

    /// Looks up the task data behind a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn task(&self, r: TaskRef) -> &crate::Task {
        self.apps[r.app.index()].task(r.task)
    }

    /// Applications that carry a reliability constraint (never droppable).
    pub fn nondroppable_apps(&self) -> impl Iterator<Item = AppId> + '_ {
        self.apps()
            .filter(|(_, a)| !a.criticality().is_droppable())
            .map(|(id, _)| id)
    }

    /// Applications the scheduler is allowed to drop.
    pub fn droppable_apps(&self) -> impl Iterator<Item = AppId> + '_ {
        self.apps()
            .filter(|(_, a)| a.criticality().is_droppable())
            .map(|(id, _)| id)
    }

    /// Total service value of the given set of alive applications: the sum of
    /// `sv_t` over droppable apps not in `dropped`, per §2.1. Non-droppable
    /// apps contribute no finite service (they can never be dropped).
    pub fn service_after_dropping(&self, dropped: &[AppId]) -> f64 {
        self.droppable_apps()
            .filter(|id| !dropped.contains(id))
            .map(|id| match self.app(id).criticality() {
                Criticality::Droppable { service } => service,
                Criticality::NonDroppable { .. } => unreachable!(),
            })
            .sum()
    }

    /// The maximum achievable service (nothing dropped).
    pub fn total_service(&self) -> f64 {
        self.service_after_dropping(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecBounds, Task};

    fn app(name: &str, period: u64, crit: Criticality, tasks: usize) -> TaskGraph {
        let mut b = TaskGraph::builder(name, Time::from_ticks(period)).criticality(crit);
        for i in 0..tasks {
            b = b.task(
                Task::new(format!("{name}{i}"))
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(2))),
            );
        }
        b.build().unwrap()
    }

    fn sample() -> AppSet {
        AppSet::new(vec![
            app(
                "hi",
                20,
                Criticality::NonDroppable {
                    max_failure_rate: 1e-4,
                },
                2,
            ),
            app("lo1", 30, Criticality::Droppable { service: 2.0 }, 3),
            app("lo2", 60, Criticality::Droppable { service: 5.0 }, 1),
        ])
        .unwrap()
    }

    #[test]
    fn empty_set_rejected() {
        assert_eq!(AppSet::new(vec![]).unwrap_err(), ModelError::EmptyAppSet);
    }

    #[test]
    fn hyperperiod_is_lcm() {
        assert_eq!(sample().hyperperiod(), Time::from_ticks(60));
    }

    #[test]
    fn flat_enumeration_and_inverse() {
        let set = sample();
        assert_eq!(set.num_tasks(), 6);
        for (i, &r) in set.task_refs().iter().enumerate() {
            assert_eq!(set.flat_index(r), i);
        }
        assert_eq!(
            set.task_refs()[2],
            TaskRef::new(AppId::new(1), TaskId::new(0))
        );
    }

    #[test]
    fn droppable_partition() {
        let set = sample();
        assert_eq!(
            set.nondroppable_apps().collect::<Vec<_>>(),
            vec![AppId::new(0)]
        );
        assert_eq!(
            set.droppable_apps().collect::<Vec<_>>(),
            vec![AppId::new(1), AppId::new(2)]
        );
    }

    #[test]
    fn service_accounting() {
        let set = sample();
        assert_eq!(set.total_service(), 7.0);
        assert_eq!(set.service_after_dropping(&[AppId::new(1)]), 5.0);
        assert_eq!(
            set.service_after_dropping(&[AppId::new(1), AppId::new(2)]),
            0.0
        );
    }

    #[test]
    fn deadline_beyond_period_rejected() {
        let g = TaskGraph::builder("g", Time::from_ticks(10))
            .deadline(Time::from_ticks(15))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .build()
            .unwrap();
        assert!(matches!(
            AppSet::new(vec![g]),
            Err(ModelError::DeadlineExceedsPeriod { .. })
        ));
    }

    #[test]
    fn task_lookup_through_ref() {
        let set = sample();
        let r = TaskRef::new(AppId::new(1), TaskId::new(2));
        assert_eq!(set.task(r).name, "lo12");
    }
}
