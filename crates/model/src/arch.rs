//! The MPSoC platform model: heterogeneous processors connected by a
//! communication fabric.
//!
//! Following §2.1 of the paper, an architecture `A := (P, nw)` consists of a
//! set of (possibly heterogeneous) processors and an on-chip communication
//! fabric `nw` (shared bus, crossbar, or NoC) characterized at system level
//! only by its bandwidth: faults on links are assumed to be handled by
//! low-level error-resilient techniques and are transparent here.

use crate::{ModelError, ProcId, Time};

/// A processor *kind* (ISA/micro-architecture class).
///
/// Tasks carry one execution-time profile per kind; two processors of the
/// same kind execute a task with identical timing. Kinds are dense indices so
/// profiles can be stored in small vectors.
///
/// # Examples
///
/// ```
/// use mcmap_model::ProcKind;
/// let risc = ProcKind::new(0);
/// let dsp = ProcKind::new(1);
/// assert_ne!(risc, dsp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcKind(u16);

impl ProcKind {
    /// Creates a processor kind from a dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        ProcKind(index)
    }

    /// Returns the dense index of this kind.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for ProcKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "kind{}", self.0)
    }
}

/// A single processing element.
///
/// Mirrors the paper's per-processor characterization: type, leakage
/// (static) power `stat_p`, dynamic power `dyn_p`, and a constant transient
/// fault rate `λ_p` per time unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    /// Human-readable name, e.g. `"arm0"`.
    pub name: String,
    /// The processor kind selecting task execution profiles.
    pub kind: ProcKind,
    /// Leakage power drawn whenever the processor is allocated (mW).
    pub stat_power: f64,
    /// Dynamic power drawn per unit utilization (mW at 100 % load).
    pub dyn_power: f64,
    /// Transient fault rate `λ_p`: expected faults per time tick.
    pub fault_rate: f64,
}

impl Processor {
    /// Creates a processor with the given characteristics.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::{ProcKind, Processor};
    /// let p = Processor::new("arm0", ProcKind::new(0), 10.0, 50.0, 1e-6);
    /// assert_eq!(p.name, "arm0");
    /// ```
    pub fn new(
        name: impl Into<String>,
        kind: ProcKind,
        stat_power: f64,
        dyn_power: f64,
        fault_rate: f64,
    ) -> Self {
        Processor {
            name: name.into(),
            kind,
            stat_power,
            dyn_power,
            fault_rate,
        }
    }

    /// Probability that a single execution of length `duration` on this
    /// processor is hit by at least one transient fault.
    ///
    /// Uses the standard Poisson-arrival model `1 − exp(−λ · t)` (cf. \[11\],
    /// \[12\] in the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::{ProcKind, Processor, Time};
    /// let p = Processor::new("p", ProcKind::new(0), 1.0, 1.0, 0.0);
    /// assert_eq!(p.fault_probability(Time::from_ticks(1000)), 0.0);
    /// ```
    pub fn fault_probability(&self, duration: Time) -> f64 {
        1.0 - (-self.fault_rate * duration.as_f64()).exp()
    }
}

/// The on-chip communication fabric.
///
/// The paper abstracts the interconnect to a maximum bandwidth `bw_nw`; we
/// additionally allow a constant per-message base latency so NoC-like hop
/// costs can be approximated.
#[derive(Debug, Clone, PartialEq)]
pub struct Fabric {
    /// Bytes transferred per time tick.
    pub bandwidth: u64,
    /// Fixed latency added to every inter-processor message.
    pub base_latency: Time,
}

impl Fabric {
    /// Creates a fabric with the given bandwidth (bytes/tick) and zero base
    /// latency.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::{Fabric, Time};
    /// let f = Fabric::new(8);
    /// assert_eq!(f.transfer_time(64), Time::from_ticks(8));
    /// ```
    pub fn new(bandwidth: u64) -> Self {
        Fabric {
            bandwidth,
            base_latency: Time::ZERO,
        }
    }

    /// Sets the per-message base latency.
    pub fn with_base_latency(mut self, latency: Time) -> Self {
        self.base_latency = latency;
        self
    }

    /// Worst-case time to transfer `bytes` across the fabric: base latency
    /// plus `⌈bytes / bandwidth⌉` ticks. Zero-byte messages still pay the
    /// base latency.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero; [`Architecture::validate`] rejects
    /// such fabrics before any analysis runs.
    pub fn transfer_time(&self, bytes: u64) -> Time {
        assert!(self.bandwidth > 0, "fabric bandwidth must be positive");
        self.base_latency + Time::from_ticks(bytes.div_ceil(self.bandwidth))
    }
}

impl Default for Fabric {
    /// An effectively-infinite fabric: 1 GiB/tick, zero latency. Useful in
    /// tests that want to ignore communication.
    fn default() -> Self {
        Fabric::new(1 << 30)
    }
}

/// A complete MPSoC platform: processors plus fabric.
///
/// # Examples
///
/// ```
/// use mcmap_model::{Architecture, Fabric, ProcKind, Processor};
///
/// # fn main() -> Result<(), mcmap_model::ModelError> {
/// let arch = Architecture::builder()
///     .processor(Processor::new("arm0", ProcKind::new(0), 10.0, 40.0, 1e-7))
///     .processor(Processor::new("dsp0", ProcKind::new(1), 6.0, 25.0, 5e-7))
///     .fabric(Fabric::new(16))
///     .build()?;
/// assert_eq!(arch.num_processors(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    processors: Vec<Processor>,
    fabric: Fabric,
}

impl Architecture {
    /// Starts building an architecture.
    pub fn builder() -> ArchitectureBuilder {
        ArchitectureBuilder::new()
    }

    /// Returns the number of processors in the platform.
    pub fn num_processors(&self) -> usize {
        self.processors.len()
    }

    /// Returns the processor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn processor(&self, id: ProcId) -> &Processor {
        &self.processors[id.index()]
    }

    /// Iterates over `(ProcId, &Processor)` pairs.
    pub fn processors(&self) -> impl Iterator<Item = (ProcId, &Processor)> {
        self.processors
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId::new(i), p))
    }

    /// All processor ids in the platform.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.processors.len()).map(ProcId::new)
    }

    /// Returns the communication fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Number of distinct processor kinds referenced by the platform.
    pub fn num_kinds(&self) -> usize {
        self.processors
            .iter()
            .map(|p| p.kind.index())
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Checks platform-level invariants.
    ///
    /// # Errors
    ///
    /// Returns an error if the platform has no processors, the fabric
    /// bandwidth is zero, or any processor has a non-finite/negative fault
    /// rate or power figure.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.processors.is_empty() {
            return Err(ModelError::EmptyArchitecture);
        }
        if self.fabric.bandwidth == 0 {
            return Err(ModelError::ZeroBandwidth);
        }
        for (id, p) in self.processors() {
            if !p.fault_rate.is_finite() || p.fault_rate < 0.0 {
                return Err(ModelError::InvalidFaultRate {
                    proc: id,
                    rate: p.fault_rate,
                });
            }
            if !p.stat_power.is_finite()
                || p.stat_power < 0.0
                || !p.dyn_power.is_finite()
                || p.dyn_power < 0.0
            {
                return Err(ModelError::InvalidPower { proc: id });
            }
        }
        Ok(())
    }
}

/// Builder for [`Architecture`].
#[derive(Debug, Default)]
pub struct ArchitectureBuilder {
    processors: Vec<Processor>,
    fabric: Fabric,
}

impl ArchitectureBuilder {
    /// Creates an empty builder with the default (effectively infinite)
    /// fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processor; ids are assigned in insertion order.
    pub fn processor(mut self, p: Processor) -> Self {
        self.processors.push(p);
        self
    }

    /// Adds `count` identical processors, numbering their names.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_model::{Architecture, ProcKind, Processor};
    /// # fn main() -> Result<(), mcmap_model::ModelError> {
    /// let arch = Architecture::builder()
    ///     .homogeneous(4, Processor::new("arm", ProcKind::new(0), 8.0, 30.0, 1e-7))
    ///     .build()?;
    /// assert_eq!(arch.num_processors(), 4);
    /// assert_eq!(arch.processor(mcmap_model::ProcId::new(3)).name, "arm3");
    /// # Ok(())
    /// # }
    /// ```
    pub fn homogeneous(mut self, count: usize, template: Processor) -> Self {
        for i in 0..count {
            let mut p = template.clone();
            p.name = format!("{}{}", template.name, i);
            self.processors.push(p);
        }
        self
    }

    /// Sets the communication fabric.
    pub fn fabric(mut self, fabric: Fabric) -> Self {
        self.fabric = fabric;
        self
    }

    /// Finalizes and validates the architecture.
    ///
    /// # Errors
    ///
    /// See [`Architecture::validate`].
    pub fn build(self) -> Result<Architecture, ModelError> {
        let arch = Architecture {
            processors: self.processors,
            fabric: self.fabric,
        };
        arch.validate()?;
        Ok(arch)
    }

    /// Finalizes **without** validating. Intended for diagnostic tooling
    /// (`mcmap-lint`) that must inspect malformed platforms; analyses still
    /// require [`ArchitectureBuilder::build`].
    pub fn build_unvalidated(self) -> Architecture {
        Architecture {
            processors: self.processors,
            fabric: self.fabric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(kind: u16, rate: f64) -> Processor {
        Processor::new("p", ProcKind::new(kind), 5.0, 20.0, rate)
    }

    #[test]
    fn builder_assigns_ids_in_order() {
        let arch = Architecture::builder()
            .processor(proc(0, 0.0))
            .processor(proc(1, 0.0))
            .build()
            .unwrap();
        assert_eq!(arch.processor(ProcId::new(0)).kind, ProcKind::new(0));
        assert_eq!(arch.processor(ProcId::new(1)).kind, ProcKind::new(1));
        let ids: Vec<_> = arch.proc_ids().collect();
        assert_eq!(ids, vec![ProcId::new(0), ProcId::new(1)]);
    }

    #[test]
    fn empty_architecture_is_rejected() {
        assert_eq!(
            Architecture::builder().build().unwrap_err(),
            ModelError::EmptyArchitecture
        );
    }

    #[test]
    fn zero_bandwidth_is_rejected() {
        let err = Architecture::builder()
            .processor(proc(0, 0.0))
            .fabric(Fabric::new(0))
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::ZeroBandwidth);
    }

    #[test]
    fn negative_fault_rate_is_rejected() {
        let err = Architecture::builder()
            .processor(proc(0, -1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidFaultRate { .. }));
    }

    #[test]
    fn nan_power_is_rejected() {
        let mut p = proc(0, 0.0);
        p.dyn_power = f64::NAN;
        let err = Architecture::builder().processor(p).build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidPower { .. }));
    }

    #[test]
    fn homogeneous_numbers_names() {
        let arch = Architecture::builder()
            .homogeneous(3, proc(0, 0.0))
            .build()
            .unwrap();
        let names: Vec<_> = arch.processors().map(|(_, p)| p.name.clone()).collect();
        assert_eq!(names, vec!["p0", "p1", "p2"]);
    }

    #[test]
    fn num_kinds_counts_max_kind_index() {
        let arch = Architecture::builder()
            .processor(proc(0, 0.0))
            .processor(proc(2, 0.0))
            .build()
            .unwrap();
        assert_eq!(arch.num_kinds(), 3);
    }

    #[test]
    fn transfer_time_includes_base_latency_and_rounds_up() {
        let f = Fabric::new(10).with_base_latency(Time::from_ticks(3));
        assert_eq!(f.transfer_time(0), Time::from_ticks(3));
        assert_eq!(f.transfer_time(1), Time::from_ticks(4));
        assert_eq!(f.transfer_time(25), Time::from_ticks(6));
    }

    #[test]
    fn fault_probability_grows_with_duration() {
        let p = proc(0, 1e-3);
        let short = p.fault_probability(Time::from_ticks(10));
        let long = p.fault_probability(Time::from_ticks(1000));
        assert!(short > 0.0 && short < long && long < 1.0);
    }

    #[test]
    fn fault_probability_zero_rate_is_zero() {
        let p = proc(0, 0.0);
        assert_eq!(p.fault_probability(Time::from_ticks(1_000_000)), 0.0);
    }
}
