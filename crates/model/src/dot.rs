//! GraphViz DOT export of application models, for documentation and
//! debugging.

use crate::{AppSet, Criticality, TaskGraph};
use core::fmt::Write;

/// Renders one task graph as a GraphViz digraph.
///
/// Nodes carry the task name and WCET range; edges carry the message size.
/// Droppable graphs are drawn dashed.
///
/// # Examples
///
/// ```
/// use mcmap_model::{to_dot, ExecBounds, Task, TaskGraph, Time};
/// # fn main() -> Result<(), mcmap_model::ModelError> {
/// let g = TaskGraph::builder("app", Time::from_ticks(100))
///     .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
///     .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(7))))
///     .channel(0, 1, 32)
///     .build()?;
/// let dot = to_dot(&g);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("\"a\" -> \"b\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    let style = match graph.criticality() {
        Criticality::NonDroppable { .. } => "solid",
        Criticality::Droppable { .. } => "dashed",
    };
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(
        out,
        "  label=\"{} (period {}, deadline {})\";",
        graph.name(),
        graph.period(),
        graph.deadline()
    );
    let _ = writeln!(out, "  node [shape=box, style={style}];");
    for (_, t) in graph.tasks() {
        let wcet = t.max_wcet();
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\nwcet {}\"];",
            t.name, t.name, wcet
        );
    }
    for (_, c) in graph.channels() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}B\"];",
            graph.task(c.src).name,
            graph.task(c.dst).name,
            c.bytes
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole application set as one digraph with a cluster per
/// application.
pub fn appset_to_dot(apps: &AppSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph system {{");
    let _ = writeln!(out, "  compound=true;");
    for (id, app) in apps.apps() {
        let style = if app.criticality().is_droppable() {
            "dashed"
        } else {
            "solid"
        };
        let _ = writeln!(out, "  subgraph \"cluster_{id}\" {{");
        let _ = writeln!(out, "    label=\"{} ({})\";", app.name(), app.period());
        let _ = writeln!(out, "    style={style};");
        for (tid, t) in app.tasks() {
            let _ = writeln!(out, "    \"{id}_{tid}\" [label=\"{}\"];", t.name);
        }
        for (_, c) in app.channels() {
            let _ = writeln!(out, "    \"{id}_{}\" -> \"{id}_{}\";", c.src, c.dst);
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecBounds, Task, Time};

    fn sample() -> TaskGraph {
        TaskGraph::builder("g", Time::from_ticks(50))
            .criticality(Criticality::Droppable { service: 1.0 })
            .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(3))))
            .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(4))))
            .channel(0, 1, 16)
            .build()
            .unwrap()
    }

    #[test]
    fn graph_dot_contains_nodes_edges_and_style() {
        let dot = to_dot(&sample());
        assert!(dot.contains("digraph \"g\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("\"x\" -> \"y\" [label=\"16B\"]"));
        assert!(dot.contains("wcet 4t"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn appset_dot_clusters_every_application() {
        let apps = AppSet::new(vec![sample(), sample()]).unwrap();
        let dot = appset_to_dot(&apps);
        assert!(dot.contains("subgraph \"cluster_a0\""));
        assert!(dot.contains("subgraph \"cluster_a1\""));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn balanced_braces() {
        for dot in [
            to_dot(&sample()),
            appset_to_dot(&AppSet::new(vec![sample()]).unwrap()),
        ] {
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        }
    }
}
