//! Tasks and their per-processor-kind execution profiles.
//!
//! Per §2.1 of the paper each task `v` carries `(bcet_v, wcet_v, ve_v, dt_v)`:
//! best/worst-case execution time, voting overhead (paid by the voter when the
//! task is replicated), and detection overhead (fault detection plus
//! context save/restore and roll-back for re-execution). On a heterogeneous
//! platform the execution bounds depend on the processor kind, so a task
//! stores one [`ExecBounds`] per [`ProcKind`] it can run on.

use crate::{ModelError, ProcKind, TaskId, Time};

/// Best- and worst-case execution time of one task on one processor kind.
///
/// # Examples
///
/// ```
/// use mcmap_model::{ExecBounds, Time};
/// let b = ExecBounds::new(Time::from_ticks(10), Time::from_ticks(25));
/// assert_eq!(b.bcet, Time::from_ticks(10));
/// assert_eq!(b.wcet, Time::from_ticks(25));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecBounds {
    /// Best-case execution time.
    pub bcet: Time,
    /// Worst-case execution time.
    pub wcet: Time,
}

impl ExecBounds {
    /// Creates execution bounds.
    #[inline]
    pub const fn new(bcet: Time, wcet: Time) -> Self {
        ExecBounds { bcet, wcet }
    }

    /// Bounds where best and worst case coincide.
    #[inline]
    pub const fn exact(t: Time) -> Self {
        ExecBounds { bcet: t, wcet: t }
    }

    /// The `[0, 0]` bounds used for tasks that do not execute at all
    /// (dropped tasks and idle passive replicas in Algorithm 1).
    pub const ZERO: ExecBounds = ExecBounds {
        bcet: Time::ZERO,
        wcet: Time::ZERO,
    };

    /// Returns `true` if `bcet ≤ wcet`.
    #[inline]
    pub fn is_wellformed(&self) -> bool {
        self.bcet <= self.wcet
    }
}

/// A task of a task graph.
///
/// Tasks are created via [`Task::new`] and configured with builder-style
/// `with_*` methods, then added to a
/// [`TaskGraphBuilder`](crate::TaskGraphBuilder).
///
/// # Examples
///
/// ```
/// use mcmap_model::{ExecBounds, ProcKind, Task, Time};
///
/// let t = Task::new("fft")
///     .with_exec(ProcKind::new(0), ExecBounds::new(Time::from_ticks(8), Time::from_ticks(20)))
///     .with_exec(ProcKind::new(1), ExecBounds::new(Time::from_ticks(4), Time::from_ticks(12)))
///     .with_detect_overhead(Time::from_ticks(2));
/// assert!(t.runs_on(ProcKind::new(1)));
/// assert!(!t.runs_on(ProcKind::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable name.
    pub name: String,
    /// Execution bounds per processor kind; `None` where the task cannot run.
    exec: Vec<Option<ExecBounds>>,
    /// Voting overhead `ve_v` incurred by this task's voter when replicated.
    pub voting_overhead: Time,
    /// Detection overhead `dt_v`: fault detection, context store/restore,
    /// and roll-back, paid per (re-)execution when the task is hardened by
    /// re-execution.
    pub detect_overhead: Time,
}

impl Task {
    /// Creates a task with no execution profiles and zero overheads.
    pub fn new(name: impl Into<String>) -> Self {
        Task {
            name: name.into(),
            exec: Vec::new(),
            voting_overhead: Time::ZERO,
            detect_overhead: Time::ZERO,
        }
    }

    /// Adds (or replaces) the execution bounds on one processor kind.
    pub fn with_exec(mut self, kind: ProcKind, bounds: ExecBounds) -> Self {
        if self.exec.len() <= kind.index() {
            self.exec.resize(kind.index() + 1, None);
        }
        self.exec[kind.index()] = Some(bounds);
        self
    }

    /// Convenience: identical bounds on every kind `0..num_kinds`.
    pub fn with_uniform_exec(mut self, num_kinds: usize, bounds: ExecBounds) -> Self {
        self.exec = vec![Some(bounds); num_kinds];
        self
    }

    /// Sets the voting overhead `ve_v`.
    pub fn with_voting_overhead(mut self, ve: Time) -> Self {
        self.voting_overhead = ve;
        self
    }

    /// Sets the detection overhead `dt_v`.
    pub fn with_detect_overhead(mut self, dt: Time) -> Self {
        self.detect_overhead = dt;
        self
    }

    /// Returns the execution bounds on `kind`, or `None` if the task cannot
    /// run on that kind.
    pub fn exec_on(&self, kind: ProcKind) -> Option<ExecBounds> {
        self.exec.get(kind.index()).copied().flatten()
    }

    /// Returns `true` if the task has an execution profile for `kind`.
    pub fn runs_on(&self, kind: ProcKind) -> bool {
        self.exec_on(kind).is_some()
    }

    /// Iterates over the kinds this task can execute on.
    pub fn supported_kinds(&self) -> impl Iterator<Item = ProcKind> + '_ {
        self.exec
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| ProcKind::new(i as u16))
    }

    /// The largest WCET over all supported kinds; useful for pessimistic
    /// utilization estimates before a mapping is fixed.
    pub fn max_wcet(&self) -> Time {
        self.exec
            .iter()
            .flatten()
            .map(|b| b.wcet)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Validates the task: it must run somewhere, and every profile must have
    /// `bcet ≤ wcet`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnrunnableTask`] or
    /// [`ModelError::InvertedExecutionBounds`] tagged with `id`.
    pub fn validate(&self, id: TaskId) -> Result<(), ModelError> {
        if !self.exec.iter().any(Option::is_some) {
            return Err(ModelError::UnrunnableTask { task: id });
        }
        for bounds in self.exec.iter().flatten() {
            if !bounds.is_wellformed() {
                return Err(ModelError::InvertedExecutionBounds { task: id });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(b: u64, w: u64) -> ExecBounds {
        ExecBounds::new(Time::from_ticks(b), Time::from_ticks(w))
    }

    #[test]
    fn exec_bounds_constructors() {
        assert_eq!(ExecBounds::exact(Time::from_ticks(5)), bounds(5, 5));
        assert_eq!(ExecBounds::ZERO, bounds(0, 0));
        assert!(bounds(1, 2).is_wellformed());
        assert!(!bounds(2, 1).is_wellformed());
    }

    #[test]
    fn with_exec_grows_table_sparsely() {
        let t = Task::new("t").with_exec(ProcKind::new(3), bounds(1, 2));
        assert!(t.runs_on(ProcKind::new(3)));
        assert!(!t.runs_on(ProcKind::new(0)));
        assert!(!t.runs_on(ProcKind::new(7)));
        assert_eq!(t.exec_on(ProcKind::new(3)), Some(bounds(1, 2)));
    }

    #[test]
    fn uniform_exec_covers_all_kinds() {
        let t = Task::new("t").with_uniform_exec(3, bounds(2, 4));
        let kinds: Vec<_> = t.supported_kinds().collect();
        assert_eq!(kinds.len(), 3);
        assert!(kinds.iter().all(|&k| t.exec_on(k) == Some(bounds(2, 4))));
    }

    #[test]
    fn max_wcet_over_kinds() {
        let t = Task::new("t")
            .with_exec(ProcKind::new(0), bounds(1, 9))
            .with_exec(ProcKind::new(1), bounds(1, 15));
        assert_eq!(t.max_wcet(), Time::from_ticks(15));
        assert_eq!(Task::new("empty").max_wcet(), Time::ZERO);
    }

    #[test]
    fn validate_rejects_unrunnable() {
        let err = Task::new("t").validate(TaskId::new(4)).unwrap_err();
        assert_eq!(
            err,
            ModelError::UnrunnableTask {
                task: TaskId::new(4)
            }
        );
    }

    #[test]
    fn validate_rejects_inverted_bounds() {
        let t = Task::new("t").with_exec(ProcKind::new(0), bounds(5, 2));
        assert!(matches!(
            t.validate(TaskId::new(0)),
            Err(ModelError::InvertedExecutionBounds { .. })
        ));
    }

    #[test]
    fn overhead_setters() {
        let t = Task::new("t")
            .with_voting_overhead(Time::from_ticks(3))
            .with_detect_overhead(Time::from_ticks(7));
        assert_eq!(t.voting_overhead, Time::from_ticks(3));
        assert_eq!(t.detect_overhead, Time::from_ticks(7));
    }

    #[test]
    fn later_with_exec_replaces_profile() {
        let t = Task::new("t")
            .with_exec(ProcKind::new(0), bounds(1, 2))
            .with_exec(ProcKind::new(0), bounds(3, 4));
        assert_eq!(t.exec_on(ProcKind::new(0)), Some(bounds(3, 4)));
    }
}
