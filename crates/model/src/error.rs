//! Error types for model construction and validation.

use crate::{AppId, ChannelId, ProcId, TaskId};
use core::fmt;

/// Error produced while building or validating a model.
///
/// Every constructor in this crate that can reject its input returns
/// `Result<_, ModelError>`; the variants identify the offending entity so the
/// caller can report precise diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A task graph contains a cycle involving the given task.
    CyclicGraph {
        /// The application that failed acyclicity validation.
        app: AppId,
        /// A task that lies on the detected cycle.
        task: TaskId,
    },
    /// A channel endpoint references a task index that does not exist.
    DanglingChannel {
        /// The offending channel.
        channel: ChannelId,
        /// The out-of-range task index used by the channel.
        task: TaskId,
    },
    /// A channel connects a task to itself.
    SelfLoop {
        /// The offending channel.
        channel: ChannelId,
    },
    /// A task has an empty execution-time table (cannot run anywhere).
    UnrunnableTask {
        /// The task with no execution profile.
        task: TaskId,
    },
    /// A task's best-case execution time exceeds its worst case.
    InvertedExecutionBounds {
        /// The offending task.
        task: TaskId,
    },
    /// A task graph's period is zero.
    ZeroPeriod,
    /// A task graph's deadline is zero.
    ZeroDeadline,
    /// The reliability bound of a non-droppable application is outside (0, 1].
    InvalidFailureRate {
        /// The rejected failure-rate bound.
        rate: f64,
    },
    /// The service value of a droppable application is not finite and positive.
    InvalidService {
        /// The rejected service value.
        service: f64,
    },
    /// An architecture has no processors.
    EmptyArchitecture,
    /// The communication fabric bandwidth is zero.
    ZeroBandwidth,
    /// A processor fault rate is negative or not finite.
    InvalidFaultRate {
        /// The processor with the rejected fault rate.
        proc: ProcId,
        /// The rejected rate.
        rate: f64,
    },
    /// A power figure is negative or not finite.
    InvalidPower {
        /// The processor with the rejected power figure.
        proc: ProcId,
    },
    /// An application set is empty.
    EmptyAppSet,
    /// A deadline exceeds the period, which the analyses in this library do
    /// not support (constrained-deadline model).
    DeadlineExceedsPeriod {
        /// The offending application.
        app: AppId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicGraph { app, task } => {
                write!(f, "task graph {app} contains a cycle through {task}")
            }
            ModelError::DanglingChannel { channel, task } => {
                write!(f, "channel {channel} references nonexistent task {task}")
            }
            ModelError::SelfLoop { channel } => {
                write!(f, "channel {channel} connects a task to itself")
            }
            ModelError::UnrunnableTask { task } => {
                write!(f, "task {task} has no execution profile for any processor kind")
            }
            ModelError::InvertedExecutionBounds { task } => {
                write!(f, "task {task} has bcet greater than wcet")
            }
            ModelError::ZeroPeriod => write!(f, "task graph period must be positive"),
            ModelError::ZeroDeadline => write!(f, "task graph deadline must be positive"),
            ModelError::InvalidFailureRate { rate } => {
                write!(f, "failure-rate bound {rate} is outside (0, 1]")
            }
            ModelError::InvalidService { service } => {
                write!(f, "service value {service} is not finite and positive")
            }
            ModelError::EmptyArchitecture => write!(f, "architecture has no processors"),
            ModelError::ZeroBandwidth => write!(f, "fabric bandwidth must be positive"),
            ModelError::InvalidFaultRate { proc, rate } => {
                write!(f, "processor {proc} has invalid fault rate {rate}")
            }
            ModelError::InvalidPower { proc } => {
                write!(f, "processor {proc} has a negative or non-finite power figure")
            }
            ModelError::EmptyAppSet => write!(f, "application set is empty"),
            ModelError::DeadlineExceedsPeriod { app } => {
                write!(f, "application {app} has a deadline greater than its period")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::CyclicGraph {
            app: AppId::new(0),
            task: TaskId::new(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("a0"));
        assert!(msg.contains("v3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_error(ModelError::ZeroPeriod);
    }

    #[test]
    fn variants_compare_by_value() {
        assert_eq!(
            ModelError::SelfLoop {
                channel: ChannelId::new(1)
            },
            ModelError::SelfLoop {
                channel: ChannelId::new(1)
            }
        );
        assert_ne!(
            ModelError::ZeroPeriod,
            ModelError::ZeroDeadline
        );
    }
}
