//! Error types for model construction and validation.

use crate::{AppId, ChannelId, ProcId, TaskId};
use core::fmt;

/// Error produced while building or validating a model.
///
/// Every constructor in this crate that can reject its input returns
/// `Result<_, ModelError>`; the variants identify the offending entity so the
/// caller can report precise diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A task graph contains a cycle involving the given task.
    CyclicGraph {
        /// The application that failed acyclicity validation.
        app: AppId,
        /// A task that lies on the detected cycle.
        task: TaskId,
    },
    /// A channel endpoint references a task index that does not exist.
    DanglingChannel {
        /// The offending channel.
        channel: ChannelId,
        /// The out-of-range task index used by the channel.
        task: TaskId,
    },
    /// A channel connects a task to itself.
    SelfLoop {
        /// The offending channel.
        channel: ChannelId,
    },
    /// A task has an empty execution-time table (cannot run anywhere).
    UnrunnableTask {
        /// The task with no execution profile.
        task: TaskId,
    },
    /// A task's best-case execution time exceeds its worst case.
    InvertedExecutionBounds {
        /// The offending task.
        task: TaskId,
    },
    /// A task graph's period is zero.
    ZeroPeriod,
    /// A task graph's deadline is zero.
    ZeroDeadline,
    /// The reliability bound of a non-droppable application is outside (0, 1].
    InvalidFailureRate {
        /// The rejected failure-rate bound.
        rate: f64,
    },
    /// The service value of a droppable application is not finite and positive.
    InvalidService {
        /// The rejected service value.
        service: f64,
    },
    /// An architecture has no processors.
    EmptyArchitecture,
    /// The communication fabric bandwidth is zero.
    ZeroBandwidth,
    /// A processor fault rate is negative or not finite.
    InvalidFaultRate {
        /// The processor with the rejected fault rate.
        proc: ProcId,
        /// The rejected rate.
        rate: f64,
    },
    /// A power figure is negative or not finite.
    InvalidPower {
        /// The processor with the rejected power figure.
        proc: ProcId,
    },
    /// An application set is empty.
    EmptyAppSet,
    /// A deadline exceeds the period, which the analyses in this library do
    /// not support (constrained-deadline model).
    DeadlineExceedsPeriod {
        /// The offending application.
        app: AppId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicGraph { app, task } => {
                write!(f, "task graph {app} contains a cycle through {task}")
            }
            ModelError::DanglingChannel { channel, task } => {
                write!(f, "channel {channel} references nonexistent task {task}")
            }
            ModelError::SelfLoop { channel } => {
                write!(f, "channel {channel} connects a task to itself")
            }
            ModelError::UnrunnableTask { task } => {
                write!(
                    f,
                    "task {task} has no execution profile for any processor kind"
                )
            }
            ModelError::InvertedExecutionBounds { task } => {
                write!(f, "task {task} has bcet greater than wcet")
            }
            ModelError::ZeroPeriod => write!(f, "task graph period must be positive"),
            ModelError::ZeroDeadline => write!(f, "task graph deadline must be positive"),
            ModelError::InvalidFailureRate { rate } => {
                write!(f, "failure-rate bound {rate} is outside (0, 1]")
            }
            ModelError::InvalidService { service } => {
                write!(f, "service value {service} is not finite and positive")
            }
            ModelError::EmptyArchitecture => write!(f, "architecture has no processors"),
            ModelError::ZeroBandwidth => write!(f, "fabric bandwidth must be positive"),
            ModelError::InvalidFaultRate { proc, rate } => {
                write!(f, "processor {proc} has invalid fault rate {rate}")
            }
            ModelError::InvalidPower { proc } => {
                write!(
                    f,
                    "processor {proc} has a negative or non-finite power figure"
                )
            }
            ModelError::EmptyAppSet => write!(f, "application set is empty"),
            ModelError::DeadlineExceedsPeriod { app } => {
                write!(
                    f,
                    "application {app} has a deadline greater than its period"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl ModelError {
    /// The stable diagnostic code of this error, shared with `mcmap-lint`
    /// so model validation and the static analyzer report violations in one
    /// `MC00xx` namespace. Codes are assigned in variant declaration order
    /// and never reused.
    pub fn code(&self) -> &'static str {
        match self {
            ModelError::CyclicGraph { .. } => "MC0001",
            ModelError::DanglingChannel { .. } => "MC0002",
            ModelError::SelfLoop { .. } => "MC0003",
            ModelError::UnrunnableTask { .. } => "MC0004",
            ModelError::InvertedExecutionBounds { .. } => "MC0005",
            ModelError::ZeroPeriod => "MC0006",
            ModelError::ZeroDeadline => "MC0007",
            ModelError::InvalidFailureRate { .. } => "MC0008",
            ModelError::InvalidService { .. } => "MC0009",
            ModelError::EmptyArchitecture => "MC0010",
            ModelError::ZeroBandwidth => "MC0011",
            ModelError::InvalidFaultRate { .. } => "MC0012",
            ModelError::InvalidPower { .. } => "MC0013",
            ModelError::EmptyAppSet => "MC0014",
            ModelError::DeadlineExceedsPeriod { .. } => "MC0015",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::CyclicGraph {
            app: AppId::new(0),
            task: TaskId::new(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("a0"));
        assert!(msg.contains("v3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_error(ModelError::ZeroPeriod);
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let samples = [
            ModelError::CyclicGraph {
                app: AppId::new(0),
                task: TaskId::new(0),
            },
            ModelError::DanglingChannel {
                channel: ChannelId::new(0),
                task: TaskId::new(0),
            },
            ModelError::SelfLoop {
                channel: ChannelId::new(0),
            },
            ModelError::UnrunnableTask {
                task: TaskId::new(0),
            },
            ModelError::InvertedExecutionBounds {
                task: TaskId::new(0),
            },
            ModelError::ZeroPeriod,
            ModelError::ZeroDeadline,
            ModelError::InvalidFailureRate { rate: 2.0 },
            ModelError::InvalidService { service: -1.0 },
            ModelError::EmptyArchitecture,
            ModelError::ZeroBandwidth,
            ModelError::InvalidFaultRate {
                proc: ProcId::new(0),
                rate: -1.0,
            },
            ModelError::InvalidPower {
                proc: ProcId::new(0),
            },
            ModelError::EmptyAppSet,
            ModelError::DeadlineExceedsPeriod { app: AppId::new(0) },
        ];
        let codes: Vec<&str> = samples.iter().map(ModelError::code).collect();
        assert_eq!(codes[0], "MC0001");
        assert_eq!(codes[14], "MC0015");
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be unique");
        assert!(codes.iter().all(|c| c.len() == 6 && c.starts_with("MC")));
    }

    #[test]
    fn variants_compare_by_value() {
        assert_eq!(
            ModelError::SelfLoop {
                channel: ChannelId::new(1)
            },
            ModelError::SelfLoop {
                channel: ChannelId::new(1)
            }
        );
        assert_ne!(ModelError::ZeroPeriod, ModelError::ZeroDeadline);
    }
}
