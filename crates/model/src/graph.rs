//! Task graphs (applications) with criticality annotations.
//!
//! An application is a directed acyclic task graph `t := (V_t, E_t, pr_t,
//! f_t, sv_t)` (§2.1): tasks, channels, an invocation period, and either a
//! reliability constraint `f_t` (non-droppable) or a service value `sv_t`
//! (droppable). One instance of the graph is released every `pr_t` ticks.

use crate::{Channel, ChannelId, ModelError, Task, TaskId, Time};

/// The criticality annotation of an application.
///
/// The paper encodes this as `f_t ∈ (0, 1]` for non-droppable applications
/// and `f_t = −1, sv_t` for droppable ones; we use an enum instead of the
/// sentinel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Criticality {
    /// The application must stay schedulable even under faults and its
    /// probability of unsafe execution per released instance must stay below
    /// `max_failure_rate` (the paper's `f_t`, failures per unit time
    /// normalized to the period). Its service value is conceptually `∞`.
    NonDroppable {
        /// Maximum allowed failures per released instance, in `(0, 1]`.
        max_failure_rate: f64,
    },
    /// The scheduler may drop the application in the critical system state;
    /// dropping it costs `service` quality-of-service units (the paper's
    /// `sv_t`).
    Droppable {
        /// Relative importance of the service provided by this application.
        service: f64,
    },
}

impl Criticality {
    /// Returns `true` for droppable applications.
    #[inline]
    pub fn is_droppable(&self) -> bool {
        matches!(self, Criticality::Droppable { .. })
    }

    /// The service value: `sv_t` for droppable applications, `+∞` for
    /// non-droppable ones (they can never be traded away).
    pub fn service(&self) -> f64 {
        match self {
            Criticality::NonDroppable { .. } => f64::INFINITY,
            Criticality::Droppable { service } => *service,
        }
    }

    /// The reliability bound `f_t` if the application is non-droppable.
    pub fn max_failure_rate(&self) -> Option<f64> {
        match self {
            Criticality::NonDroppable { max_failure_rate } => Some(*max_failure_rate),
            Criticality::Droppable { .. } => None,
        }
    }

    fn validate(&self) -> Result<(), ModelError> {
        match *self {
            Criticality::NonDroppable { max_failure_rate } => {
                if !(max_failure_rate > 0.0 && max_failure_rate <= 1.0) {
                    return Err(ModelError::InvalidFailureRate {
                        rate: max_failure_rate,
                    });
                }
            }
            Criticality::Droppable { service } => {
                if !(service.is_finite() && service > 0.0) {
                    return Err(ModelError::InvalidService { service });
                }
            }
        }
        Ok(())
    }
}

/// A periodic application described as a directed acyclic task graph.
///
/// Construct with [`TaskGraph::builder`]; the builder validates acyclicity,
/// channel endpoints, execution profiles, and the criticality annotation.
///
/// # Examples
///
/// ```
/// use mcmap_model::{Criticality, ExecBounds, ProcKind, Task, TaskGraph, Time};
///
/// # fn main() -> Result<(), mcmap_model::ModelError> {
/// let app = TaskGraph::builder("ctrl", Time::from_ticks(100))
///     .criticality(Criticality::NonDroppable { max_failure_rate: 1e-5 })
///     .task(Task::new("sense").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
///     .task(Task::new("act").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(7))))
///     .channel(0, 1, 64)
///     .build()?;
/// assert_eq!(app.num_tasks(), 2);
/// assert!(!app.criticality().is_droppable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    name: String,
    period: Time,
    deadline: Time,
    criticality: Criticality,
    tasks: Vec<Task>,
    channels: Vec<Channel>,
    /// Predecessor channel indices per task (derived, kept in sync).
    preds: Vec<Vec<ChannelId>>,
    /// Successor channel indices per task (derived, kept in sync).
    succs: Vec<Vec<ChannelId>>,
    /// A topological order of task ids (derived).
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Starts building a task graph with the given name and period.
    ///
    /// The deadline defaults to the period (constrained-deadline model).
    pub fn builder(name: impl Into<String>, period: Time) -> TaskGraphBuilder {
        TaskGraphBuilder {
            name: name.into(),
            period,
            deadline: None,
            criticality: Criticality::Droppable { service: 1.0 },
            tasks: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The invocation period `pr_t`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The relative end-to-end deadline (≤ period).
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The criticality annotation.
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Returns a task by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Iterates over `(TaskId, &Task)`.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::new(i), t))
    }

    /// All task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len()).map(TaskId::new)
    }

    /// Returns a channel by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Iterates over `(ChannelId, &Channel)`.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId::new(i), c))
    }

    /// Channels entering `task` (data the task consumes).
    pub fn in_channels(&self, task: TaskId) -> &[ChannelId] {
        &self.preds[task.index()]
    }

    /// Channels leaving `task` (data the task produces).
    pub fn out_channels(&self, task: TaskId) -> &[ChannelId] {
        &self.succs[task.index()]
    }

    /// Direct predecessor tasks of `task`.
    pub fn predecessors(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[task.index()]
            .iter()
            .map(|&c| self.channels[c.index()].src)
    }

    /// Direct successor tasks of `task`.
    pub fn successors(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[task.index()]
            .iter()
            .map(|&c| self.channels[c.index()].dst)
    }

    /// Tasks with no incoming channels.
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids()
            .filter(|&t| self.preds[t.index()].is_empty())
    }

    /// Tasks with no outgoing channels.
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids()
            .filter(|&t| self.succs[t.index()].is_empty())
    }

    /// A topological order of the tasks (computed once at build time).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }
}

/// Builder for [`TaskGraph`].
#[derive(Debug)]
pub struct TaskGraphBuilder {
    name: String,
    period: Time,
    deadline: Option<Time>,
    criticality: Criticality,
    tasks: Vec<Task>,
    channels: Vec<Channel>,
}

impl TaskGraphBuilder {
    /// Sets the criticality annotation (defaults to `Droppable { service: 1.0 }`).
    pub fn criticality(mut self, c: Criticality) -> Self {
        self.criticality = c;
        self
    }

    /// Sets an explicit relative deadline (defaults to the period).
    pub fn deadline(mut self, d: Time) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Adds a task; ids are assigned in insertion order. Returns the builder
    /// for chaining.
    pub fn task(mut self, t: Task) -> Self {
        self.tasks.push(t);
        self
    }

    /// Adds a task and reports its id through `out`.
    pub fn task_with_id(mut self, t: Task, out: &mut TaskId) -> Self {
        *out = TaskId::new(self.tasks.len());
        self.tasks.push(t);
        self
    }

    /// Adds a channel from task index `src` to task index `dst` carrying
    /// `bytes` bytes per invocation.
    pub fn channel(mut self, src: usize, dst: usize, bytes: u64) -> Self {
        self.channels
            .push(Channel::new(TaskId::new(src), TaskId::new(dst), bytes));
        self
    }

    /// Finalizes, validating all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns an error if the period or deadline is zero, the deadline
    /// exceeds the period, the criticality annotation is malformed, a channel
    /// endpoint is dangling or a self-loop, a task cannot run anywhere, a
    /// task has inverted execution bounds, or the graph is cyclic.
    pub fn build(self) -> Result<TaskGraph, ModelError> {
        if self.period.is_zero() {
            return Err(ModelError::ZeroPeriod);
        }
        let deadline = self.deadline.unwrap_or(self.period);
        if deadline.is_zero() {
            return Err(ModelError::ZeroDeadline);
        }
        self.criticality.validate()?;

        let n = self.tasks.len();
        for (i, t) in self.tasks.iter().enumerate() {
            t.validate(TaskId::new(i))?;
        }
        let mut preds: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        for (i, c) in self.channels.iter().enumerate() {
            let cid = ChannelId::new(i);
            for end in [c.src, c.dst] {
                if end.index() >= n {
                    return Err(ModelError::DanglingChannel {
                        channel: cid,
                        task: end,
                    });
                }
            }
            if c.src == c.dst {
                return Err(ModelError::SelfLoop { channel: cid });
            }
            succs[c.src.index()].push(cid);
            preds[c.dst.index()].push(cid);
        }

        let topo = topological_sort(n, &self.channels).map_err(|task| ModelError::CyclicGraph {
            app: crate::AppId::new(0), // patched by AppSet validation with the real id
            task,
        })?;

        Ok(TaskGraph {
            name: self.name,
            period: self.period,
            deadline,
            criticality: self.criticality,
            tasks: self.tasks,
            channels: self.channels,
            preds,
            succs,
            topo,
        })
    }
}

impl TaskGraphBuilder {
    /// Finalizes **without** validating any invariant. Intended for
    /// diagnostic tooling (`mcmap-lint`) that must be able to hold and
    /// inspect malformed graphs; every analysis entry point still expects
    /// validated input. Derived adjacency skips channels with out-of-range
    /// endpoints (the channels themselves are kept and reported by lint),
    /// and the topological order is best-effort: tasks caught in cycles are
    /// appended in index order.
    pub fn build_unvalidated(self) -> TaskGraph {
        let n = self.tasks.len();
        let deadline = self.deadline.unwrap_or(self.period);
        let mut preds: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut sortable = Vec::new();
        for (i, c) in self.channels.iter().enumerate() {
            if c.src.index() >= n || c.dst.index() >= n {
                continue;
            }
            let cid = ChannelId::new(i);
            succs[c.src.index()].push(cid);
            preds[c.dst.index()].push(cid);
            if c.src != c.dst {
                sortable.push(*c);
            }
        }
        let topo = match topological_sort(n, &sortable) {
            Ok(order) => order,
            Err(_) => {
                // Partial order: rerun Kahn manually, then append the
                // tasks stuck on cycles so every id appears exactly once.
                let mut indeg = vec![0usize; n];
                for c in &sortable {
                    indeg[c.dst.index()] += 1;
                }
                let mut order: Vec<TaskId> = Vec::with_capacity(n);
                let mut emitted = vec![false; n];
                let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
                while let Some(u) = queue.pop() {
                    emitted[u] = true;
                    order.push(TaskId::new(u));
                    for &cid in &succs[u] {
                        let c = &self.channels[cid.index()];
                        if c.src == c.dst {
                            continue;
                        }
                        let v = c.dst.index();
                        indeg[v] -= 1;
                        if indeg[v] == 0 {
                            queue.push(v);
                        }
                    }
                }
                order.extend((0..n).filter(|&i| !emitted[i]).map(TaskId::new));
                order
            }
        };

        TaskGraph {
            name: self.name,
            period: self.period,
            deadline,
            criticality: self.criticality,
            tasks: self.tasks,
            channels: self.channels,
            preds,
            succs,
            topo,
        }
    }
}

/// Kahn's algorithm; on a cycle returns some task on it as the error value.
fn topological_sort(n: usize, channels: &[Channel]) -> Result<Vec<TaskId>, TaskId> {
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in channels {
        indeg[c.dst.index()] += 1;
        adj[c.src.index()].push(c.dst.index());
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        order.push(TaskId::new(u));
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let on_cycle = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
        Err(TaskId::new(on_cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecBounds, Task};

    fn simple_task(name: &str, wcet: u64) -> Task {
        Task::new(name).with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
    }

    fn chain(n: usize) -> TaskGraph {
        let mut b = TaskGraph::builder("chain", Time::from_ticks(100));
        for i in 0..n {
            b = b.task(simple_task(&format!("t{i}"), 5));
        }
        for i in 1..n {
            b = b.channel(i - 1, i, 8);
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_structure() {
        let g = chain(3);
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_channels(), 2);
        assert_eq!(g.deadline(), g.period());
        let sources: Vec<_> = g.sources().collect();
        let sinks: Vec<_> = g.sinks().collect();
        assert_eq!(sources, vec![TaskId::new(0)]);
        assert_eq!(sinks, vec![TaskId::new(2)]);
    }

    #[test]
    fn predecessors_and_successors() {
        let g = chain(3);
        let mid = TaskId::new(1);
        assert_eq!(
            g.predecessors(mid).collect::<Vec<_>>(),
            vec![TaskId::new(0)]
        );
        assert_eq!(g.successors(mid).collect::<Vec<_>>(), vec![TaskId::new(2)]);
        assert_eq!(g.in_channels(mid).len(), 1);
        assert_eq!(g.out_channels(mid).len(), 1);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = chain(5);
        let topo = g.topological_order();
        assert_eq!(topo.len(), 5);
        let pos: Vec<usize> = (0..5)
            .map(|i| topo.iter().position(|t| t.index() == i).unwrap())
            .collect();
        for i in 1..5 {
            assert!(pos[i - 1] < pos[i], "edge {} -> {} violated", i - 1, i);
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let err = TaskGraph::builder("cyc", Time::from_ticks(10))
            .task(simple_task("a", 1))
            .task(simple_task("b", 1))
            .channel(0, 1, 1)
            .channel(1, 0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::CyclicGraph { .. }));
    }

    #[test]
    fn dangling_channel_is_rejected() {
        let err = TaskGraph::builder("g", Time::from_ticks(10))
            .task(simple_task("a", 1))
            .channel(0, 5, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DanglingChannel { .. }));
    }

    #[test]
    fn self_loop_is_rejected() {
        let err = TaskGraph::builder("g", Time::from_ticks(10))
            .task(simple_task("a", 1))
            .channel(0, 0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::SelfLoop { .. }));
    }

    #[test]
    fn zero_period_is_rejected() {
        let err = TaskGraph::builder("g", Time::ZERO)
            .task(simple_task("a", 1))
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::ZeroPeriod);
    }

    #[test]
    fn invalid_failure_rate_is_rejected() {
        for rate in [0.0, -0.5, 1.5, f64::NAN] {
            let err = TaskGraph::builder("g", Time::from_ticks(10))
                .criticality(Criticality::NonDroppable {
                    max_failure_rate: rate,
                })
                .task(simple_task("a", 1))
                .build()
                .unwrap_err();
            assert!(matches!(err, ModelError::InvalidFailureRate { .. }));
        }
    }

    #[test]
    fn invalid_service_is_rejected() {
        let err = TaskGraph::builder("g", Time::from_ticks(10))
            .criticality(Criticality::Droppable { service: -1.0 })
            .task(simple_task("a", 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidService { .. }));
    }

    #[test]
    fn criticality_helpers() {
        let hi = Criticality::NonDroppable {
            max_failure_rate: 1e-6,
        };
        let lo = Criticality::Droppable { service: 3.0 };
        assert!(!hi.is_droppable());
        assert!(lo.is_droppable());
        assert_eq!(hi.service(), f64::INFINITY);
        assert_eq!(lo.service(), 3.0);
        assert_eq!(hi.max_failure_rate(), Some(1e-6));
        assert_eq!(lo.max_failure_rate(), None);
    }

    #[test]
    fn explicit_deadline_is_kept() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .deadline(Time::from_ticks(80))
            .task(simple_task("a", 1))
            .build()
            .unwrap();
        assert_eq!(g.deadline(), Time::from_ticks(80));
    }

    #[test]
    fn diamond_graph_sources_and_sinks() {
        let g = TaskGraph::builder("diamond", Time::from_ticks(50))
            .task(simple_task("a", 1))
            .task(simple_task("b", 1))
            .task(simple_task("c", 1))
            .task(simple_task("d", 1))
            .channel(0, 1, 4)
            .channel(0, 2, 4)
            .channel(1, 3, 4)
            .channel(2, 3, 4)
            .build()
            .unwrap();
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
        assert_eq!(g.predecessors(TaskId::new(3)).count(), 2);
    }

    #[test]
    fn task_with_id_reports_index() {
        let mut id = TaskId::default();
        let _ = TaskGraph::builder("g", Time::from_ticks(10))
            .task(simple_task("a", 1))
            .task_with_id(simple_task("b", 1), &mut id)
            .build()
            .unwrap();
        assert_eq!(id, TaskId::new(1));
    }
}
