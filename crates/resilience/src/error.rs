//! The typed error surface of the resilience layer.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while persisting or recovering pipeline
/// artifacts. Every variant names the file involved so callers can report
/// actionable diagnostics (and tests can assert on the failure class).
#[derive(Debug)]
#[non_exhaustive]
pub enum ResilienceError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file being written or read.
        path: PathBuf,
        /// Which operation failed (`create`, `write`, `sync`, `rename`, …).
        op: &'static str,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// The file is shorter than its envelope header claims — the classic
    /// artifact of a crash mid-write.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The payload does not hash to the checksum recorded in the header.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The envelope carries a kind or version this build does not speak.
    VersionMismatch {
        /// The offending file.
        path: PathBuf,
        /// The header line found.
        found: String,
        /// The header this build writes and accepts.
        expected: String,
    },
    /// The file is structurally broken beyond the envelope (bad header
    /// syntax, unparseable payload).
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// A checkpoint was produced by a different problem/configuration and
    /// must not seed this run (resuming it would silently change results).
    ConfigMismatch {
        /// The offending checkpoint.
        path: PathBuf,
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        actual: u64,
        /// Human-readable per-field differences between the checkpoint's
        /// recorded configuration summary and the current one, each line
        /// shaped `field: checkpoint=<old> current=<new>`. Empty when the
        /// checkpoint predates config summaries or the divergence is
        /// outside the summarized fields (e.g. the model itself changed).
        diff: Vec<String>,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Io { path, op, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            ResilienceError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: truncated ({actual} of {expected} payload bytes)",
                path.display()
            ),
            ResilienceError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: checksum mismatch (header {expected:016x}, content {actual:016x})",
                path.display()
            ),
            ResilienceError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: unsupported envelope `{found}` (this build speaks `{expected}`)",
                path.display()
            ),
            ResilienceError::Malformed { path, detail } => {
                write!(f, "{}: malformed: {detail}", path.display())
            }
            ResilienceError::ConfigMismatch {
                path,
                expected,
                actual,
                diff,
            } => {
                write!(
                    f,
                    "{}: checkpoint belongs to a different run configuration \
                     (expected fingerprint {expected:016x}, found {actual:016x})",
                    path.display()
                )?;
                if !diff.is_empty() {
                    write!(f, "; mismatching fields: {}", diff.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ResilienceError {
    /// Shorthand constructor for I/O failures.
    pub fn io(path: &std::path::Path, op: &'static str, source: std::io::Error) -> Self {
        ResilienceError::Io {
            path: path.to_path_buf(),
            op,
            source,
        }
    }

    /// Whether the error means "the file on disk is damaged" (truncated,
    /// corrupt, or unreadable as an envelope) — the class that checkpoint
    /// recovery falls back from, as opposed to caller mistakes like
    /// [`ResilienceError::ConfigMismatch`].
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            ResilienceError::Truncated { .. }
                | ResilienceError::ChecksumMismatch { .. }
                | ResilienceError::VersionMismatch { .. }
                | ResilienceError::Malformed { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn renders_name_the_file_and_the_class() {
        let e = ResilienceError::Truncated {
            path: "/tmp/ck".into(),
            expected: 100,
            actual: 40,
        };
        let msg = e.to_string();
        assert!(msg.contains("/tmp/ck") && msg.contains("truncated"));
        assert!(e.is_corruption());

        let e = ResilienceError::io(Path::new("/x"), "rename", std::io::Error::other("boom"));
        assert!(e.to_string().contains("rename"));
        assert!(!e.is_corruption());
        assert!(std::error::Error::source(&e).is_some());

        let e = ResilienceError::ConfigMismatch {
            path: "/tmp/ck".into(),
            expected: 1,
            actual: 2,
            diff: vec![],
        };
        assert!(e.to_string().contains("different run configuration"));
        assert!(!e.to_string().contains("mismatching fields"));
        assert!(!e.is_corruption());
    }

    #[test]
    fn config_mismatch_renders_its_field_diff() {
        let e = ResilienceError::ConfigMismatch {
            path: "/tmp/ck".into(),
            expected: 1,
            actual: 2,
            diff: vec![
                "ga.population: checkpoint=12 current=24".into(),
                "ga.seed: checkpoint=8 current=9".into(),
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("mismatching fields"));
        assert!(msg.contains("ga.population: checkpoint=12 current=24"));
        assert!(msg.contains("ga.seed: checkpoint=8 current=9"));
    }
}
