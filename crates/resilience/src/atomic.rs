//! Torn-write-free file persistence: write temp + fsync + rename.

use crate::error::ResilienceError;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temp file, is fsynced, and is renamed into place, so readers (and a
/// crash at any instant) see either the old file or the complete new one —
/// never a torn mix.
///
/// # Errors
///
/// Returns [`ResilienceError::Io`] naming the failing operation.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), ResilienceError> {
    let tmp = stage(path, bytes)?;
    std::fs::rename(&tmp, path).map_err(|e| ResilienceError::io(path, "rename", e))?;
    sync_parent_dir(path);
    Ok(())
}

/// Like [`atomic_write`], but first rotates an existing `path` to
/// [`backup_path`] (`<path>.bak`), so one known-good previous version
/// survives even if the *new* content later turns out corrupt. Used for
/// checkpoints: the loader falls back to the `.bak` when the primary fails
/// its checksum.
///
/// # Errors
///
/// Returns [`ResilienceError::Io`] naming the failing operation.
pub fn atomic_write_rotating(path: &Path, bytes: &[u8]) -> Result<(), ResilienceError> {
    let tmp = stage(path, bytes)?;
    if path.exists() {
        let bak = backup_path(path);
        std::fs::rename(path, &bak).map_err(|e| ResilienceError::io(path, "rotate", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| ResilienceError::io(path, "rename", e))?;
    sync_parent_dir(path);
    Ok(())
}

/// The sibling path the previous version of `path` is rotated to.
pub fn backup_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        |n| n.to_os_string(),
    );
    name.push(".bak");
    path.with_file_name(name)
}

/// Writes and fsyncs the staging temp file, returning its path.
fn stage(path: &Path, bytes: &[u8]) -> Result<PathBuf, ResilienceError> {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("artifact"),
        |n| n.to_os_string(),
    );
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let mut file = File::create(&tmp).map_err(|e| ResilienceError::io(&tmp, "create", e))?;
    file.write_all(bytes)
        .map_err(|e| ResilienceError::io(&tmp, "write", e))?;
    file.sync_all()
        .map_err(|e| ResilienceError::io(&tmp, "sync", e))?;
    Ok(tmp)
}

/// Best-effort fsync of the containing directory so the rename itself is
/// durable. Failure is ignored: some filesystems refuse directory syncs,
/// and the write is already atomic with respect to readers either way.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcmap_resilience_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp() {
        let dir = tmpdir("atomic");
        let path = dir.join("a.json");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(leftovers.len(), 1, "no .tmp residue: {leftovers:?}");
    }

    #[test]
    fn rotation_keeps_the_previous_version_as_bak() {
        let dir = tmpdir("rotate");
        let path = dir.join("ck");
        atomic_write_rotating(&path, b"gen0").unwrap();
        assert!(!backup_path(&path).exists(), "first write has no previous");
        atomic_write_rotating(&path, b"gen1").unwrap();
        atomic_write_rotating(&path, b"gen2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"gen2");
        assert_eq!(std::fs::read(backup_path(&path)).unwrap(), b"gen1");
    }

    #[test]
    fn backup_path_appends_bak() {
        assert_eq!(
            backup_path(Path::new("/x/run.ckpt")),
            PathBuf::from("/x/run.ckpt.bak")
        );
    }
}
