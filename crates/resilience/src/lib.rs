//! # mcmap-resilience
//!
//! Crash-safety layer for the mcmap exploration pipeline. The paper treats
//! design-time exploration as the long-running offline phase that *must*
//! complete for the runtime guarantees to exist; this crate gives the
//! explorer itself the fault-tolerance discipline the modeled system gets:
//!
//! * [`atomic_write`] / [`atomic_write_rotating`] — torn-write-free
//!   artifact persistence (temp file + fsync + rename, with a `.bak`
//!   rotation for checkpoint fallback);
//! * [`seal`] / [`unseal`] — a versioned, checksummed envelope so a
//!   truncated or corrupted checkpoint is *detected* (typed
//!   [`ResilienceError`]) instead of silently mis-parsed;
//! * [`EvalFailure`] — the typed diagnostic a panicking candidate
//!   evaluation degrades into (instead of unwinding a multi-hour run);
//! * [`FaultPlan`] — a seeded, deterministic chaos plan injecting panics,
//!   delays, and checkpoint truncation at chosen generations/candidates,
//!   driving the `tests/chaos.rs` harness;
//! * [`install_stop_flag`] — a SIGINT/SIGTERM handler that requests a
//!   clean stop at the next generation boundary.
//!
//! The crate is dependency-free (std only) so it can sit below every other
//! pipeline crate in the dependency graph.
//!
//! # Examples
//!
//! ```
//! use mcmap_resilience::{atomic_write, fnv1a64, seal, unseal};
//!
//! let dir = std::env::temp_dir().join("mcmap_resilience_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("artifact.bin");
//!
//! let sealed = seal("demo", b"payload");
//! atomic_write(&path, &sealed).unwrap();
//! let bytes = std::fs::read(&path).unwrap();
//! assert_eq!(unseal("demo", &path, &bytes).unwrap(), b"payload");
//! assert_ne!(fnv1a64(b"payload"), fnv1a64(b"payloae"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atomic;
mod envelope;
mod error;
mod failure;
mod fault;
mod signal;

pub use atomic::{atomic_write, atomic_write_rotating, backup_path};
pub use envelope::{fnv1a64, seal, unseal, ENVELOPE_VERSION};
pub use error::ResilienceError;
pub use failure::{panic_message, EvalFailure};
pub use fault::FaultPlan;
pub use signal::{install_stop_flag, request_stop, reset_stop_flag, stop_requested};
