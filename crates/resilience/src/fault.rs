//! Deterministic fault injection for the chaos harness.

/// A seeded, fully deterministic plan of faults to inject into a run.
///
/// The chaos harness (`tests/chaos.rs`) builds one of these, threads it
/// through the exploration config, and asserts that the pipeline completes,
/// degrades gracefully, and — for a fixed plan — behaves identically across
/// repeats. Faults are addressed by *(batch, item)* coordinates: batch 0 is
/// the initial population, batch `g` is the offspring wave of generation
/// `g`; `item` is the candidate's position inside that batch. Coordinates
/// are scheduling-independent, so injection is deterministic for any
/// `--threads`.
///
/// Three fault classes are supported:
///
/// * **panics** — the evaluation closure panics for the first `attempts`
///   attempts at that coordinate (so `attempts <= retries` exercises
///   retry-rescue, `attempts > retries` exercises degradation);
/// * **delays** — the evaluation sleeps, shaking out scheduling races;
/// * **checkpoint truncation** — the checkpoint written after a chosen
///   generation is cut short, exercising corruption detection and `.bak`
///   fallback on resume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Per-million probability of a seeded panic at any coordinate.
    panic_ppm: u32,
    /// How many attempts seeded (rate-based) panics poison.
    panic_rate_attempts: u32,
    /// Explicit panic sites: (batch, item, attempts poisoned).
    panics: Vec<(u64, usize, u32)>,
    /// Explicit delay sites: (batch, item, microseconds).
    delays: Vec<(u64, usize, u64)>,
    /// Generations whose checkpoint write should be truncated.
    truncations: Vec<usize>,
}

impl FaultPlan {
    /// A plan with no faults, seeded for rate-based additions.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Injects a panic at `(batch, item)` for the first `attempts`
    /// evaluation attempts.
    #[must_use]
    pub fn panic_at(mut self, batch: u64, item: usize, attempts: u32) -> Self {
        self.panics.push((batch, item, attempts));
        self
    }

    /// Injects a delay of `micros` microseconds at `(batch, item)`.
    #[must_use]
    pub fn delay_at(mut self, batch: u64, item: usize, micros: u64) -> Self {
        self.delays.push((batch, item, micros));
        self
    }

    /// Truncates the checkpoint written after `generation`.
    #[must_use]
    pub fn truncate_checkpoint_at(mut self, generation: usize) -> Self {
        self.truncations.push(generation);
        self
    }

    /// Makes every coordinate panic with probability `ppm` per million,
    /// decided by a hash of (seed, batch, item); each such panic poisons
    /// the first `attempts` attempts.
    #[must_use]
    pub fn with_panic_rate(mut self, ppm: u32, attempts: u32) -> Self {
        self.panic_ppm = ppm.min(1_000_000);
        self.panic_rate_attempts = attempts;
        self
    }

    /// Whether this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.panic_ppm == 0
            && self.panics.is_empty()
            && self.delays.is_empty()
            && self.truncations.is_empty()
    }

    /// Whether evaluation attempt `attempt` (0-based) at `(batch, item)`
    /// should panic.
    pub fn should_panic(&self, batch: u64, item: usize, attempt: u32) -> bool {
        for &(b, i, attempts) in &self.panics {
            if b == batch && i == item && attempt < attempts {
                return true;
            }
        }
        if self.panic_ppm > 0 && attempt < self.panic_rate_attempts {
            let roll = mix(self.seed, batch, item as u64) % 1_000_000;
            return (roll as u32) < self.panic_ppm;
        }
        false
    }

    /// The injected delay at `(batch, item)`, in microseconds (0 = none).
    pub fn delay_micros(&self, batch: u64, item: usize) -> u64 {
        self.delays
            .iter()
            .filter(|&&(b, i, _)| b == batch && i == item)
            .map(|&(_, _, us)| us)
            .sum()
    }

    /// Whether the checkpoint written after `generation` should be
    /// truncated.
    pub fn truncate_checkpoint(&self, generation: usize) -> bool {
        self.truncations.contains(&generation)
    }
}

/// splitmix64-style avalanche over (seed, batch, item) — the same choice
/// the rest of the workspace uses for cheap deterministic hashing.
fn mix(seed: u64, batch: u64, item: u64) -> u64 {
    let mut z = seed
        .wrapping_add(batch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(item.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_sites_fire_exactly_where_addressed() {
        let plan = FaultPlan::new(1)
            .panic_at(2, 5, 1)
            .delay_at(3, 0, 250)
            .truncate_checkpoint_at(4);
        assert!(!plan.is_empty());
        assert!(plan.should_panic(2, 5, 0));
        assert!(!plan.should_panic(2, 5, 1), "only the first attempt");
        assert!(!plan.should_panic(2, 4, 0));
        assert!(!plan.should_panic(1, 5, 0));
        assert_eq!(plan.delay_micros(3, 0), 250);
        assert_eq!(plan.delay_micros(3, 1), 0);
        assert!(plan.truncate_checkpoint(4));
        assert!(!plan.truncate_checkpoint(3));
    }

    #[test]
    fn rate_based_panics_are_seed_deterministic() {
        let a = FaultPlan::new(7).with_panic_rate(200_000, 1);
        let b = FaultPlan::new(7).with_panic_rate(200_000, 1);
        let hits: Vec<bool> = (0..200).map(|i| a.should_panic(1, i, 0)).collect();
        assert_eq!(
            hits,
            (0..200)
                .map(|i| b.should_panic(1, i, 0))
                .collect::<Vec<_>>()
        );
        let n = hits.iter().filter(|&&h| h).count();
        assert!(n > 10 && n < 90, "~20% of 200 expected, got {n}");
        // A different seed produces a different pattern.
        let c = FaultPlan::new(8).with_panic_rate(200_000, 1);
        assert_ne!(
            hits,
            (0..200)
                .map(|i| c.should_panic(1, i, 0))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.should_panic(0, 0, 0));
        assert_eq!(plan.delay_micros(0, 0), 0);
        assert!(!plan.truncate_checkpoint(0));
    }
}
