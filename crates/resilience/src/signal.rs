//! Cooperative-stop plumbing: SIGINT/SIGTERM request a clean stop at the
//! next generation boundary instead of killing the process mid-write.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The process-wide stop request. Shared as an `Arc` so the same flag type
/// also serves per-job cancellation (a job server hands every exploration
/// its own `Arc<AtomicBool>`); the signal handler may only touch lock-free
/// state, so the `Arc` lives in a `OnceLock` that is initialized before the
/// handler is registered and read with a plain atomic load afterwards.
static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

fn flag() -> &'static Arc<AtomicBool> {
    STOP.get_or_init(|| Arc::new(AtomicBool::new(false)))
}

/// Installs SIGINT/SIGTERM handlers (on Unix; a no-op elsewhere) that set
/// a process-wide stop flag, and returns that flag. The exploration driver
/// polls it at every generation boundary and, when set, writes a final
/// checkpoint, flushes the trace, and returns with `interrupted = true`.
///
/// Safe to call more than once; later calls just return the same flag.
pub fn install_stop_flag() -> Arc<AtomicBool> {
    let f = Arc::clone(flag());
    #[cfg(unix)]
    sys::install();
    f
}

/// Whether a stop has been requested (by a signal or by
/// [`request_stop`]).
pub fn stop_requested() -> bool {
    flag().load(Ordering::SeqCst)
}

/// Requests a stop programmatically — what the signal handler does, but
/// callable from tests and non-Unix builds.
pub fn request_stop() {
    flag().store(true, Ordering::SeqCst);
}

/// Clears the stop flag (test isolation only).
pub fn reset_stop_flag() {
    flag().store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! Raw `signal(2)` binding. The workspace denies `unsafe_code`
    //! everywhere else; this module is the one place it is allowed, kept
    //! to the minimum surface: registering a handler that performs a
    //! single async-signal-safe atomic store.

    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only lock-free operations are async-signal-safe: `OnceLock::get`
        // is a single acquire load (the cell is always initialized before
        // `install` registers this handler), and the store is atomic.
        if let Some(f) = super::STOP.get() {
            f.store(true, Ordering::SeqCst);
        }
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the POSIX registration call; the handler
        // performs a single atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        let flag = install_stop_flag();
        reset_stop_flag();
        assert!(!stop_requested());
        request_stop();
        assert!(stop_requested());
        assert!(flag.load(Ordering::SeqCst));
        reset_stop_flag();
        assert!(!stop_requested());
        // Every caller sees the same flag.
        assert!(Arc::ptr_eq(&flag, &install_stop_flag()));
    }
}
