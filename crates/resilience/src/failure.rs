//! Typed diagnostics for candidate evaluations that panicked.

use std::any::Any;
use std::fmt;

/// What a worker panic during candidate evaluation degrades into.
///
/// Instead of unwinding (and killing) a multi-hour exploration, the
/// evaluation engine catches the panic, retries up to the configured
/// budget, and — if every attempt fails — records one of these alongside a
/// maximally-penalized infeasible evaluation. The run keeps going; the
/// diagnostic survives into [`DseOutcome`]-level reporting.
///
/// [`DseOutcome`]: https://docs.rs/mcmap-core
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalFailure {
    /// Stable hash of the candidate genome that failed (matches the memo
    /// cache's key stream, so a failure can be correlated with trace
    /// events without storing the genome itself).
    pub candidate: u64,
    /// Position of the candidate inside its evaluation batch.
    pub index: usize,
    /// How many evaluation attempts were made (1 + retries).
    pub attempts: u32,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "candidate {:016x} (batch index {}) failed after {} attempt{}: {}",
            self.candidate,
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// Renders a panic payload (as captured by `std::panic::catch_unwind`)
/// into the human-readable message it was raised with, or a placeholder
/// for non-string payloads.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_payloads_render_to_their_message() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "boom 7");
        let payload = std::panic::catch_unwind(|| std::panic::panic_any(42_u32)).unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }

    #[test]
    fn display_names_candidate_and_attempts() {
        let f = EvalFailure {
            candidate: 0xdead_beef,
            index: 3,
            attempts: 2,
            message: "division by zero".into(),
        };
        let msg = f.to_string();
        assert!(msg.contains("00000000deadbeef"), "{msg}");
        assert!(msg.contains("2 attempts"), "{msg}");
        assert!(msg.contains("division by zero"), "{msg}");
    }
}
