//! The versioned, checksummed envelope around persisted payloads.
//!
//! Format: one ASCII header line, then the raw payload bytes.
//!
//! ```text
//! #mcmap <kind> v1 len=<payload bytes> fnv=<16-hex-digit FNV-1a 64>\n
//! <payload…>
//! ```
//!
//! The header makes the three crash/corruption classes *detectable*
//! instead of silently mis-parsed: a version bump refuses old readers, the
//! length catches truncation (the normal artifact of a crash mid-write),
//! and the checksum catches bit rot or partial overwrites.

use crate::error::ResilienceError;
use std::path::Path;

/// The envelope revision this build writes and accepts.
pub const ENVELOPE_VERSION: u32 = 1;

/// FNV-1a 64-bit content hash — dependency-free, deterministic across
/// platforms, and plenty for corruption *detection* (not authentication).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in a checksummed envelope of the given `kind` (a short
/// ASCII tag naming the artifact family, e.g. `dse-checkpoint`).
pub fn seal(kind: &str, payload: &[u8]) -> Vec<u8> {
    debug_assert!(
        kind.bytes().all(|b| b.is_ascii_graphic()),
        "envelope kinds are bare ASCII tags"
    );
    let header = format!(
        "#mcmap {kind} v{ENVELOPE_VERSION} len={} fnv={:016x}\n",
        payload.len(),
        fnv1a64(payload)
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the envelope of `bytes` (as read from `path`, which is only
/// used for error context) and returns the payload.
///
/// # Errors
///
/// * [`ResilienceError::Malformed`] — no parseable header line;
/// * [`ResilienceError::VersionMismatch`] — wrong kind or version;
/// * [`ResilienceError::Truncated`] — fewer payload bytes than promised;
/// * [`ResilienceError::ChecksumMismatch`] — content does not hash to the
///   recorded checksum.
pub fn unseal(kind: &str, path: &Path, bytes: &[u8]) -> Result<Vec<u8>, ResilienceError> {
    let malformed = |detail: String| ResilienceError::Malformed {
        path: path.to_path_buf(),
        detail,
    };
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| malformed("missing envelope header line".into()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| malformed("non-UTF-8 envelope header".into()))?;
    let mut words = header.split_ascii_whitespace();
    if words.next() != Some("#mcmap") {
        return Err(malformed(format!("not an mcmap envelope: `{header}`")));
    }
    let found_kind = words.next().unwrap_or("");
    let found_version = words.next().unwrap_or("");
    let expected_version = format!("v{ENVELOPE_VERSION}");
    if found_kind != kind || found_version != expected_version {
        return Err(ResilienceError::VersionMismatch {
            path: path.to_path_buf(),
            found: format!("{found_kind} {found_version}"),
            expected: format!("{kind} {expected_version}"),
        });
    }
    let field = |prefix: &str| -> Result<&str, ResilienceError> {
        words
            .clone()
            .find_map(|w| w.strip_prefix(prefix))
            .ok_or_else(|| malformed(format!("header missing `{prefix}`")))
    };
    let len: usize = field("len=")?
        .parse()
        .map_err(|_| malformed("unparseable len= field".into()))?;
    let fnv = u64::from_str_radix(field("fnv=")?, 16)
        .map_err(|_| malformed("unparseable fnv= field".into()))?;

    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(ResilienceError::Truncated {
            path: path.to_path_buf(),
            expected: len,
            actual: payload.len(),
        });
    }
    let actual = fnv1a64(payload);
    if actual != fnv {
        return Err(ResilienceError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: fnv,
            actual,
        });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("/test/ck")
    }

    #[test]
    fn seal_unseal_roundtrips_arbitrary_bytes() {
        for payload in [&b""[..], b"hello", b"\x00\xff\n\n#mcmap fake v1"] {
            let sealed = seal("dse-checkpoint", payload);
            assert_eq!(unseal("dse-checkpoint", &p(), &sealed).unwrap(), payload);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let sealed = seal("dse-checkpoint", b"0123456789");
        let cut = &sealed[..sealed.len() - 4];
        match unseal("dse-checkpoint", &p(), cut) {
            Err(ResilienceError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!((expected, actual), (10, 6));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut sealed = seal("dse-checkpoint", b"0123456789");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x20;
        assert!(matches!(
            unseal("dse-checkpoint", &p(), &sealed),
            Err(ResilienceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_kind_or_version_is_refused() {
        let sealed = seal("memo-cache", b"x");
        assert!(matches!(
            unseal("dse-checkpoint", &p(), &sealed),
            Err(ResilienceError::VersionMismatch { .. })
        ));
        let bumped = String::from_utf8(seal("k", b"x"))
            .unwrap()
            .replace(" v1 ", " v9 ");
        assert!(matches!(
            unseal("k", &p(), bumped.as_bytes()),
            Err(ResilienceError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for junk in [
            &b""[..],
            b"random\n",
            b"#mcmap",
            b"#mcmap k v1 len=x fnv=y\n",
        ] {
            let err = unseal("k", &p(), junk).unwrap_err();
            assert!(err.is_corruption(), "{err}");
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
