//! A minimal JSON reader for the trace formats this crate itself writes.
//!
//! The workspace is offline (no serde); this hand-rolled recursive-descent
//! parser covers the full JSON grammar and is only ~150 lines, which keeps
//! `mcmap_cli obs` able to re-read any recorded JSONL trace.

use crate::event::{Event, EventKind, Key, Value};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written with a fraction or exponent.
    Num(f64),
    /// A negative integer literal (no `.`/`e`), kept exact.
    Int(i64),
    /// A non-negative integer literal (no `.`/`e`), kept exact.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a short description with a byte offset on malformed input.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at offset {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    // Integer literals stay exact (and re-render without a fraction),
    // which keeps JSONL canonical renderings stable across a round-trip.
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences.
                let len = match c {
                    0x00..=0x7f => 0,
                    0xc0..=0xdf => 1,
                    0xe0..=0xef => 2,
                    _ => 3,
                };
                let start = *pos - 1;
                *pos += len;
                let chunk = b.get(start..*pos).ok_or("truncated utf-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn map_of(json: &Json) -> Vec<(Key, Value)> {
    let Json::Obj(members) = json else {
        return Vec::new();
    };
    members
        .iter()
        .map(|(k, v)| {
            let value = match v {
                Json::Bool(b) => Value::Bool(*b),
                Json::UInt(n) => Value::U64(*n),
                Json::Int(n) => Value::I64(*n),
                Json::Num(n) => Value::F64(*n),
                Json::Str(s) => Value::Str(s.clone()),
                Json::Null => Value::F64(f64::NAN),
                _ => Value::Str(String::new()),
            };
            (Key::Owned(k.clone()), value)
        })
        .collect()
}

/// Reconstructs an [`Event`] from one parsed JSONL line.
///
/// # Errors
///
/// Returns a description of the first missing or mistyped member.
pub fn event_from_json(json: &Json) -> Result<Event, String> {
    let seq = json
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or("event without `seq`")?;
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .and_then(EventKind::parse)
        .ok_or("event without a valid `kind`")?;
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or("event without `name`")?
        .to_string();
    Ok(Event {
        seq,
        kind,
        name: Key::Owned(name),
        span: json.get("span").and_then(Json::as_u64),
        parent: json.get("parent").and_then(Json::as_u64),
        fields: json.get("fields").map(map_of).unwrap_or_default(),
        nondet: json.get("nondet").map(map_of).unwrap_or_default(),
    })
}

/// Parses a JSONL trace (one event per non-empty line).
///
/// # Errors
///
/// Returns the first malformed line's number and parse error.
pub fn events_from_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let json = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event_from_json(&json).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}

/// What [`events_from_jsonl_lossy`] salvaged from a possibly-truncated
/// trace file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceRecovery {
    /// Events recovered from the valid prefix.
    pub parsed_events: usize,
    /// Lines dropped (the first malformed line and everything after it).
    pub dropped_lines: usize,
    /// Bytes dropped with those lines.
    pub dropped_bytes: usize,
    /// Why the first dropped line failed to parse (`None` when nothing
    /// was dropped).
    pub error: Option<String>,
}

impl TraceRecovery {
    /// Whether anything had to be dropped.
    pub fn lossy(&self) -> bool {
        self.dropped_lines > 0
    }
}

/// The damage-tolerant sibling of [`events_from_jsonl`]: parses the valid
/// prefix of a trace and *reports* the rest instead of failing. A trace cut
/// short by a crash or `kill -9` typically ends in one torn line — this
/// keeps every complete event before it and accounts for the dropped tail
/// byte-exactly.
///
/// Everything from the first malformed line onward is dropped (not just
/// skipped): a torn line means the writer died mid-stream, so later bytes
/// are untrustworthy even if they happen to parse.
pub fn events_from_jsonl_lossy(text: &str) -> (Vec<Event>, TraceRecovery) {
    let mut events = Vec::new();
    let mut consumed = 0usize;
    let mut recovery = TraceRecovery::default();
    for (line_no, split) in text.split_inclusive('\n').enumerate() {
        let line = split.trim();
        if !line.is_empty() {
            match parse_json(line).and_then(|j| event_from_json(&j)) {
                Ok(ev) => events.push(ev),
                Err(e) => {
                    recovery.error = Some(format!("line {}: {e}", line_no + 1));
                    break;
                }
            }
        }
        consumed += split.len();
    }
    recovery.parsed_events = events.len();
    recovery.dropped_bytes = text.len() - consumed;
    recovery.dropped_lines = text[consumed..]
        .split_inclusive('\n')
        .filter(|l| !l.trim().is_empty())
        .count();
    (events, recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let j = parse_json(r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(j.get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("b").unwrap().as_str(), Some("x\ny"));
        let Json::Arr(items) = j.get("a").unwrap() else {
            panic!("array expected")
        };
        assert_eq!(items[1], Json::Num(2.5));
        assert_eq!(items[2], Json::Int(-3));
        assert_eq!(j.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
    }

    #[test]
    fn unicode_escapes_and_utf8_survive() {
        let j = parse_json(r#""été — ok""#).unwrap();
        assert_eq!(j.as_str(), Some("été — ok"));
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let ev = Event {
            seq: 12,
            kind: EventKind::Counter,
            name: "sched.analyze".into(),
            span: None,
            parent: Some(2),
            fields: vec![
                ("transitions".into(), 5u64.into()),
                ("feasible".into(), true.into()),
                ("codes".into(), "MC0110,MC0111".into()),
            ],
            nondet: vec![("wall_ns".into(), 999u64.into())],
        };
        let parsed = events_from_jsonl(&ev.to_jsonl()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], ev);
    }

    #[test]
    fn jsonl_reports_the_offending_line() {
        let err = events_from_jsonl("{\"seq\":1,\"kind\":\"mark\",\"name\":\"a\"}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn lossy_reader_salvages_the_valid_prefix() {
        let good = "{\"seq\":1,\"kind\":\"mark\",\"name\":\"a\"}\n\
                    {\"seq\":2,\"kind\":\"mark\",\"name\":\"b\"}\n";
        // A torn final line, as left behind by `kill -9` mid-write.
        let torn = "{\"seq\":3,\"kind\":\"ma";
        let (events, rec) = events_from_jsonl_lossy(&format!("{good}{torn}"));
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].seq, 2);
        assert!(rec.lossy());
        assert_eq!(rec.parsed_events, 2);
        assert_eq!(rec.dropped_lines, 1);
        assert_eq!(rec.dropped_bytes, torn.len());
        assert!(rec.error.as_deref().unwrap().starts_with("line 3:"));
    }

    #[test]
    fn lossy_reader_drops_everything_after_the_first_bad_line() {
        let text = "{\"seq\":1,\"kind\":\"mark\",\"name\":\"a\"}\n\
                    garbage\n\
                    {\"seq\":2,\"kind\":\"mark\",\"name\":\"b\"}\n";
        let (events, rec) = events_from_jsonl_lossy(text);
        assert_eq!(events.len(), 1);
        assert_eq!(rec.dropped_lines, 2, "the bad line and the orphan after");
        assert!(rec.dropped_bytes > "garbage\n".len());
    }

    #[test]
    fn lossy_reader_is_clean_on_intact_traces() {
        let text = "{\"seq\":1,\"kind\":\"mark\",\"name\":\"a\"}\n";
        let (events, rec) = events_from_jsonl_lossy(text);
        assert_eq!(events.len(), 1);
        assert!(!rec.lossy());
        assert_eq!(
            rec,
            TraceRecovery {
                parsed_events: 1,
                ..TraceRecovery::default()
            }
        );
        let (none, rec) = events_from_jsonl_lossy("");
        assert!(none.is_empty() && !rec.lossy());
    }
}
