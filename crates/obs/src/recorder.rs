//! The [`Recorder`]: the thread-safe handle every instrumented layer holds.
//!
//! A disabled recorder (the default) is a single `Option` check per call
//! site — no allocation, no locking — so instrumentation can stay
//! unconditionally compiled in.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventKind, Key, Value};
use crate::sink::{JsonlSink, RingSink, Sink};

/// Cheap, cloneable handle to the event bus. `Recorder::default()` is
/// disabled: every emission call returns immediately.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    /// Next sequence number (1-based). Fetch-add gives each event a unique,
    /// gapless id; on deterministic emission paths (sequential driver
    /// code) the resulting order is replay-stable.
    seq: AtomicU64,
    /// Stack of currently-open span ids, for parent attribution.
    stack: Mutex<Vec<u64>>,
    sinks: Vec<Box<dyn Sink>>,
    /// The ring sink, if one was configured, for in-process readback.
    ring: Option<Arc<RingSink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => f
                .debug_struct("Recorder")
                .field("seq", &inner.seq.load(Ordering::Relaxed))
                .field("sinks", &inner.sinks.len())
                .finish(),
        }
    }
}

/// Configures and builds an enabled [`Recorder`].
#[derive(Default)]
pub struct RecorderBuilder {
    ring_capacity: Option<usize>,
    sinks: Vec<Box<dyn Sink>>,
}

impl std::fmt::Debug for RecorderBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderBuilder")
            .field("ring_capacity", &self.ring_capacity)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl RecorderBuilder {
    /// Starts an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retains the most recent `capacity` events in memory, readable via
    /// [`Recorder::events`].
    #[must_use]
    pub fn ring(mut self, capacity: usize) -> Self {
        self.ring_capacity = Some(capacity);
        self
    }

    /// Streams every event to `path` as JSON Lines.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be created.
    pub fn jsonl(mut self, path: &Path) -> std::io::Result<Self> {
        self.sinks.push(Box::new(JsonlSink::create(path)?));
        Ok(self)
    }

    /// Streams events to `path` as JSON Lines in *resume* mode: the file
    /// is opened for appending and events with `seq <= skip_upto` are
    /// suppressed. Used when continuing an interrupted run whose salvaged
    /// trace already holds the first `skip_upto` events — the driver
    /// re-emits the deterministic preamble (to rebuild span parentage)
    /// without duplicating lines on disk.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened.
    pub fn jsonl_append(mut self, path: &Path, skip_upto: u64) -> std::io::Result<Self> {
        self.sinks
            .push(Box::new(JsonlSink::append(path, skip_upto)?));
        Ok(self)
    }

    /// Attaches a custom sink.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the enabled recorder. With no explicit sink configured, a
    /// 64k-event ring is attached so the recorder is never a black hole.
    pub fn build(mut self) -> Recorder {
        if self.ring_capacity.is_none() && self.sinks.is_empty() {
            self.ring_capacity = Some(1 << 16);
        }
        let ring = self.ring_capacity.map(|cap| Arc::new(RingSink::new(cap)));
        let mut sinks = self.sinks;
        if let Some(ring) = &ring {
            sinks.push(Box::new(SharedRing(Arc::clone(ring))));
        }
        Recorder {
            inner: Some(Arc::new(Inner {
                seq: AtomicU64::new(0),
                stack: Mutex::new(Vec::new()),
                sinks,
                ring,
            })),
        }
    }
}

/// Adapter letting the shared ring double as an owned sink.
struct SharedRing(Arc<RingSink>);

impl Sink for SharedRing {
    fn record(&self, event: &Arc<Event>) {
        self.0.record(event);
    }

    fn dropped(&self) -> u64 {
        self.0.dropped()
    }
}

impl Recorder {
    /// An enabled recorder with an in-memory ring of `capacity` events.
    pub fn ring(capacity: usize) -> Recorder {
        RecorderBuilder::new().ring(capacity).build()
    }

    /// Whether emission calls do anything. Instrumented code may use this
    /// to skip building expensive field payloads.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a timed span. The guard closes it (emitting `span_end`) on
    /// [`SpanGuard::end`] or drop. Disabled recorders return an inert guard.
    ///
    /// Names and keys are `&'static str`: emission is a hot path (one
    /// counter per evaluated candidate) and borrowing the literals keeps
    /// event construction allocation-free apart from the field vectors.
    pub fn span(&self, name: &'static str, fields: &[(&'static str, Value)]) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::inert();
        };
        let (seq, parent) = {
            let mut stack = inner.stack.lock().expect("span stack poisoned");
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
            let parent = stack.last().copied();
            stack.push(seq);
            (seq, parent)
        };
        let event = Event {
            seq,
            kind: EventKind::SpanBegin,
            name: Key::Borrowed(name),
            span: Some(seq),
            parent,
            fields: own_fields(fields),
            nondet: Vec::new(),
        };
        inner.dispatch(event);
        SpanGuard {
            recorder: Some(self.clone()),
            name,
            id: seq,
            parent,
            started: Instant::now(),
            fields: Vec::new(),
            nondet: Vec::new(),
        }
    }

    /// Emits a counter bundle attributed to `name`.
    pub fn counter(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        self.point(EventKind::Counter, name, fields, &[]);
    }

    /// Emits a counter bundle with an extra non-deterministic payload.
    pub fn counter_with_nondet(
        &self,
        name: &'static str,
        fields: &[(&'static str, Value)],
        nondet: &[(&'static str, Value)],
    ) {
        self.point(EventKind::Counter, name, fields, nondet);
    }

    /// Emits a point-in-time marker.
    pub fn mark(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        self.point(EventKind::Mark, name, fields, &[]);
    }

    fn point(
        &self,
        kind: EventKind,
        name: &'static str,
        fields: &[(&'static str, Value)],
        nondet: &[(&'static str, Value)],
    ) {
        let Some(inner) = &self.inner else { return };
        let (seq, parent) = {
            let stack = inner.stack.lock().expect("span stack poisoned");
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
            (seq, stack.last().copied())
        };
        let event = Event {
            seq,
            kind,
            name: Key::Borrowed(name),
            span: None,
            parent,
            fields: own_fields(fields),
            nondet: own_fields(nondet),
        };
        inner.dispatch(event);
    }

    /// Snapshot of the in-memory ring (empty when disabled or when no ring
    /// sink is configured), oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .and_then(|i| i.ring.as_ref())
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// Number of events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.seq.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Fast-forwards the sequence counter so the next event is numbered
    /// `seq + 1` (no-op if the counter is already past `seq`). Resume uses
    /// this after re-emitting the trace preamble: subsequent events
    /// continue the interrupted run's gapless numbering exactly.
    pub fn advance_seq_to(&self, seq: u64) {
        if let Some(inner) = &self.inner {
            inner.seq.fetch_max(seq, Ordering::Relaxed);
        }
    }

    /// Total events silently lost across all sinks: ring evictions plus
    /// failed trace-file writes ([`Sink::dropped`]). Zero for a disabled
    /// recorder. A nonzero value means the in-memory ring or the on-disk
    /// trace is an incomplete view of the emitted stream — profile
    /// tooling and serve stats surface it so the loss is never invisible.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.sinks.iter().map(|s| s.dropped()).sum())
            .unwrap_or(0)
    }

    /// Flushes every sink (JSONL writers in particular).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }

    /// Flushes every sink durably (fsync for file-backed sinks). Used at
    /// checkpoint boundaries, where the trace prefix must survive a crash
    /// immediately after the checkpoint is written.
    pub fn sync(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.sync();
            }
        }
    }
}

impl Inner {
    fn dispatch(&self, event: Event) {
        let event = Arc::new(event);
        for sink in &self.sinks {
            sink.record(&event);
        }
    }
}

fn own_fields(fields: &[(&'static str, Value)]) -> Vec<(Key, Value)> {
    fields
        .iter()
        .map(|(k, v)| (Key::Borrowed(*k), v.clone()))
        .collect()
}

/// Open-span handle. Closing (explicitly or on drop) emits the matching
/// `span_end` carrying any fields added via [`SpanGuard::field`], with the
/// wall-clock duration in the non-deterministic bucket.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Option<Recorder>,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    started: Instant,
    fields: Vec<(Key, Value)>,
    nondet: Vec<(Key, Value)>,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            recorder: None,
            name: "",
            id: 0,
            parent: None,
            started: Instant::now(),
            fields: Vec::new(),
            nondet: Vec::new(),
        }
    }

    /// Whether this guard belongs to an enabled recorder.
    pub fn active(&self) -> bool {
        self.recorder.is_some()
    }

    /// Attaches a deterministic field to the closing `span_end` event.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.recorder.is_some() {
            self.fields.push((Key::Borrowed(key), value.into()));
        }
    }

    /// Attaches a non-deterministic field to the closing `span_end` event.
    pub fn nondet(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.recorder.is_some() {
            self.nondet.push((Key::Borrowed(key), value.into()));
        }
    }

    /// Closes the span now.
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        let Some(recorder) = self.recorder.take() else {
            return;
        };
        let Some(inner) = &recorder.inner else { return };
        let seq = {
            let mut stack = inner.stack.lock().expect("span stack poisoned");
            // Defensive: guards may drop out of order under early returns;
            // remove *this* span wherever it sits rather than blindly popping.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
            inner.seq.fetch_add(1, Ordering::Relaxed) + 1
        };
        let mut nondet = std::mem::take(&mut self.nondet);
        nondet.push((
            Key::Borrowed("wall_ns"),
            Value::U64(self.started.elapsed().as_nanos() as u64),
        ));
        let event = Event {
            seq,
            kind: EventKind::SpanEnd,
            name: Key::Borrowed(self.name),
            span: Some(self.id),
            parent: self.parent,
            fields: std::mem::take(&mut self.fields),
            nondet,
        };
        inner.dispatch(event);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::default();
        assert!(!rec.enabled());
        let mut span = rec.span("x", &[("a", 1u64.into())]);
        span.field("b", 2u64);
        rec.counter("c", &[("n", 3u64.into())]);
        span.end();
        assert_eq!(rec.emitted(), 0);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_parents() {
        let rec = Recorder::ring(64);
        {
            let _outer = rec.span("outer", &[]);
            {
                let mut inner = rec.span("inner", &[]);
                inner.field("k", 7u64);
                rec.counter("tick", &[("n", 1u64.into())]);
            }
        }
        let events = rec.events();
        let names: Vec<(&str, &str)> = events
            .iter()
            .map(|e| (e.kind.as_str(), e.name.as_ref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("span_begin", "outer"),
                ("span_begin", "inner"),
                ("counter", "tick"),
                ("span_end", "inner"),
                ("span_end", "outer"),
            ]
        );
        // seq is gapless and 1-based.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        // Parent attribution: inner + counter nest under outer's span id (1).
        assert_eq!(events[1].parent, Some(1));
        assert_eq!(events[2].parent, Some(2));
        // inner's span_end carries the added field and a wall clock.
        assert_eq!(events[3].field("k").and_then(Value::as_u64), Some(7));
        assert!(events[3].nondet_field("wall_ns").is_some());
        assert_eq!(events[3].span, Some(2));
    }

    #[test]
    fn out_of_order_guard_drop_stays_consistent() {
        let rec = Recorder::ring(16);
        let a = rec.span("a", &[]);
        let b = rec.span("b", &[]);
        drop(a); // close outer first
        drop(b);
        let events = rec.events();
        let ends: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .map(|e| e.name.as_ref())
            .collect();
        assert_eq!(ends, vec!["a", "b"]);
        // After both closed, a new span has no parent.
        let c = rec.span("c", &[]);
        drop(c);
        let last_begin = rec
            .events()
            .into_iter()
            .rev()
            .find(|e| e.kind == EventKind::SpanBegin)
            .unwrap();
        assert_eq!(last_begin.parent, None);
    }

    #[test]
    fn explicit_end_does_not_double_emit() {
        let rec = Recorder::ring(8);
        let span = rec.span("once", &[]);
        span.end();
        assert_eq!(rec.emitted(), 2);
    }

    #[test]
    fn builder_defaults_to_a_ring() {
        let rec = RecorderBuilder::new().build();
        rec.mark("m", &[]);
        assert_eq!(rec.events().len(), 1);
    }
}
