//! The typed event model: field values, event kinds, and the [`Event`]
//! record with its JSONL and canonical renderings.

use core::fmt;
use core::fmt::Write as _;
use std::borrow::Cow;

/// An event or field name. Emission sites pass `&'static str` literals
/// (borrowed, zero-allocation on the hot path); events parsed back from
/// JSONL own their strings.
pub type Key = Cow<'static, str>;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter / identifier.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Floating-point quantity (objectives, rates, hypervolume).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short label (diagnostic codes, benchmark names).
    Str(String),
}

impl Value {
    /// Renders the value as a JSON fragment. Non-finite floats become
    /// `null` (JSON has no NaN/∞).
    pub fn write_json(&self, out: &mut String) {
        // Hand-rolled integer rendering: emission is a hot path (one
        // counter per evaluated candidate, mostly integer fields) and the
        // `core::fmt` machinery per field would dominate it.
        match self {
            Value::U64(v) => push_u64(out, *v),
            Value::I64(v) => {
                if *v < 0 {
                    out.push('-');
                    push_u64(out, v.unsigned_abs());
                } else {
                    push_u64(out, *v as u64);
                }
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(s, out),
        }
    }

    /// The value as `f64`, for aggregation (`None` for strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            Value::Bool(v) => Some(u64::from(*v)),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}

/// Appends `v` in decimal without going through `core::fmt`.
pub(crate) fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// JSON-escapes `s` (with surrounding quotes) into `out`.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    // Fast path: nothing to escape (true for every site/field name and
    // almost every label) — one bulk copy instead of per-char pushes.
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push('"');
        out.push_str(s);
        out.push('"');
        return;
    }
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opening of a timed span.
    SpanBegin,
    /// Closing of a timed span (carries the wall-clock duration in the
    /// non-deterministic bucket).
    SpanEnd,
    /// A point measurement: a bundle of counters attributed to one site.
    Counter,
    /// A point-in-time marker (no measurement semantics).
    Mark,
}

impl EventKind {
    /// Stable lowercase name, as written to JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Mark => "mark",
        }
    }

    /// Parses the stable name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "span_begin" => Some(EventKind::SpanBegin),
            "span_end" => Some(EventKind::SpanEnd),
            "counter" => Some(EventKind::Counter),
            "mark" => Some(EventKind::Mark),
            _ => None,
        }
    }
}

/// One record on the event bus.
///
/// The **determinism contract**: `seq`, `kind`, `name`, `span`, `parent`,
/// and `fields` are *canonical* — for a fixed exploration they are
/// bit-identical regardless of thread count, cache capacity, or host speed,
/// because ordering comes from an atomic sequence number incremented only on
/// deterministic (sequential) emission paths. Everything timing- or
/// race-dependent (wall-clock durations, cache hit/miss splits, throughput)
/// lives in `nondet`, which the canonical rendering strips.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emission sequence number (1-based, gapless per recorder).
    pub seq: u64,
    /// What the event marks.
    pub kind: EventKind,
    /// Dotted site name (`layer.site`, e.g. `sched.analyze`).
    pub name: Key,
    /// The span this event opens or closes (span id = the `seq` of its
    /// begin event); `None` for counters and marks.
    pub span: Option<u64>,
    /// Enclosing span at emission time, if any.
    pub parent: Option<u64>,
    /// Deterministic payload (replay-stable).
    pub fields: Vec<(Key, Value)>,
    /// Non-deterministic payload: wall-clock durations and thread-racy
    /// counters. Excluded from the canonical rendering.
    pub nondet: Vec<(Key, Value)>,
}

impl Event {
    /// Looks up a deterministic field.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Looks up a non-deterministic field.
    pub fn nondet_field(&self, name: &str) -> Option<&Value> {
        self.nondet
            .iter()
            .find(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Full JSONL rendering (one line, no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s);
        s
    }

    /// Full JSONL rendering appended to `out` (no trailing newline), for
    /// callers that reuse a serialization buffer across events.
    pub fn write_jsonl(&self, out: &mut String) {
        self.render(true, out);
    }

    /// Canonical rendering: the JSONL line without the `nondet` object.
    /// Two traces of the same exploration are replay-identical iff their
    /// canonical renderings match line for line.
    pub fn canonical(&self) -> String {
        let mut s = String::with_capacity(96);
        self.render(false, &mut s);
        s
    }

    fn render(&self, with_nondet: bool, s: &mut String) {
        s.push_str("{\"seq\":");
        push_u64(s, self.seq);
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.as_str());
        s.push_str("\",\"name\":");
        write_json_string(&self.name, s);
        if let Some(id) = self.span {
            s.push_str(",\"span\":");
            push_u64(s, id);
        }
        if let Some(p) = self.parent {
            s.push_str(",\"parent\":");
            push_u64(s, p);
        }
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":");
            write_map(&self.fields, s);
        }
        if with_nondet && !self.nondet.is_empty() {
            s.push_str(",\"nondet\":");
            write_map(&self.nondet, s);
        }
        s.push('}');
    }
}

fn write_map(map: &[(Key, Value)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, out);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Event {
        Event {
            seq: 7,
            kind: EventKind::SpanEnd,
            name: "ga.generation".into(),
            span: Some(3),
            parent: Some(1),
            fields: vec![
                ("generation".into(), 4u64.into()),
                ("best_0".into(), 1.5f64.into()),
                ("label".into(), "a\"b".into()),
            ],
            nondet: vec![("wall_ns".into(), 123u64.into())],
        }
    }

    #[test]
    fn jsonl_rendering_is_stable_and_escaped() {
        let line = event().to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":7,\"kind\":\"span_end\",\"name\":\"ga.generation\",\"span\":3,\
             \"parent\":1,\"fields\":{\"generation\":4,\"best_0\":1.5,\"label\":\"a\\\"b\"},\
             \"nondet\":{\"wall_ns\":123}}"
        );
    }

    #[test]
    fn canonical_strips_the_nondet_bucket() {
        let c = event().canonical();
        assert!(!c.contains("nondet"));
        assert!(!c.contains("wall_ns"));
        assert!(c.contains("\"generation\":4"));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut s = String::new();
        Value::F64(f64::INFINITY).write_json(&mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn value_coercions_cover_the_numeric_kinds() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(true).as_f64(), Some(1.0));
        assert_eq!(Value::from(-2i64).as_u64(), None);
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::F64(4.0).as_u64(), Some(4));
        assert_eq!(Value::F64(4.5).as_u64(), None);
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Counter,
            EventKind::Mark,
        ] {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }
}
