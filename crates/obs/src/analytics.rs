//! Offline trace analytics: event queries, per-generation critical paths,
//! folded flame stacks, and two-trace regression diffs — the engine behind
//! `mcmap_cli obs query|critical-path|flame|diff`.

use std::collections::{BTreeMap, HashMap};

use crate::event::{Event, EventKind, Value};
use crate::report::canonical_trace;

/// A filter over a trace's events. Empty filters match everything; set
/// members compose conjunctively.
#[derive(Debug, Clone, Default)]
pub struct TraceQuery {
    /// Substring match against the event name.
    pub name: Option<String>,
    /// Exact event-kind match.
    pub kind: Option<EventKind>,
    /// Field presence (`key`) or equality (`key`, `value`) match, against
    /// deterministic and non-deterministic fields alike.
    pub field: Option<(String, Option<String>)>,
    /// Keep only events attributed (via span parentage) to this
    /// `ga.generation` number.
    pub generation: Option<u64>,
}

/// Span parentage, walls, and generation attribution of one trace —
/// shared by the query/critical-path/flame engines.
#[derive(Debug, Default)]
struct SpanIndex<'a> {
    /// Span id → parent span id (as recorded at begin time).
    parent: HashMap<u64, Option<u64>>,
    /// Span id → span name.
    name: HashMap<u64, &'a str>,
    /// Span id → closing wall time.
    wall: HashMap<u64, u64>,
    /// Span id → direct child span ids, in begin order.
    children: HashMap<u64, Vec<u64>>,
    /// `ga.generation` span id → generation number.
    generation: HashMap<u64, u64>,
    /// Root span ids in begin order.
    roots: Vec<u64>,
}

impl<'a> SpanIndex<'a> {
    fn build(events: &'a [Event]) -> Self {
        let mut sorted: Vec<&Event> = events.iter().collect();
        sorted.sort_by_key(|e| e.seq);
        let mut idx = SpanIndex::default();
        for event in &sorted {
            match event.kind {
                EventKind::SpanBegin => {
                    let Some(id) = event.span else { continue };
                    idx.parent.insert(id, event.parent);
                    idx.name.insert(id, event.name.as_ref());
                    match event.parent {
                        Some(p) => idx.children.entry(p).or_default().push(id),
                        None => idx.roots.push(id),
                    }
                }
                EventKind::SpanEnd => {
                    let Some(id) = event.span else { continue };
                    let wall = event
                        .nondet_field("wall_ns")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    idx.wall.insert(id, wall);
                    if event.name == "ga.generation" {
                        if let Some(g) = event.field("generation").and_then(Value::as_u64) {
                            idx.generation.insert(id, g);
                        }
                    }
                }
                _ => {}
            }
        }
        idx
    }

    /// The `ga.generation` number an event belongs to, walking the span
    /// ancestry recorded at emission time.
    fn generation_of(&self, event: &Event) -> Option<u64> {
        let mut cur = event.span.or(event.parent);
        while let Some(id) = cur {
            if let Some(g) = self.generation.get(&id) {
                return Some(*g);
            }
            cur = self.parent.get(&id).copied().flatten();
        }
        None
    }

    /// Wall time of a span's direct children.
    fn child_wall(&self, id: u64) -> u64 {
        self.children
            .get(&id)
            .map(|kids| kids.iter().filter_map(|k| self.wall.get(k)).sum())
            .unwrap_or(0)
    }

    /// The root-to-span name stack, `;`-joined (folded-stack notation).
    fn stack_of(&self, id: u64) -> String {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(i) = cur {
            names.push(*self.name.get(&i).unwrap_or(&"?"));
            cur = self.parent.get(&i).copied().flatten();
        }
        names.reverse();
        names.join(";")
    }
}

/// Filters a trace's events, in sequence order. The `generation` filter
/// attributes each event to its enclosing `ga.generation` span (the span
/// itself included).
pub fn query<'a>(events: &'a [Event], q: &TraceQuery) -> Vec<&'a Event> {
    let idx = q.generation.map(|_| SpanIndex::build(events));
    let value_matches = |v: &Value, expected: &str| render_value(v) == expected;
    let mut hits: Vec<&Event> = events
        .iter()
        .filter(|e| {
            if let Some(name) = &q.name {
                if !e.name.as_ref().contains(name.as_str()) {
                    return false;
                }
            }
            if let Some(kind) = q.kind {
                if e.kind != kind {
                    return false;
                }
            }
            if let Some((key, expected)) = &q.field {
                let found = e
                    .field(key)
                    .or_else(|| e.nondet_field(key))
                    .is_some_and(|v| expected.as_deref().is_none_or(|ex| value_matches(v, ex)));
                if !found {
                    return false;
                }
            }
            if let Some(generation) = q.generation {
                let idx = idx.as_ref().expect("index built when filtering by gen");
                if idx.generation_of(e) != Some(generation) {
                    return false;
                }
            }
            true
        })
        .collect();
    hits.sort_by_key(|e| e.seq);
    hits
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        other => {
            let mut out = String::new();
            other.write_json(&mut out);
            out
        }
    }
}

/// One step on a critical path: a span and where its time went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Wall time of this span, children included.
    pub wall_ns: u64,
    /// Wall time minus direct children (time spent in the span itself).
    pub self_ns: u64,
}

/// The slowest span chain inside one `ga.generation` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Generation number.
    pub generation: u64,
    /// Wall time of the whole generation span.
    pub total_ns: u64,
    /// The chain, outermost first: at every level the child with the
    /// largest wall time is followed.
    pub steps: Vec<PathStep>,
}

/// The per-generation critical paths of a trace, in generation order:
/// starting at each `ga.generation` span, repeatedly descend into the
/// child span with the largest wall time.
pub fn critical_paths(events: &[Event]) -> Vec<CriticalPath> {
    let idx = SpanIndex::build(events);
    let mut gens: Vec<(u64, u64)> = idx.generation.iter().map(|(id, g)| (*g, *id)).collect();
    gens.sort_unstable();
    gens.iter()
        .map(|&(generation, span)| {
            let mut steps = Vec::new();
            let mut cur = span;
            loop {
                let wall = idx.wall.get(&cur).copied().unwrap_or(0);
                steps.push(PathStep {
                    name: idx.name.get(&cur).unwrap_or(&"?").to_string(),
                    wall_ns: wall,
                    self_ns: wall.saturating_sub(idx.child_wall(cur)),
                });
                // Heaviest child next; ties break to the earliest-begun
                // child so the walk is deterministic.
                let next = idx.children.get(&cur).and_then(|kids| {
                    kids.iter()
                        .max_by_key(|k| {
                            (
                                idx.wall.get(k).copied().unwrap_or(0),
                                std::cmp::Reverse(**k),
                            )
                        })
                        .copied()
                });
                match next {
                    Some(child) => cur = child,
                    None => break,
                }
            }
            CriticalPath {
                generation,
                total_ns: idx.wall.get(&span).copied().unwrap_or(0),
                steps,
            }
        })
        .collect()
}

/// Folded flame stacks: one `(stack, self_ns)` row per distinct
/// root-to-span name chain, `;`-joined, sorted by stack — the input
/// format of standard flamegraph tooling (`flamegraph.pl`, inferno).
/// Rows with zero self time are dropped.
pub fn folded_stacks(events: &[Event]) -> Vec<(String, u64)> {
    let idx = SpanIndex::build(events);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (&id, &wall) in &idx.wall {
        let self_ns = wall.saturating_sub(idx.child_wall(id));
        if self_ns > 0 {
            *folded.entry(idx.stack_of(id)).or_insert(0) += self_ns;
        }
    }
    folded.into_iter().collect()
}

/// One deterministic counter sum that differs between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// `name.field` key (or `name.count` for event counts).
    pub key: String,
    /// Sum in the first trace.
    pub a: f64,
    /// Sum in the second trace.
    pub b: f64,
}

/// Per-span-name comparison of two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanDelta {
    /// Span name.
    pub name: String,
    /// Closed spans in the first trace.
    pub count_a: u64,
    /// Closed spans in the second trace.
    pub count_b: u64,
    /// Summed wall in the first trace (non-deterministic, for triage).
    pub wall_a: u64,
    /// Summed wall in the second trace.
    pub wall_b: u64,
}

/// The result of comparing two traces: canonical-line divergence (the
/// deterministic verdict), differing deterministic counter sums, and the
/// span tree side by side.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Events in the first trace.
    pub events_a: usize,
    /// Events in the second trace.
    pub events_b: usize,
    /// Number of differing canonical lines (position-wise, plus any
    /// length difference). 0 means the traces are replay-identical.
    pub canonical_differences: usize,
    /// The first differing canonical line: `(line_number, a, b)`, where a
    /// missing line renders as `"<absent>"`.
    pub first_divergence: Option<(usize, String, String)>,
    /// Deterministic counter sums that differ, sorted by key.
    pub counter_deltas: Vec<CounterDelta>,
    /// All span names in either trace, sorted by name.
    pub span_deltas: Vec<SpanDelta>,
}

impl TraceDiff {
    /// Whether the two traces are bit-identical after canonicalization —
    /// the determinism-contract verdict.
    pub fn deterministically_identical(&self) -> bool {
        self.canonical_differences == 0
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "trace diff · a: {} events · b: {} events\n",
            self.events_a, self.events_b
        );
        if self.deterministically_identical() {
            out.push_str("deterministic: IDENTICAL (0 differing canonical lines)\n");
        } else {
            out.push_str(&format!(
                "deterministic: {} differing canonical line(s)\n",
                self.canonical_differences
            ));
            if let Some((line, a, b)) = &self.first_divergence {
                out.push_str(&format!("first divergence at line {line}:\n"));
                out.push_str(&format!("  a: {a}\n  b: {b}\n"));
            }
        }
        if !self.counter_deltas.is_empty() {
            out.push_str("\ndeterministic counter deltas\n");
            out.push_str(&format!(
                "  {:<40} {:>14} {:>14} {:>14}\n",
                "key", "a", "b", "delta"
            ));
            for d in &self.counter_deltas {
                out.push_str(&format!(
                    "  {:<40} {:>14} {:>14} {:>+14}\n",
                    d.key,
                    trim_f64(d.a),
                    trim_f64(d.b),
                    trim_f64(d.b - d.a)
                ));
            }
        }
        if !self.span_deltas.is_empty() {
            out.push_str("\nspans\n");
            out.push_str(&format!(
                "  {:<22} {:>9} {:>9} {:>12} {:>12}\n",
                "name", "count_a", "count_b", "wall_a", "wall_b"
            ));
            for s in &self.span_deltas {
                out.push_str(&format!(
                    "  {:<22} {:>9} {:>9} {:>12} {:>12}\n",
                    s.name, s.count_a, s.count_b, s.wall_a, s.wall_b
                ));
            }
        }
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"events_a\":{},\"events_b\":{},\"canonical_differences\":{},\
             \"deterministically_identical\":{}",
            self.events_a,
            self.events_b,
            self.canonical_differences,
            self.deterministically_identical()
        );
        s.push_str(",\"counter_deltas\":[");
        for (i, d) in self.counter_deltas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let (mut a, mut b) = (String::new(), String::new());
            Value::F64(d.a).write_json(&mut a);
            Value::F64(d.b).write_json(&mut b);
            s.push_str(&format!("{{\"key\":\"{}\",\"a\":{a},\"b\":{b}}}", d.key));
        }
        s.push_str("],\"spans\":[");
        for (i, d) in self.span_deltas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"count_a\":{},\"count_b\":{},\"wall_a\":{},\"wall_b\":{}}}",
                d.name, d.count_a, d.count_b, d.wall_a, d.wall_b
            ));
        }
        s.push_str("]}");
        s
    }
}

fn trim_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Compares two traces for regression triage: canonical-line divergence,
/// deterministic counter-sum deltas, and the span tree side by side. Two
/// traces of the same seeded run report zero deterministic differences —
/// wall-time variation only shows up in the (non-deterministic) span
/// walls.
pub fn diff_traces(a: &[Event], b: &[Event]) -> TraceDiff {
    let canon_a = canonical_trace(a);
    let canon_b = canonical_trace(b);
    let lines_a: Vec<&str> = canon_a.lines().collect();
    let lines_b: Vec<&str> = canon_b.lines().collect();
    let common = lines_a.len().min(lines_b.len());
    let mut canonical_differences = lines_a.len().max(lines_b.len()) - common;
    let mut first_divergence = None;
    for i in 0..lines_a.len().max(lines_b.len()) {
        let la = lines_a.get(i).copied();
        let lb = lines_b.get(i).copied();
        if la != lb {
            if i < common {
                canonical_differences += 1;
            }
            if first_divergence.is_none() {
                first_divergence = Some((
                    i + 1,
                    la.unwrap_or("<absent>").to_string(),
                    lb.unwrap_or("<absent>").to_string(),
                ));
            }
        }
    }

    let sums_a = det_counter_sums(a);
    let sums_b = det_counter_sums(b);
    let mut keys: Vec<&String> = sums_a.keys().chain(sums_b.keys()).collect();
    keys.sort();
    keys.dedup();
    let counter_deltas: Vec<CounterDelta> = keys
        .into_iter()
        .filter_map(|key| {
            let va = sums_a.get(key).copied().unwrap_or(0.0);
            let vb = sums_b.get(key).copied().unwrap_or(0.0);
            (va != vb).then(|| CounterDelta {
                key: key.clone(),
                a: va,
                b: vb,
            })
        })
        .collect();

    let spans_a = span_sums(a);
    let spans_b = span_sums(b);
    let mut names: Vec<&String> = spans_a.keys().chain(spans_b.keys()).collect();
    names.sort();
    names.dedup();
    let span_deltas: Vec<SpanDelta> = names
        .into_iter()
        .map(|name| {
            let (count_a, wall_a) = spans_a.get(name).copied().unwrap_or((0, 0));
            let (count_b, wall_b) = spans_b.get(name).copied().unwrap_or((0, 0));
            SpanDelta {
                name: name.clone(),
                count_a,
                count_b,
                wall_a,
                wall_b,
            }
        })
        .collect();

    TraceDiff {
        events_a: a.len(),
        events_b: b.len(),
        canonical_differences,
        first_divergence,
        counter_deltas,
        span_deltas,
    }
}

/// Sums every deterministic numeric field keyed `name.field`, plus
/// `name.count` per counter/mark name — deliberately excluding the
/// `nondet` bucket, so the sums obey the determinism contract.
fn det_counter_sums(events: &[Event]) -> BTreeMap<String, f64> {
    let mut sums = BTreeMap::new();
    for event in events {
        match event.kind {
            EventKind::Counter | EventKind::Mark => {
                *sums.entry(format!("{}.count", event.name)).or_insert(0.0) += 1.0;
            }
            EventKind::SpanEnd => {}
            EventKind::SpanBegin => continue,
        }
        for (key, value) in &event.fields {
            if let Some(v) = value.as_f64() {
                *sums.entry(format!("{}.{key}", event.name)).or_insert(0.0) += v;
            }
        }
    }
    sums
}

fn span_sums(events: &[Event]) -> BTreeMap<String, (u64, u64)> {
    let mut sums: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for event in events {
        if event.kind != EventKind::SpanEnd {
            continue;
        }
        let wall = event
            .nondet_field("wall_ns")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let entry = sums.entry(event.name.to_string()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += wall;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn generation_trace() -> Vec<Event> {
        let rec = Recorder::ring(256);
        {
            let _dse = rec.span("dse.explore", &[]);
            for generation in 0..2u64 {
                let mut g = rec.span("ga.generation", &[]);
                {
                    let _b = rec.span("eval.batch", &[("genomes", 4u64.into())]);
                    rec.counter("sched.analyze", &[("backend_calls", 5u64.into())]);
                }
                rec.counter("dse.audit", &[("evaluated", 4u64.into())]);
                g.field("generation", generation);
            }
        }
        rec.events()
    }

    #[test]
    fn query_filters_by_name_kind_field_and_generation() {
        let events = generation_trace();
        let by_name = query(
            &events,
            &TraceQuery {
                name: Some("sched".into()),
                ..TraceQuery::default()
            },
        );
        assert_eq!(by_name.len(), 2);

        let by_kind = query(
            &events,
            &TraceQuery {
                kind: Some(EventKind::SpanEnd),
                name: Some("ga.generation".into()),
                ..TraceQuery::default()
            },
        );
        assert_eq!(by_kind.len(), 2);

        let by_field = query(
            &events,
            &TraceQuery {
                field: Some(("generation".into(), Some("1".into()))),
                ..TraceQuery::default()
            },
        );
        assert_eq!(by_field.len(), 1);

        // Generation attribution: each generation holds one eval.batch
        // begin+end, one sched.analyze, one dse.audit, and the generation
        // span's own begin/end.
        let gen0 = query(
            &events,
            &TraceQuery {
                generation: Some(0),
                ..TraceQuery::default()
            },
        );
        assert_eq!(gen0.len(), 6);
        assert!(gen0.iter().any(|e| e.name == "dse.audit"));
        assert!(gen0.iter().all(|e| e.name != "dse.explore"));
    }

    #[test]
    fn critical_paths_descend_into_the_heaviest_child() {
        let events = generation_trace();
        let paths = critical_paths(&events);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].generation, 0);
        assert_eq!(paths[0].steps[0].name, "ga.generation");
        assert_eq!(paths[0].steps[1].name, "eval.batch");
        assert!(paths[0].total_ns >= paths[0].steps[1].wall_ns);
    }

    #[test]
    fn folded_stacks_fold_by_ancestry() {
        let events = generation_trace();
        let folded = folded_stacks(&events);
        assert!(folded
            .iter()
            .any(|(stack, _)| stack == "dse.explore;ga.generation;eval.batch"));
        // Two generations fold into one row per distinct stack.
        assert_eq!(
            folded
                .iter()
                .filter(|(stack, _)| stack.ends_with("eval.batch"))
                .count(),
            1
        );
    }

    #[test]
    fn diff_of_identical_runs_is_deterministically_clean() {
        let a = generation_trace();
        let b = generation_trace();
        let diff = diff_traces(&a, &b);
        assert!(diff.deterministically_identical());
        assert!(diff.counter_deltas.is_empty());
        assert_eq!(diff.canonical_differences, 0);
        assert!(diff.render_text().contains("IDENTICAL"));
        crate::json::parse_json(&diff.to_json()).expect("diff json parses");
    }

    #[test]
    fn diff_surfaces_counter_and_line_divergence() {
        let a = generation_trace();
        let rec = Recorder::ring(256);
        {
            let _dse = rec.span("dse.explore", &[]);
            let mut g = rec.span("ga.generation", &[]);
            rec.counter("sched.analyze", &[("backend_calls", 9u64.into())]);
            g.field("generation", 0u64);
        }
        let b = rec.events();
        let diff = diff_traces(&a, &b);
        assert!(!diff.deterministically_identical());
        assert!(diff.first_divergence.is_some());
        let backend = diff
            .counter_deltas
            .iter()
            .find(|d| d.key == "sched.analyze.backend_calls")
            .expect("backend_calls sums differ");
        assert_eq!((backend.a, backend.b), (10.0, 9.0));
        let text = diff.render_text();
        assert!(text.contains("differing canonical line"));
        assert!(text.contains("sched.analyze.backend_calls"));
    }
}
