//! # mcmap-obs
//!
//! Deterministic tracing, metrics, and profiling for the mcmap
//! DSE/sched/eval pipeline. Dependency-free (std only): a lightweight
//! event bus with typed spans and counters behind a cloneable
//! [`Recorder`] handle, pluggable [`Sink`]s (in-memory ring, JSONL file),
//! and a [`TraceProfile`] renderer for recorded traces.
//!
//! ## Determinism contract
//!
//! Instrumentation must not perturb exploration results, and recorded
//! traces must be **replay-stable**: for a fixed benchmark/seed/config,
//! the *canonical* trace is bit-identical regardless of `--threads`,
//! `--cache-cap`, host speed, or whether a JSONL sink is attached. The
//! contract has three parts:
//!
//! 1. **Ordering by sequence number.** Every event gets a gapless `seq`
//!    from an atomic counter. All emission sites in the pipeline sit on
//!    sequential driver-thread paths (per-candidate metrics are carried
//!    inside cached evaluation records and emitted during the in-order
//!    audit replay), so `seq` order is the same on every run.
//! 2. **det/nondet field split.** Each [`Event`] carries deterministic
//!    `fields` and a separate `nondet` bucket for wall-clock durations and
//!    thread-racy measurements (cache hit/miss splits, throughput).
//! 3. **Canonical rendering.** [`Event::canonical`] /
//!    [`canonical_trace`] strip the `nondet` bucket; determinism tests
//!    compare exactly this rendering.
//!
//! ## Example
//!
//! ```
//! use mcmap_obs::{Recorder, TraceProfile, Value};
//!
//! let rec = Recorder::ring(1024);
//! {
//!     let mut span = rec.span("dse.explore", &[("benchmark", Value::from("cruise"))]);
//!     rec.counter("sched.analyze", &[("transitions", Value::from(12u64))]);
//!     span.field("evaluations", 48u64);
//! }
//! let profile = TraceProfile::from_events(&rec.events());
//! assert_eq!(profile.spans[0].name, "dse.explore");
//! assert!(profile.render_text().contains("sched.analyze"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytics;
mod event;
mod json;
mod recorder;
mod report;
mod sink;

pub use analytics::{
    critical_paths, diff_traces, folded_stacks, query, CounterDelta, CriticalPath, PathStep,
    SpanDelta, TraceDiff, TraceQuery,
};
pub use event::{Event, EventKind, Key, Value};
pub use json::{
    event_from_json, events_from_jsonl, events_from_jsonl_lossy, parse_json, Json, TraceRecovery,
};
pub use recorder::{Recorder, RecorderBuilder, SpanGuard};
pub use report::{
    canonical_trace, canonicalize_jsonl, stitch_traces, GenRow, SpanAgg, TraceProfile,
};
pub use sink::{JsonlSink, RingSink, Sink};
