//! Trace post-processing: canonicalization (for determinism comparison)
//! and the profile report behind `mcmap_cli obs`.

use std::collections::HashMap;

use crate::event::{Event, EventKind, Key, Value};
use crate::json::{events_from_jsonl, events_from_jsonl_lossy, TraceRecovery};

/// Canonical rendering of a trace: one [`Event::canonical`] line per event,
/// sequence order, wall-clock and other non-deterministic fields stripped.
/// Two runs of the same exploration are replay-identical iff this string
/// matches byte for byte.
pub fn canonical_trace(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    let mut out = String::new();
    for event in sorted {
        out.push_str(&event.canonical());
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace and returns its canonical rendering.
///
/// # Errors
///
/// Propagates the parse error of the first malformed line.
pub fn canonicalize_jsonl(text: &str) -> Result<String, String> {
    Ok(canonical_trace(&events_from_jsonl(text)?))
}

/// Merges trace fragments from an interrupted-then-resumed run into one
/// seq-ordered event stream. Events sharing a sequence number (the
/// deterministic preamble a resumed run re-emits) are deduplicated — by
/// the determinism contract their content is identical, so the first
/// occurrence wins.
pub fn stitch_traces(parts: &[Vec<Event>]) -> Vec<Event> {
    let mut merged: Vec<Event> = parts.iter().flatten().cloned().collect();
    merged.sort_by_key(|e| e.seq);
    merged.dedup_by_key(|e| e.seq);
    merged
}

/// Aggregate of one span name across a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// Span (site) name.
    pub name: String,
    /// How many spans with this name closed.
    pub count: u64,
    /// Summed wall-clock time, including children.
    pub total_ns: u64,
    /// Summed wall-clock time minus the time spent in child spans.
    pub self_ns: u64,
}

/// One row of the per-generation convergence table, read back from
/// `ga.generation` span ends.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRow {
    /// Generation index (0 = initial population).
    pub generation: u64,
    /// Candidates evaluated this generation.
    pub evaluations: u64,
    /// Feasible candidates among them.
    pub feasible: u64,
    /// Archive (non-dominated front) size after this generation.
    pub front_size: u64,
    /// Best value of objective 0 on the front, if any member is feasible.
    pub best_0: Option<f64>,
    /// Best value of objective 1 on the front, if any member is feasible.
    pub best_1: Option<f64>,
    /// 2-D hypervolume of the front against the first-generation
    /// reference point, if computable.
    pub hypervolume: Option<f64>,
    /// Archive members added + removed relative to the previous generation.
    pub churn: u64,
}

/// Aggregated view of one trace: span totals, counter totals, and the
/// per-generation convergence table.
#[derive(Debug, Clone, Default)]
pub struct TraceProfile {
    /// Total events in the trace.
    pub events: usize,
    /// Per-name span aggregates, sorted by self-time descending.
    pub spans: Vec<SpanAgg>,
    /// Summed numeric fields keyed `name.field`, plus `name.count` per
    /// counter/mark name; sorted by key.
    pub counters: Vec<(String, f64)>,
    /// Per-generation convergence rows in generation order.
    pub generations: Vec<GenRow>,
    /// Events missing from the gapless `1..=max_seq` sequence — evidence
    /// of ring-buffer overwrites or trace-file write failures upstream.
    pub dropped: u64,
}

impl TraceProfile {
    /// Builds the profile from in-memory events.
    pub fn from_events(events: &[Event]) -> TraceProfile {
        let mut sorted: Vec<&Event> = events.iter().collect();
        sorted.sort_by_key(|e| e.seq);

        // Span aggregation: walk span_end events; self-time = own wall
        // minus the wall of directly-nested children, attributed via the
        // `parent` id recorded at begin time.
        let mut name_of_span: HashMap<u64, &str> = HashMap::new();
        let mut wall_of_span: HashMap<u64, u64> = HashMap::new();
        let mut child_wall: HashMap<u64, u64> = HashMap::new();
        let mut agg: HashMap<&str, SpanAgg> = HashMap::new();
        let mut counters: HashMap<String, f64> = HashMap::new();

        for event in &sorted {
            match event.kind {
                EventKind::SpanBegin => {
                    if let Some(id) = event.span {
                        name_of_span.insert(id, event.name.as_ref());
                    }
                }
                EventKind::SpanEnd => {
                    let Some(id) = event.span else { continue };
                    let wall = event
                        .nondet_field("wall_ns")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    wall_of_span.insert(id, wall);
                    if let Some(parent) = event.parent {
                        *child_wall.entry(parent).or_insert(0) += wall;
                    }
                    let name = name_of_span
                        .get(&id)
                        .copied()
                        .unwrap_or(event.name.as_ref());
                    let entry = agg.entry(name).or_insert_with(|| SpanAgg {
                        name: name.to_string(),
                        count: 0,
                        total_ns: 0,
                        self_ns: 0,
                    });
                    entry.count += 1;
                    entry.total_ns += wall;
                    // Span-end fields are counter-like too: fold them in so
                    // per-generation numbers also show up in totals.
                    fold_numeric(&mut counters, &event.name, &event.fields);
                }
                EventKind::Counter | EventKind::Mark => {
                    *counters
                        .entry(format!("{}.count", event.name))
                        .or_insert(0.0) += 1.0;
                    fold_numeric(&mut counters, &event.name, &event.fields);
                    fold_numeric(&mut counters, &event.name, &event.nondet);
                }
            }
        }

        // Second pass for self-time now that every child's wall is known.
        for (id, wall) in &wall_of_span {
            let children = child_wall.get(id).copied().unwrap_or(0);
            if let Some(name) = name_of_span.get(id) {
                if let Some(entry) = agg.get_mut(name) {
                    entry.self_ns += wall.saturating_sub(children);
                }
            }
        }

        let mut spans: Vec<SpanAgg> = agg.into_values().collect();
        spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));

        let mut counter_rows: Vec<(String, f64)> = counters.into_iter().collect();
        counter_rows.sort_by(|a, b| a.0.cmp(&b.0));

        let generations = gen_rows(&sorted);

        // seq is gapless per recorder, so any hole in 1..=max_seq means an
        // event was lost before reaching this profile (ring overwrite or a
        // failed trace write).
        let dropped = sorted
            .last()
            .map(|e| e.seq.saturating_sub(sorted.len() as u64))
            .unwrap_or(0);

        TraceProfile {
            events: sorted.len(),
            spans,
            counters: counter_rows,
            generations,
            dropped,
        }
    }

    /// Parses a JSONL trace and builds its profile.
    ///
    /// # Errors
    ///
    /// Propagates the parse error of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<TraceProfile, String> {
        Ok(TraceProfile::from_events(&events_from_jsonl(text)?))
    }

    /// The damage-tolerant sibling of [`TraceProfile::from_jsonl`]:
    /// profiles the valid prefix of a truncated trace and reports what was
    /// dropped alongside, instead of refusing the whole file over one torn
    /// final line.
    pub fn from_jsonl_lossy(text: &str) -> (TraceProfile, TraceRecovery) {
        let (events, recovery) = events_from_jsonl_lossy(text);
        (TraceProfile::from_events(&events), recovery)
    }

    /// Human-readable profile report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("trace profile · {} events\n", self.events));
        if self.dropped > 0 {
            out.push_str(&format!(
                "WARNING: {} event(s) dropped before recording — totals below undercount\n",
                self.dropped
            ));
        }

        if !self.spans.is_empty() {
            out.push_str("\nspans (by self time)\n");
            out.push_str(&format!(
                "  {:<22} {:>7} {:>12} {:>12}\n",
                "name", "count", "total", "self"
            ));
            for span in &self.spans {
                out.push_str(&format!(
                    "  {:<22} {:>7} {:>12} {:>12}\n",
                    span.name,
                    span.count,
                    fmt_ns(span.total_ns),
                    fmt_ns(span.self_ns)
                ));
            }
        }

        if !self.generations.is_empty() {
            out.push_str("\ngenerations\n");
            out.push_str(&self.render_generations());
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (key, value) in &self.counters {
                if value.fract() == 0.0 && value.abs() < 1e15 {
                    out.push_str(&format!("  {key:<40} {:>14}\n", *value as i64));
                } else {
                    out.push_str(&format!("  {key:<40} {value:>14.4}\n"));
                }
            }
        }
        out
    }

    /// The per-generation convergence table alone (header + one line per
    /// generation) — the `--gen-stats` rendering.
    pub fn render_generations(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:>4} {:>6} {:>9} {:>6} {:>12} {:>12} {:>12} {:>6}\n",
            "gen", "evals", "feasible", "front", "best_0", "best_1", "hv", "churn"
        ));
        for row in &self.generations {
            out.push_str(&format!(
                "  {:>4} {:>6} {:>9} {:>6} {:>12} {:>12} {:>12} {:>6}\n",
                row.generation,
                row.evaluations,
                row.feasible,
                row.front_size,
                fmt_opt(row.best_0),
                fmt_opt(row.best_1),
                fmt_opt(row.hypervolume),
                row.churn
            ));
        }
        out
    }

    /// The per-generation rows as a JSON array — the `--gen-stats json`
    /// rendering (and the `generations` member of [`Self::to_json`]).
    pub fn generations_json(&self) -> String {
        let mut s = String::from("[");
        for (i, row) in self.generations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"generation\":{},\"evaluations\":{},\"feasible\":{},\"front_size\":{},\
                 \"best_0\":{},\"best_1\":{},\"hypervolume\":{},\"churn\":{}}}",
                row.generation,
                row.evaluations,
                row.feasible,
                row.front_size,
                json_opt(row.best_0),
                json_opt(row.best_1),
                json_opt(row.hypervolume),
                row.churn
            ));
        }
        s.push(']');
        s
    }

    /// Machine-readable profile report.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"events\":{},\"dropped\":{}",
            self.events, self.dropped
        ));
        s.push_str(",\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                span.name, span.count, span.total_ns, span.self_ns
            ));
        }
        s.push_str("],\"counters\":{");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let mut v = String::new();
            Value::F64(*value).write_json(&mut v);
            s.push_str(&format!("\"{key}\":{v}"));
        }
        s.push_str("},\"generations\":");
        s.push_str(&self.generations_json());
        s.push('}');
        s
    }
}

fn fold_numeric(counters: &mut HashMap<String, f64>, name: &str, fields: &[(Key, Value)]) {
    for (key, value) in fields {
        if key == "wall_ns" {
            continue; // wall time is reported through span totals instead
        }
        if let Some(v) = value.as_f64() {
            *counters.entry(format!("{name}.{key}")).or_insert(0.0) += v;
        }
    }
}

fn gen_rows(sorted: &[&Event]) -> Vec<GenRow> {
    let mut rows = Vec::new();
    for event in sorted {
        if event.kind != EventKind::SpanEnd || event.name != "ga.generation" {
            continue;
        }
        let get_u64 = |k: &str| event.field(k).and_then(Value::as_u64).unwrap_or(0);
        let get_f64 = |k: &str| {
            event
                .field(k)
                .and_then(Value::as_f64)
                .filter(|v| v.is_finite())
        };
        rows.push(GenRow {
            generation: get_u64("generation"),
            evaluations: get_u64("evaluations"),
            feasible: get_u64("feasible"),
            front_size: get_u64("front_size"),
            best_0: get_f64("best_0"),
            best_1: get_f64("best_1"),
            hypervolume: get_f64("hypervolume"),
            churn: get_u64("churn"),
        });
    }
    rows.sort_by_key(|r| r.generation);
    rows
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => {
            let mut s = String::new();
            Value::F64(v).write_json(&mut s);
            s
        }
        _ => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_trace() -> Vec<Event> {
        let rec = Recorder::ring(256);
        {
            let mut dse = rec.span("dse.explore", &[("benchmark", "cruise".into())]);
            for generation in 0..2u64 {
                let mut g = rec.span("ga.generation", &[]);
                {
                    let _b = rec.span("eval.batch", &[("genomes", 4u64.into())]);
                }
                rec.counter(
                    "sched.analyze",
                    &[("transitions", 3u64.into()), ("backend_calls", 5u64.into())],
                );
                g.field("generation", generation);
                g.field("evaluations", 4u64);
                g.field("feasible", 3u64);
                g.field("front_size", 2u64 + generation);
                g.field("best_0", 10.5 - generation as f64);
                g.field("best_1", 0.25);
                g.field("hypervolume", 1.0 + generation as f64);
                g.field("churn", 1u64);
            }
            dse.field("audit_evaluations", 8u64);
        }
        rec.events()
    }

    #[test]
    fn profile_aggregates_spans_counters_and_generations() {
        let events = sample_trace();
        let profile = TraceProfile::from_events(&events);
        assert_eq!(profile.events, events.len());

        let names: Vec<&str> = profile.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"dse.explore"));
        assert!(names.contains(&"ga.generation"));
        assert!(names.contains(&"eval.batch"));
        let ga = profile
            .spans
            .iter()
            .find(|s| s.name == "ga.generation")
            .unwrap();
        assert_eq!(ga.count, 2);
        assert!(ga.self_ns <= ga.total_ns);

        let transitions = profile
            .counters
            .iter()
            .find(|(k, _)| k == "sched.analyze.transitions")
            .map(|(_, v)| *v);
        assert_eq!(transitions, Some(6.0));
        let count = profile
            .counters
            .iter()
            .find(|(k, _)| k == "sched.analyze.count")
            .map(|(_, v)| *v);
        assert_eq!(count, Some(2.0));

        assert_eq!(profile.generations.len(), 2);
        assert_eq!(profile.generations[0].generation, 0);
        assert_eq!(profile.generations[1].front_size, 3);
        assert_eq!(profile.generations[1].best_0, Some(9.5));
        assert_eq!(profile.generations[1].hypervolume, Some(2.0));
    }

    #[test]
    fn jsonl_roundtrip_preserves_the_profile() {
        let events = sample_trace();
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        let profile = TraceProfile::from_jsonl(&jsonl).unwrap();
        assert_eq!(profile.generations.len(), 2);
        assert_eq!(profile.events, events.len());
        let text = profile.render_text();
        assert!(text.contains("ga.generation"));
        assert!(text.contains("generations"));
        let json = profile.to_json();
        assert!(json.contains("\"generations\":["));
        crate::json::parse_json(&json).expect("profile json parses");
    }

    #[test]
    fn canonical_trace_is_wall_clock_free_and_seq_ordered() {
        let events = sample_trace();
        let canon = canonical_trace(&events);
        assert!(!canon.contains("wall_ns"));
        assert!(!canon.contains("nondet"));
        let seqs: Vec<u64> = canon
            .lines()
            .map(|l| {
                let j = crate::json::parse_json(l).unwrap();
                j.get("seq").unwrap().as_u64().unwrap()
            })
            .collect();
        let mut expected = seqs.clone();
        expected.sort_unstable();
        assert_eq!(seqs, expected);

        // Shuffled input canonicalizes identically.
        let mut reversed: Vec<Event> = events.clone();
        reversed.reverse();
        assert_eq!(canonical_trace(&reversed), canon);
    }

    #[test]
    fn canonicalize_jsonl_matches_in_memory_canonicalization() {
        let events = sample_trace();
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        assert_eq!(
            canonicalize_jsonl(&jsonl).unwrap(),
            canonical_trace(&events)
        );
    }
}
