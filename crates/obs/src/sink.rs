//! Pluggable event sinks: the in-memory ring buffer and the JSONL file
//! writer. Sinks receive every event exactly once, in sequence order,
//! under the recorder's emission lock.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A destination for recorded events.
///
/// `record` is called under the recorder's emission lock, so sinks see
/// events strictly in `seq` order and do not need their own ordering
/// logic (the interior mutexes below only guard against `&self` aliasing).
pub trait Sink: Send + Sync {
    /// Consumes one event. Events arrive shared (`Arc`) so in-memory sinks
    /// can retain them without a deep clone — emission is a hot path.
    fn record(&self, event: &Arc<Event>);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
    /// Flushes *and* makes the output durable (fsync for file-backed
    /// sinks). Called at checkpoint boundaries, where the trace prefix
    /// must survive a crash immediately after; defaults to [`flush`].
    ///
    /// [`flush`]: Sink::flush
    fn sync(&self) {
        self.flush();
    }
    /// How many events this sink has silently lost so far — ring
    /// evictions, failed file writes, anything that makes the sink's view
    /// of the trace incomplete. Defaults to 0 (lossless sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Bounded in-memory buffer keeping the most recent events.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<Arc<Event>>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(RingState::default()),
        }
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let state = self.buf.lock().expect("ring sink poisoned");
        state.events.iter().map(|e| (**e).clone()).collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("ring sink poisoned").dropped
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Arc<Event>) {
        let mut state = self.buf.lock().expect("ring sink poisoned");
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(Arc::clone(event));
    }

    fn dropped(&self) -> u64 {
        RingSink::dropped(self)
    }
}

/// Streams events to a file as JSON Lines, one event per line.
#[derive(Debug)]
pub struct JsonlSink {
    state: Mutex<JsonlState>,
    /// Events with `seq <= skip_upto` are dropped instead of written —
    /// used on resume, where the driver re-emits the deterministic trace
    /// preamble (to rebuild span parentage) that the salvaged file already
    /// contains.
    skip_upto: u64,
    /// Events whose line could not be written (disk full, revoked handle).
    /// Trace I/O stays best-effort, but the loss is no longer invisible:
    /// [`Sink::dropped`] surfaces it to profile output and serve stats.
    write_errors: AtomicU64,
}

#[derive(Debug)]
struct JsonlState {
    writer: BufWriter<File>,
    /// Reused serialization buffer — emission is a hot path (one counter
    /// per evaluated candidate) and a fresh String per event would double
    /// its allocation cost.
    line: String,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::from_file(File::create(path)?, 0)
    }

    /// Opens the trace file at `path` for appending, dropping events whose
    /// `seq` is at or below `skip_upto`. This is the resume mode: the
    /// salvaged part-1 trace stays in place, the re-emitted preamble is
    /// suppressed, and part-2 events continue the line stream seamlessly.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened.
    pub fn append(path: &Path, skip_upto: u64) -> std::io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Self::from_file(file, skip_upto)
    }

    fn from_file(file: File, skip_upto: u64) -> std::io::Result<Self> {
        Ok(JsonlSink {
            state: Mutex::new(JsonlState {
                // A generous buffer keeps write syscalls off the emission
                // hot path; flush() drains it at exploration end.
                writer: BufWriter::with_capacity(1 << 18, file),
                line: String::with_capacity(256),
            }),
            skip_upto,
            write_errors: AtomicU64::new(0),
        })
    }

    /// How many events failed to reach the file.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Arc<Event>) {
        if event.seq <= self.skip_upto {
            return;
        }
        let state = &mut *self.state.lock().expect("jsonl sink poisoned");
        state.line.clear();
        event.write_jsonl(&mut state.line);
        state.line.push('\n');
        // Trace I/O is best-effort: an exploration must never fail because
        // the trace disk filled up. The failure is counted instead, so
        // profile output and serve stats can report the incomplete trace.
        if state.writer.write_all(state.line.as_bytes()).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let state = &mut *self.state.lock().expect("jsonl sink poisoned");
        if state.writer.flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dropped(&self) -> u64 {
        self.write_errors()
    }

    fn sync(&self) {
        let state = &mut *self.state.lock().expect("jsonl sink poisoned");
        if state.writer.flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
        // Best-effort durability: a checkpointing run syncs at every
        // generation boundary and expects the trace prefix to survive a
        // crash right after; plain flush only reaches the OS page cache.
        let _ = state.writer.get_ref().sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            kind: EventKind::Mark,
            name: format!("m{seq}").into(),
            span: None,
            parent: None,
            fields: Vec::new(),
            nondet: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring = RingSink::new(3);
        for seq in 1..=5 {
            ring.record(&Arc::new(ev(seq)));
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = RingSink::new(0);
        ring.record(&Arc::new(ev(1)));
        ring.record(&Arc::new(ev(2)));
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn append_mode_skips_already_persisted_events() {
        let dir = std::env::temp_dir().join("mcmap_obs_sink_append_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Arc::new(ev(1)));
        sink.record(&Arc::new(ev(2)));
        sink.flush();
        drop(sink);
        // Resume: re-emitted events 1–2 are suppressed, 3 continues.
        let sink = JsonlSink::append(&path, 2).unwrap();
        for seq in 1..=3 {
            sink.record(&Arc::new(ev(seq)));
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let seqs: Vec<&str> = text.lines().collect();
        assert_eq!(seqs.len(), 3);
        assert!(seqs[2].contains("\"seq\":3"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("mcmap_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Arc::new(ev(1)));
        sink.record(&Arc::new(ev(2)));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().next().unwrap().contains("\"seq\":1"));
        std::fs::remove_file(&path).ok();
    }
}
