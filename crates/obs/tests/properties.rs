//! Property tests for the obs event model: JSONL round-trips, canonical
//! stability, and recorder sequencing invariants.

use mcmap_obs::{
    canonical_trace, events_from_jsonl, Event, EventKind, Key, Recorder, TraceProfile, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        // Finite floats only: non-finite values render as JSON null by
        // design and therefore do not round-trip.
        (-1e12f64..1e12).prop_map(Value::F64),
        any::<bool>().prop_map(Value::Bool),
        prop::sample::select(vec![
            "".to_string(),
            "MC0110,MC0111".to_string(),
            "cruise".to_string(),
            "a\"b\\c".to_string(),
            "tab\there".to_string(),
            "é — utf8".to_string(),
        ])
        .prop_map(Value::Str),
    ]
}

fn arb_fields() -> impl Strategy<Value = Vec<(Key, Value)>> {
    let key = prop::sample::select(vec![
        "transitions".to_string(),
        "backend_calls".to_string(),
        "feasible".to_string(),
        "best_0".to_string(),
        "hv".to_string(),
        "codes".to_string(),
    ]);
    prop::collection::vec((key.prop_map(Key::Owned), arb_value()), 0..6)
}

fn arb_opt_id() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), 1u64..1_000_000).prop_map(|(some, v)| some.then_some(v))
}

fn arb_event() -> impl Strategy<Value = Event> {
    let kind = prop_oneof![
        Just(EventKind::SpanBegin),
        Just(EventKind::SpanEnd),
        Just(EventKind::Counter),
        Just(EventKind::Mark),
    ];
    let name = prop::sample::select(vec![
        "dse.explore".to_string(),
        "ga.generation".to_string(),
        "eval.batch".to_string(),
        "sched.analyze".to_string(),
        "repair.structure".to_string(),
    ]);
    (
        (1u64..1_000_000, kind, name),
        (arb_opt_id(), arb_opt_id()),
        (arb_fields(), arb_fields()),
    )
        .prop_map(
            |((seq, kind, name), (span, parent), (fields, nondet))| Event {
                seq,
                kind,
                name: Key::Owned(name),
                span,
                parent,
                fields,
                nondet,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every event's JSONL line survives a write/parse/re-write
    /// round-trip byte-for-byte — the on-disk contract.
    #[test]
    fn jsonl_roundtrip_is_lossless_at_the_text_level(ev in arb_event()) {
        let line = ev.to_jsonl();
        let parsed = events_from_jsonl(&line).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].to_jsonl(), line);
    }

    /// Canonicalization is order-insensitive and strips every nondet field.
    #[test]
    fn canonical_trace_is_permutation_stable(
        mut events in prop::collection::vec(arb_event(), 1..12)
    ) {
        // Make seqs unique so ordering is total.
        for (i, ev) in events.iter_mut().enumerate() {
            ev.seq = (i as u64 + 1) * 7;
        }
        let canon = canonical_trace(&events);
        let mut reversed = events.clone();
        reversed.reverse();
        prop_assert_eq!(canonical_trace(&reversed), canon.clone());
        prop_assert!(!canon.contains("\"nondet\""));
    }

    /// The profile never loses or invents events, its JSON always parses,
    /// and span self-time never exceeds total time.
    #[test]
    fn profile_conserves_events_and_time(events in prop::collection::vec(arb_event(), 0..24)) {
        let profile = TraceProfile::from_events(&events);
        prop_assert_eq!(profile.events, events.len());
        for span in &profile.spans {
            prop_assert!(span.self_ns <= span.total_ns);
        }
        mcmap_obs::parse_json(&profile.to_json()).unwrap();
    }
}

#[test]
fn recorder_seq_is_gapless_under_concurrent_emission() {
    let rec = Recorder::ring(4096);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let rec = rec.clone();
            scope.spawn(move || {
                for i in 0..64u64 {
                    rec.counter("t", &[("thread", Value::U64(t)), ("i", Value::U64(i))]);
                }
            });
        }
    });
    let mut seqs: Vec<u64> = rec.events().iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    let expected: Vec<u64> = (1..=256).collect();
    assert_eq!(seqs, expected, "every seq 1..=256 assigned exactly once");
}

#[test]
fn disabled_recorder_emits_nothing_even_across_clones() {
    let rec = Recorder::default();
    let clone = rec.clone();
    clone.counter("x", &[]);
    let _span = clone.span("y", &[]);
    assert_eq!(rec.emitted(), 0);
    assert!(!clone.enabled());
}
