//! Random synthetic benchmarks (the paper's *Synth-1* / *Synth-2*).
//!
//! Layered-DAG task graphs in the TGFF tradition: tasks are distributed
//! over layers and every non-source task consumes from at least one task of
//! the previous layer. All parameters are captured in [`SynthConfig`] so
//! sweeps (e.g. the analysis-scaling bench) can dial workload size
//! precisely; generation is fully determined by the seed.

use crate::{arch_large, arch_medium, util::btask, Benchmark};
use mcmap_model::{AppSet, Criticality, TaskGraph, Time};
use mcmap_sched::{uniform_policies, SchedPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic benchmark generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of applications.
    pub num_apps: usize,
    /// Inclusive range of tasks per application.
    pub tasks_per_app: (usize, usize),
    /// Maximum tasks per DAG layer.
    pub max_layer_width: usize,
    /// Candidate invocation periods (picked uniformly per app).
    pub periods: Vec<u64>,
    /// Inclusive WCET range on the big cores; BCET is drawn as a fraction
    /// of the WCET.
    pub wcet_range: (u64, u64),
    /// Deadline as a percentage of the period (100 = implicit deadline).
    pub deadline_pct: u64,
    /// Fraction of applications that are droppable (rounded down, but at
    /// least one application stays non-droppable).
    pub droppable_fraction: f64,
    /// Reliability bound for non-droppable applications.
    pub max_failure_rate: f64,
    /// Use the 8-core platform instead of the 4-core one.
    pub large_platform: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            num_apps: 4,
            tasks_per_app: (4, 6),
            max_layer_width: 3,
            periods: vec![6_000, 8_000, 12_000, 24_000],
            wcet_range: (60, 200),
            deadline_pct: 100,
            droppable_fraction: 0.5,
            max_failure_rate: 1e-5,
            large_platform: false,
        }
    }
}

/// The *Synth-1* preset: a generously provisioned system (large platform,
/// implicit deadlines) where feasibility pressure comes from raw load, not
/// from the critical state — dropping almost never rescues a candidate
/// (the paper reports a 0.02 % rescue ratio for its Synth-1).
pub fn synth1(seed: u64) -> Benchmark {
    let cfg = SynthConfig {
        num_apps: 5,
        tasks_per_app: (5, 8),
        periods: vec![4_000, 6_000, 8_000, 12_000],
        wcet_range: (90, 320),
        deadline_pct: 100,
        large_platform: true,
        ..SynthConfig::default()
    };
    let mut b = synth(&cfg, seed);
    b.name = "Synth-1".to_string();
    b
}

/// The *Synth-2* preset: a smaller platform where hardened critical tasks
/// share cores with the droppable applications, so the critical state
/// occasionally threatens the latter and dropping rescues a few candidates
/// (0.685 % in the paper).
pub fn synth2(seed: u64) -> Benchmark {
    let mut b = synth(&SynthConfig::default(), seed);
    b.name = "Synth-2".to_string();
    b
}

/// Generates a random benchmark from the configuration. Identical
/// `(config, seed)` pairs produce identical benchmarks.
pub fn synth(cfg: &SynthConfig, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_droppable = ((cfg.num_apps as f64 * cfg.droppable_fraction) as usize)
        .min(cfg.num_apps.saturating_sub(1));

    let mut graphs = Vec::with_capacity(cfg.num_apps);
    for a in 0..cfg.num_apps {
        let period = cfg.periods[rng.gen_range(0..cfg.periods.len())];
        let droppable = a >= cfg.num_apps - num_droppable;
        let criticality = if droppable {
            Criticality::Droppable {
                service: rng.gen_range(1..=4) as f64,
            }
        } else {
            Criticality::NonDroppable {
                max_failure_rate: cfg.max_failure_rate,
            }
        };
        let n = rng.gen_range(cfg.tasks_per_app.0..=cfg.tasks_per_app.1);
        let mut builder = TaskGraph::builder(format!("synth-app{a}"), Time::from_ticks(period))
            .deadline(Time::from_ticks(period * cfg.deadline_pct / 100))
            .criticality(criticality);

        // Distribute tasks over layers.
        let mut layers: Vec<Vec<usize>> = Vec::new();
        let mut placed = 0usize;
        while placed < n {
            let width = rng.gen_range(1..=cfg.max_layer_width).min(n - placed);
            layers.push((placed..placed + width).collect());
            placed += width;
        }
        for t in 0..n {
            let wcet = rng.gen_range(cfg.wcet_range.0..=cfg.wcet_range.1);
            let bcet = wcet * rng.gen_range(40..=90) / 100;
            builder = builder.task(btask(&format!("a{a}t{t}"), bcet.max(1), wcet));
        }
        // Wire every non-first-layer task to ≥1 predecessor in the previous
        // layer; add occasional extra edges for diamond shapes.
        for l in 1..layers.len() {
            let prev = layers[l - 1].clone();
            for &t in &layers[l] {
                let src = prev[rng.gen_range(0..prev.len())];
                builder = builder.channel(src, t, rng.gen_range(8..=128));
                if prev.len() > 1 && rng.gen_bool(0.3) {
                    let extra = prev[rng.gen_range(0..prev.len())];
                    if extra != src {
                        builder = builder.channel(extra, t, rng.gen_range(8..=128));
                    }
                }
            }
        }
        graphs.push(builder.build().expect("generator emits valid graphs"));
    }

    let apps = AppSet::new(graphs).expect("generator emits at least one app");
    let arch = if cfg.large_platform {
        arch_large()
    } else {
        arch_medium()
    };
    let policies = uniform_policies(arch.num_processors(), SchedPolicy::FixedPriorityPreemptive);
    Benchmark {
        name: format!("Synth(seed={seed})"),
        apps,
        arch,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synth(&SynthConfig::default(), 42);
        let b = synth(&SynthConfig::default(), 42);
        assert_eq!(a.apps, b.apps);
        let c = synth(&SynthConfig::default(), 43);
        assert_ne!(a.apps, c.apps);
    }

    #[test]
    fn presets_match_description() {
        let s1 = synth1(7);
        assert_eq!(s1.name, "Synth-1");
        assert_eq!(s1.apps.num_apps(), 5);
        assert_eq!(s1.arch.num_processors(), 8);
        assert!(s1.apps.nondroppable_apps().count() >= 1);

        let s2 = synth2(7);
        assert_eq!(s2.name, "Synth-2");
        assert_eq!(s2.apps.num_apps(), 4);
        assert_eq!(s2.arch.num_processors(), 4);
    }

    #[test]
    fn task_counts_respect_configuration() {
        let cfg = SynthConfig {
            num_apps: 3,
            tasks_per_app: (5, 5),
            ..SynthConfig::default()
        };
        let b = synth(&cfg, 1);
        assert_eq!(b.apps.num_tasks(), 15);
        for (_, app) in b.apps.apps() {
            assert_eq!(app.num_tasks(), 5);
        }
    }

    #[test]
    fn at_least_one_app_stays_nondroppable() {
        let cfg = SynthConfig {
            num_apps: 2,
            droppable_fraction: 1.0,
            ..SynthConfig::default()
        };
        let b = synth(&cfg, 9);
        assert!(b.apps.nondroppable_apps().count() >= 1);
    }

    #[test]
    fn every_non_source_task_has_a_predecessor() {
        let b = synth(&SynthConfig::default(), 11);
        for (_, app) in b.apps.apps() {
            let sources: Vec<_> = app.sources().collect();
            for t in app.task_ids() {
                if !sources.contains(&t) {
                    assert!(app.predecessors(t).count() >= 1);
                }
            }
        }
    }

    #[test]
    fn scaling_config_grows_task_count() {
        let small = synth(
            &SynthConfig {
                num_apps: 2,
                tasks_per_app: (3, 3),
                ..SynthConfig::default()
            },
            5,
        );
        let big = synth(
            &SynthConfig {
                num_apps: 6,
                tasks_per_app: (8, 8),
                ..SynthConfig::default()
            },
            5,
        );
        assert!(big.apps.num_tasks() > small.apps.num_tasks() * 3);
    }
}
