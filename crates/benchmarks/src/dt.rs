//! The *DT-med* and *DT-large* benchmarks.
//!
//! Reconstructed from the public description of the DREAM tool's
//! "medium/large distributed non-preemptive real-time CORBA application"
//! models (Madl et al., [21] in the paper). As in §5 of the paper, the
//! original invocation periods and execution times are scaled ×20 to add
//! complexity and uncertainty. The middleware is non-preemptive, so both
//! benchmarks default to non-preemptive fixed-priority processors.

use crate::{arch_large, arch_medium, util::btask, Benchmark};
use mcmap_model::{AppSet, Criticality, TaskGraph, Time};
use mcmap_sched::{uniform_policies, SchedPolicy};

/// The medium CORBA control benchmark: two non-droppable control chains and
/// three droppable service pipelines (24 tasks) on the 4-core platform.
///
/// # Examples
///
/// ```
/// let b = mcmap_benchmarks::dt_med();
/// assert_eq!(b.apps.num_tasks(), 24);
/// ```
pub fn dt_med() -> Benchmark {
    // Periods/WCETs already carry the ×20 scaling (base ~10/20 tick tasks
    // at 200/300-tick periods).
    let ctrl_a = TaskGraph::builder("ctrl-a", Time::from_ticks(4_000))
        .deadline(Time::from_ticks(3_600))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(btask("sense_a", 100, 200))
        .task(btask("filter_a", 120, 260))
        .task(btask("law_a", 160, 340))
        .task(btask("limit_a", 80, 180))
        .task(btask("act_a", 100, 220))
        .channel(0, 1, 32)
        .channel(1, 2, 32)
        .channel(2, 3, 16)
        .channel(3, 4, 16)
        .build()
        .expect("static benchmark is valid");

    let ctrl_b = TaskGraph::builder("ctrl-b", Time::from_ticks(6_000))
        .deadline(Time::from_ticks(5_200))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(btask("sense_b0", 80, 180))
        .task(btask("sense_b1", 80, 180))
        .task(btask("fuse_b", 140, 300))
        .task(btask("law_b", 180, 400))
        .task(btask("act_b", 100, 240))
        .channel(0, 2, 32)
        .channel(1, 2, 32)
        .channel(2, 3, 32)
        .channel(3, 4, 16)
        .build()
        .expect("static benchmark is valid");

    // Telemetry is a long pipeline of short middleware stages — small
    // per-task blocking keeps co-location with the control chains viable
    // under non-preemptive scheduling.
    let telemetry = TaskGraph::builder("telemetry", Time::from_ticks(12_000))
        .deadline(Time::from_ticks(9_000))
        .criticality(Criticality::Droppable { service: 2.0 })
        .task(btask("collect", 110, 240))
        .task(btask("filter", 100, 220))
        .task(btask("compress0", 130, 280))
        .task(btask("compress1", 130, 280))
        .task(btask("encrypt", 110, 230))
        .task(btask("frame", 90, 200))
        .task(btask("sign", 80, 180))
        .task(btask("send", 70, 160))
        .channel(0, 1, 256)
        .channel(1, 2, 192)
        .channel(2, 3, 128)
        .channel(3, 4, 128)
        .channel(4, 5, 128)
        .channel(5, 6, 128)
        .channel(6, 7, 128)
        .build()
        .expect("static benchmark is valid");

    let diag = TaskGraph::builder("diag", Time::from_ticks(6_000))
        .deadline(Time::from_ticks(4_500))
        .criticality(Criticality::Droppable { service: 3.0 })
        .task(btask("d_poll", 70, 150))
        .task(btask("d_analyze", 80, 170))
        .task(btask("d_report", 60, 130))
        .channel(0, 1, 64)
        .channel(1, 2, 32)
        .build()
        .expect("static benchmark is valid");

    let logging = TaskGraph::builder("logging", Time::from_ticks(12_000))
        .deadline(Time::from_ticks(8_000))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(btask("l_gather", 60, 140))
        .task(btask("l_pack", 70, 150))
        .task(btask("l_flush", 50, 120))
        .channel(0, 1, 128)
        .channel(1, 2, 64)
        .build()
        .expect("static benchmark is valid");

    let apps = AppSet::new(vec![ctrl_a, ctrl_b, telemetry, diag, logging])
        .expect("static benchmark is valid");
    let arch = arch_medium();
    let policies = uniform_policies(
        arch.num_processors(),
        SchedPolicy::FixedPriorityNonPreemptive,
    );
    Benchmark {
        name: "DT-med".to_string(),
        apps,
        arch,
        policies,
    }
}

/// The large CORBA control benchmark: two non-droppable chains and three
/// droppable pipelines (33 tasks) on the 8-core platform.
///
/// # Examples
///
/// ```
/// let b = mcmap_benchmarks::dt_large();
/// assert_eq!(b.apps.num_tasks(), 33);
/// assert_eq!(b.arch.num_processors(), 8);
/// ```
pub fn dt_large() -> Benchmark {
    let ctrl_x = TaskGraph::builder("ctrl-x", Time::from_ticks(4_000))
        .deadline(Time::from_ticks(3_900))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(btask("x_sense0", 80, 180))
        .task(btask("x_sense1", 80, 180))
        .task(btask("x_fuse", 120, 280))
        .task(btask("x_law", 180, 380))
        .task(btask("x_check", 80, 180))
        .task(btask("x_act0", 90, 200))
        .task(btask("x_act1", 90, 200))
        .channel(0, 2, 32)
        .channel(1, 2, 32)
        .channel(2, 3, 32)
        .channel(3, 4, 16)
        .channel(4, 5, 16)
        .channel(4, 6, 16)
        .build()
        .expect("static benchmark is valid");

    let ctrl_y = TaskGraph::builder("ctrl-y", Time::from_ticks(8_000))
        .deadline(Time::from_ticks(7_200))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(btask("y_sense", 120, 260))
        .task(btask("y_filter", 160, 340))
        .task(btask("y_model", 220, 480))
        .task(btask("y_law", 200, 440))
        .task(btask("y_limit", 100, 220))
        .task(btask("y_act", 120, 260))
        .task(btask("y_report", 80, 180))
        .channel(0, 1, 32)
        .channel(1, 2, 64)
        .channel(2, 3, 32)
        .channel(3, 4, 16)
        .channel(4, 5, 16)
        .channel(4, 6, 16)
        .build()
        .expect("static benchmark is valid");

    let vision = TaskGraph::builder("vision", Time::from_ticks(12_000))
        .deadline(Time::from_ticks(9_500))
        .criticality(Criticality::Droppable { service: 3.0 })
        .task(btask("grab", 140, 300))
        .task(btask("demosaic", 160, 340))
        .task(btask("scale", 120, 260))
        .task(btask("detect0", 180, 380))
        .task(btask("detect1", 180, 380))
        .task(btask("track", 150, 320))
        .task(btask("overlay", 110, 240))
        .channel(0, 1, 512)
        .channel(1, 2, 512)
        .channel(2, 3, 256)
        .channel(3, 4, 128)
        .channel(4, 5, 128)
        .channel(5, 6, 128)
        .build()
        .expect("static benchmark is valid");

    let telemetry = TaskGraph::builder("telemetry", Time::from_ticks(16_000))
        .deadline(Time::from_ticks(10_000))
        .criticality(Criticality::Droppable { service: 2.0 })
        .task(btask("t_collect", 110, 240))
        .task(btask("t_filter", 100, 220))
        .task(btask("t_compress0", 130, 280))
        .task(btask("t_compress1", 130, 280))
        .task(btask("t_encrypt", 110, 230))
        .task(btask("t_frame", 90, 200))
        .task(btask("t_send", 70, 160))
        .channel(0, 1, 256)
        .channel(1, 2, 192)
        .channel(2, 3, 128)
        .channel(3, 4, 128)
        .channel(4, 5, 128)
        .channel(5, 6, 128)
        .build()
        .expect("static benchmark is valid");

    let maintenance = TaskGraph::builder("maintenance", Time::from_ticks(16_000))
        .deadline(Time::from_ticks(8_000))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(btask("m_poll", 100, 220))
        .task(btask("m_analyze0", 120, 260))
        .task(btask("m_analyze1", 120, 260))
        .task(btask("m_store", 100, 220))
        .task(btask("m_notify", 70, 160))
        .channel(0, 1, 128)
        .channel(1, 2, 128)
        .channel(2, 3, 128)
        .channel(3, 4, 32)
        .build()
        .expect("static benchmark is valid");

    let apps = AppSet::new(vec![ctrl_x, ctrl_y, vision, telemetry, maintenance])
        .expect("static benchmark is valid");
    let arch = arch_large();
    let policies = uniform_policies(
        arch.num_processors(),
        SchedPolicy::FixedPriorityNonPreemptive,
    );
    Benchmark {
        name: "DT-large".to_string(),
        apps,
        arch,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_med_structure() {
        let b = dt_med();
        assert_eq!(b.apps.num_apps(), 5);
        assert_eq!(b.apps.nondroppable_apps().count(), 2);
        assert_eq!(b.apps.total_service(), 6.0);
        assert_eq!(b.apps.hyperperiod(), Time::from_ticks(12_000));
        assert!(b
            .policies
            .iter()
            .all(|&p| p == SchedPolicy::FixedPriorityNonPreemptive));
    }

    #[test]
    fn dt_large_structure() {
        let b = dt_large();
        assert_eq!(b.apps.num_apps(), 5);
        assert_eq!(b.apps.droppable_apps().count(), 3);
        assert_eq!(b.apps.total_service(), 6.0);
    }

    #[test]
    fn graphs_are_connected_pipelines() {
        for b in [dt_med(), dt_large()] {
            for (_, app) in b.apps.apps() {
                // Every non-source task has at least one predecessor and the
                // graph has exactly one sink component reachable: sanity via
                // sources/sinks counts.
                assert!(app.sources().count() >= 1);
                assert!(app.sinks().count() >= 1);
                assert!(app.num_channels() >= app.num_tasks() - 2);
            }
        }
    }
}
