//! # mcmap-benchmarks
//!
//! The benchmark systems of §5 of *Kang et al., DAC 2014*:
//!
//! * [`cruise`] — a cruise-control system (after Kandasamy et al. \[20\]):
//!   two safety-critical control applications plus three synthetic
//!   droppable companions;
//! * [`dt_med`] / [`dt_large`] — distributed non-preemptive CORBA control
//!   applications (after the DREAM models \[21\]) with the paper's ×20
//!   period/WCET scaling;
//! * [`synth`] with the [`synth1`] / [`synth2`] presets — seeded random
//!   layered-DAG benchmarks for controlled sweeps;
//! * [`fleet`] with the `fleet-small` / `fleet-med` / `fleet-large`
//!   presets — 500–5000-task application sets on 16–64-PE
//!   interference-aware heterogeneous platforms, the workloads the
//!   parallel evaluation path is tuned against (`BENCH_scale.json`).
//!
//! The original models are not redistributable; these are structural
//! reconstructions from the public descriptions (see DESIGN.md §3), kept in
//! plain Rust so every parameter is inspectable.
//!
//! # Examples
//!
//! ```
//! let b = mcmap_benchmarks::cruise();
//! println!("{}: {} tasks on {} PEs", b.name, b.apps.num_tasks(),
//!     b.arch.num_processors());
//! assert!(b.apps.nondroppable_apps().count() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
mod cruise;
mod dt;
mod fleet;
mod synth;
mod util;

pub use arch::{arch_large, arch_medium, arch_small};
pub use cruise::cruise;
pub use dt::{dt_large, dt_med};
pub use fleet::{
    fleet, fleet_benchmark, fleet_large_config, fleet_med_config, fleet_preset, fleet_small_config,
    FleetConfig, PeClass,
};
pub use synth::{synth, synth1, synth2, SynthConfig};

use mcmap_model::{AppSet, Architecture};
use mcmap_sched::SchedPolicy;

/// A complete benchmark: application set, platform, and per-processor
/// scheduling policies.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (e.g. `"Cruise"`).
    pub name: String,
    /// The application set.
    pub apps: AppSet,
    /// The target platform.
    pub arch: Architecture,
    /// Local scheduling policy of each processor.
    pub policies: Vec<SchedPolicy>,
}

/// All named benchmarks of the paper's evaluation, with the given seed for
/// the synthetic ones.
pub fn all_benchmarks(seed: u64) -> Vec<Benchmark> {
    vec![synth1(seed), synth2(seed), dt_med(), dt_large(), cruise()]
}
