//! The fleet generator: workloads big enough that parallelism pays.
//!
//! The paper scales its evaluation by multiplying the DT benchmark ×20
//! (§5); the fleet generator pushes further in the same TGFF-like tradition
//! as [`synth`](crate::synth): seeded, fully deterministic generation of
//! 500–5000-task layered-DAG application sets mapped onto 16–64-PE
//! heterogeneous platforms. Platforms are built from [`PeClass`]es — each
//! class is one [`ProcKind`](mcmap_model::ProcKind) with its own WCET
//! scaling and an **interference-aware slowdown**: tasks on a class pay a
//! WCET surcharge per sibling core in that class, the classic shared
//! memory/interconnect contention model of many-PE MPSoCs (Hassan's survey,
//! PAPERS.md). Deep hardening spaces come from the per-preset
//! [`FleetConfig::max_reexec`]/[`FleetConfig::max_replicas`] bounds that the
//! experiment drivers feed into the DSE config.
//!
//! Everything is determined by `(config, seed)`: the generator draws from a
//! single [`StdRng`] stream, uses no host properties, and therefore emits
//! bit-identical models across runs and platforms (property-tested in
//! `tests/fleet_props.rs`).

use crate::Benchmark;
use mcmap_model::{
    AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcKind, Processor, Task, TaskGraph,
    Time,
};
use mcmap_sched::{uniform_policies, SchedPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One processor class of a fleet platform: `count` identical cores
/// sharing a [`ProcKind`], an execution-speed scale, and an interference
/// surcharge that grows with the class's own size.
#[derive(Debug, Clone, PartialEq)]
pub struct PeClass {
    /// Class name; cores are named `{name}{i}`.
    pub name: &'static str,
    /// Number of cores in the class.
    pub count: usize,
    /// WCET scale relative to the reference class, in percent
    /// (100 = reference speed, 180 = 1.8× slower).
    pub speed_pct: u64,
    /// Interference-aware slowdown: basis points of extra WCET per
    /// *additional* core in the class (shared-memory contention grows with
    /// the number of siblings hammering the same interconnect). A class of
    /// one core pays nothing.
    pub interference_bp: u64,
    /// Static power draw of each core.
    pub stat_power: f64,
    /// Dynamic power draw of each core.
    pub dyn_power: f64,
    /// Per-tick transient-fault rate of each core.
    pub fault_rate: f64,
}

impl PeClass {
    /// The effective WCET multiplier of this class in percent: speed scale
    /// times the contention surcharge of `count - 1` sibling cores.
    pub fn effective_slowdown_pct(&self) -> u64 {
        let contention = 10_000 + self.interference_bp * (self.count.saturating_sub(1) as u64);
        self.speed_pct * contention / 10_000
    }
}

/// Parameters of the fleet generator. The DAG-shape fields mirror
/// [`SynthConfig`](crate::SynthConfig); the platform is described by
/// [`PeClass`]es instead of a fixed-size preset, and the hardening bounds
/// size the per-task design space the DSE explores.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Preset name (`"fleet-med"` …), used for display.
    pub name: &'static str,
    /// Number of applications.
    pub num_apps: usize,
    /// Inclusive range of tasks per application.
    pub tasks_per_app: (usize, usize),
    /// Maximum tasks per DAG layer.
    pub max_layer_width: usize,
    /// Candidate invocation periods (picked uniformly per app). Keep these
    /// harmonic — the hyperperiod bounds several analysis loops.
    pub periods: Vec<u64>,
    /// Inclusive WCET range on the reference class; BCET is drawn as a
    /// fraction of the WCET.
    pub wcet_range: (u64, u64),
    /// Deadline as a percentage of the period.
    pub deadline_pct: u64,
    /// Fraction of applications that are droppable (at least one
    /// application always stays non-droppable).
    pub droppable_fraction: f64,
    /// Reliability bound for non-droppable applications.
    pub max_failure_rate: f64,
    /// The platform, one [`ProcKind`] per class, in kind order.
    pub classes: Vec<PeClass>,
    /// Shared-fabric bandwidth (bytes per tick).
    pub fabric_bandwidth: u64,
    /// Re-execution bound the DSE should explore for this fleet.
    pub max_reexec: u8,
    /// Replica bound the DSE should explore for this fleet.
    pub max_replicas: u8,
}

/// The `fleet-small` preset: ~500 tasks over 36 apps on 16 PEs.
pub fn fleet_small_config() -> FleetConfig {
    FleetConfig {
        name: "fleet-small",
        num_apps: 36,
        tasks_per_app: (12, 16),
        max_layer_width: 4,
        periods: vec![6_000, 12_000, 24_000],
        // Light per-task WCETs relative to the period: with ~30 tasks per
        // core the end-to-end response of a layered app accumulates one
        // core's worth of same-or-higher-priority interference per layer,
        // so heavy tasks would push every chain past its implicit deadline
        // before the DSE had anything to optimize.
        wcet_range: (16, 64),
        deadline_pct: 100,
        droppable_fraction: 0.75,
        max_failure_rate: 1e-5,
        classes: vec![
            PeClass {
                name: "perf",
                count: 6,
                speed_pct: 100,
                interference_bp: 150,
                stat_power: 18.0,
                dyn_power: 140.0,
                fault_rate: 5e-8,
            },
            PeClass {
                name: "eff",
                count: 6,
                speed_pct: 170,
                interference_bp: 250,
                stat_power: 6.0,
                dyn_power: 55.0,
                fault_rate: 8e-8,
            },
            PeClass {
                name: "safe",
                count: 4,
                speed_pct: 140,
                interference_bp: 80,
                stat_power: 10.0,
                dyn_power: 80.0,
                fault_rate: 1e-8,
            },
        ],
        fabric_bandwidth: 128,
        max_reexec: 3,
        max_replicas: 3,
    }
}

/// The `fleet-med` preset: ~1400 tasks over 84 apps on 32 PEs. This is the
/// `BENCH_scale` reference workload.
pub fn fleet_med_config() -> FleetConfig {
    let mut cfg = fleet_small_config();
    cfg.name = "fleet-med";
    cfg.num_apps = 84;
    cfg.tasks_per_app = (14, 20);
    cfg.max_layer_width = 6;
    // Density rises to ~44 tasks/core (fleet-small: ~31), so per-task
    // WCETs shrink roughly in proportion to keep end-to-end responses
    // optimizer-reachable.
    cfg.wcet_range = (12, 48);
    // Larger classes would pay ruinous contention at fleet-small's rates
    // (250 bp × 11 siblings alone is +27.5 % WCET), so the surcharge per
    // sibling shrinks as the clusters grow — per-class totals still exceed
    // fleet-small's.
    for (class, (count, interference_bp)) in
        cfg.classes
            .iter_mut()
            .zip([(12usize, 100u64), (12, 150), (8, 60)])
    {
        class.count = count;
        class.interference_bp = interference_bp;
    }
    cfg.fabric_bandwidth = 256;
    cfg
}

/// The `fleet-large` preset: ~5000 tasks over 260 apps on 64 PEs. With
/// ~80 tasks per core, per-layer interference dominates end-to-end
/// response, so WCETs are much lighter than the smaller presets' and the
/// contention surcharge per sibling is milder still (a 24-core cluster at
/// `fleet-small`'s rates would pay 1.6× on contention alone) — the
/// per-class totals still exceed the smaller presets'.
pub fn fleet_large_config() -> FleetConfig {
    let mut cfg = fleet_small_config();
    cfg.name = "fleet-large";
    cfg.num_apps = 260;
    cfg.tasks_per_app = (17, 22);
    cfg.max_layer_width = 7;
    cfg.wcet_range = (6, 24);
    for (class, (count, interference_bp)) in
        cfg.classes
            .iter_mut()
            .zip([(24usize, 50u64), (24, 75), (16, 30)])
    {
        class.count = count;
        class.interference_bp = interference_bp;
    }
    cfg.fabric_bandwidth = 512;
    cfg.max_reexec = 4;
    cfg.max_replicas = 4;
    cfg
}

/// Looks up a preset by its CLI name (`fleet-small` / `fleet-med` /
/// `fleet-large`).
pub fn fleet_preset(name: &str) -> Option<FleetConfig> {
    match name {
        "fleet-small" => Some(fleet_small_config()),
        "fleet-med" => Some(fleet_med_config()),
        "fleet-large" => Some(fleet_large_config()),
        _ => None,
    }
}

/// Convenience: generates a preset fleet by name.
pub fn fleet_benchmark(name: &str, seed: u64) -> Option<Benchmark> {
    fleet_preset(name).map(|cfg| fleet(&cfg, seed))
}

/// Builds the platform of a fleet: `count` cores per class, kind `k` for
/// class index `k`, on one shared fabric.
fn fleet_arch(cfg: &FleetConfig) -> Architecture {
    let mut b = Architecture::builder();
    for (k, class) in cfg.classes.iter().enumerate() {
        for i in 0..class.count {
            b = b.processor(Processor::new(
                format!("{}{i}", class.name),
                ProcKind::new(k as u16),
                class.stat_power,
                class.dyn_power,
                class.fault_rate,
            ));
        }
    }
    b.fabric(Fabric::new(cfg.fabric_bandwidth).with_base_latency(Time::from_ticks(1)))
        .build()
        .expect("fleet platforms are valid by construction")
}

/// Builds one fleet task: the drawn bounds on the reference class, scaled
/// by each class's effective (speed × interference) slowdown elsewhere.
fn fleet_task(name: &str, bcet: u64, wcet: u64, classes: &[PeClass]) -> Task {
    let mut t = Task::new(name)
        .with_detect_overhead(Time::from_ticks(wcet / 20 + 1))
        .with_voting_overhead(Time::from_ticks(wcet / 25 + 1));
    for (k, class) in classes.iter().enumerate() {
        let pct = class.effective_slowdown_pct();
        t = t.with_exec(
            ProcKind::new(k as u16),
            ExecBounds::new(
                Time::from_ticks((bcet * pct / 100).max(1)),
                Time::from_ticks((wcet * pct / 100).max(1)),
            ),
        );
    }
    t
}

/// Generates a fleet benchmark. Identical `(config, seed)` pairs produce
/// identical benchmarks, bit for bit, on every host.
pub fn fleet(cfg: &FleetConfig, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_droppable = ((cfg.num_apps as f64 * cfg.droppable_fraction) as usize)
        .min(cfg.num_apps.saturating_sub(1));

    let mut graphs = Vec::with_capacity(cfg.num_apps);
    for a in 0..cfg.num_apps {
        let period = cfg.periods[rng.gen_range(0..cfg.periods.len())];
        let droppable = a >= cfg.num_apps - num_droppable;
        let criticality = if droppable {
            Criticality::Droppable {
                service: rng.gen_range(1..=4) as f64,
            }
        } else {
            Criticality::NonDroppable {
                max_failure_rate: cfg.max_failure_rate,
            }
        };
        let n = rng.gen_range(cfg.tasks_per_app.0..=cfg.tasks_per_app.1);
        let mut builder = TaskGraph::builder(format!("fleet-app{a}"), Time::from_ticks(period))
            .deadline(Time::from_ticks(period * cfg.deadline_pct / 100))
            .criticality(criticality);

        let mut layers: Vec<Vec<usize>> = Vec::new();
        let mut placed = 0usize;
        while placed < n {
            let width = rng.gen_range(1..=cfg.max_layer_width).min(n - placed);
            layers.push((placed..placed + width).collect());
            placed += width;
        }
        for t in 0..n {
            let wcet = rng.gen_range(cfg.wcet_range.0..=cfg.wcet_range.1);
            let bcet = (wcet * rng.gen_range(40..=90) / 100).max(1);
            builder = builder.task(fleet_task(&format!("a{a}t{t}"), bcet, wcet, &cfg.classes));
        }
        // Layered wiring, as in synth: ≥1 predecessor from the previous
        // layer per non-source task, plus occasional diamond edges.
        for l in 1..layers.len() {
            let prev = layers[l - 1].clone();
            for &t in &layers[l] {
                let src = prev[rng.gen_range(0..prev.len())];
                builder = builder.channel(src, t, rng.gen_range(8..=128));
                if prev.len() > 1 && rng.gen_bool(0.3) {
                    let extra = prev[rng.gen_range(0..prev.len())];
                    if extra != src {
                        builder = builder.channel(extra, t, rng.gen_range(8..=128));
                    }
                }
            }
        }
        graphs.push(builder.build().expect("generator emits valid graphs"));
    }

    let apps = AppSet::new(graphs).expect("generator emits at least one app");
    let arch = fleet_arch(cfg);
    let policies = uniform_policies(arch.num_processors(), SchedPolicy::FixedPriorityPreemptive);
    Benchmark {
        name: format!("{}(seed={seed})", cfg.name),
        apps,
        arch,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_hit_their_scale_targets() {
        let small = fleet(&fleet_small_config(), 1);
        assert!(
            (400..=700).contains(&small.apps.num_tasks()),
            "small: {} tasks",
            small.apps.num_tasks()
        );
        assert_eq!(small.arch.num_processors(), 16);

        let med = fleet(&fleet_med_config(), 1);
        assert!(
            (1100..=1800).contains(&med.apps.num_tasks()),
            "med: {} tasks",
            med.apps.num_tasks()
        );
        assert_eq!(med.arch.num_processors(), 32);

        let large = fleet(&fleet_large_config(), 1);
        assert!(
            (4400..=6000).contains(&large.apps.num_tasks()),
            "large: {} tasks",
            large.apps.num_tasks()
        );
        assert_eq!(large.arch.num_processors(), 64);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = fleet(&fleet_med_config(), 42);
        let b = fleet(&fleet_med_config(), 42);
        assert_eq!(a.apps, b.apps);
        let c = fleet(&fleet_med_config(), 43);
        assert_ne!(a.apps, c.apps);
    }

    #[test]
    fn interference_scales_with_class_size() {
        let lonely = PeClass {
            count: 1,
            ..fleet_small_config().classes[0].clone()
        };
        assert_eq!(lonely.effective_slowdown_pct(), 100);
        let crowded = PeClass {
            count: 11,
            ..lonely.clone()
        };
        // 150 bp × 10 siblings = +15 %.
        assert_eq!(crowded.effective_slowdown_pct(), 115);
    }

    #[test]
    fn every_task_runs_on_every_class() {
        let cfg = fleet_small_config();
        let b = fleet(&cfg, 3);
        for (_, app) in b.apps.apps() {
            for t in app.task_ids() {
                let task = app.task(t);
                for k in 0..cfg.classes.len() {
                    let exec = task
                        .exec_on(ProcKind::new(k as u16))
                        .expect("profile for every class");
                    assert!(exec.wcet >= exec.bcet && exec.bcet > Time::ZERO);
                }
            }
        }
    }

    #[test]
    fn preset_lookup_matches_names() {
        for name in ["fleet-small", "fleet-med", "fleet-large"] {
            assert_eq!(fleet_preset(name).unwrap().name, name);
        }
        assert!(fleet_preset("fleet-xl").is_none());
        let b = fleet_benchmark("fleet-small", 8).unwrap();
        assert!(b.name.starts_with("fleet-small"));
    }
}
