//! The *Cruise* benchmark.
//!
//! A cruise-control system reconstructed from the public description of
//! Kandasamy et al. ("Dependable communication synthesis for distributed
//! embedded systems", [20] in the paper): two safety-critical control
//! applications — the cruise speed-control loop and the brake monitor —
//! plus, as in §5 of the paper, three synthetic lower-criticality
//! applications added to raise the benchmark complexity. One tick ≈ 10 µs.

use crate::{arch_medium, util::btask, Benchmark};
use mcmap_model::{AppSet, Criticality, TaskGraph, Time};
use mcmap_sched::{uniform_policies, SchedPolicy};

/// Builds the Cruise benchmark: 2 non-droppable control applications and
/// 3 droppable synthetic companions on the 4-core heterogeneous platform.
///
/// # Examples
///
/// ```
/// let b = mcmap_benchmarks::cruise();
/// assert_eq!(b.apps.num_apps(), 5);
/// assert_eq!(b.apps.nondroppable_apps().count(), 2);
/// ```
pub fn cruise() -> Benchmark {
    let speed_control = TaskGraph::builder("speed-control", Time::from_ticks(2_000))
        .deadline(Time::from_ticks(1_100))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(btask("wheel_pulse", 40, 80)) // 0: wheel sensor sampling
        .task(btask("cruise_switch", 20, 50)) // 1: driver set/resume switch
        .task(btask("speed_est", 50, 100)) // 2: speed estimation filter
        .task(btask("ctrl_law", 60, 120)) // 3: PI control law
        .task(btask("throttle_act", 40, 90)) // 4: throttle actuation
        .channel(0, 2, 16)
        .channel(2, 3, 16)
        .channel(1, 3, 8)
        .channel(3, 4, 16)
        .build()
        .expect("static benchmark is valid");

    let brake_monitor = TaskGraph::builder("brake-monitor", Time::from_ticks(1_500))
        .deadline(Time::from_ticks(700))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-5,
        })
        .task(btask("brake_pedal", 30, 60)) // 0: pedal sensor
        .task(btask("brake_logic", 50, 110)) // 1: disengage decision
        .task(btask("brake_act", 40, 80)) // 2: cruise disengage actuation
        .channel(0, 1, 8)
        .channel(1, 2, 8)
        .build()
        .expect("static benchmark is valid");

    let nav = TaskGraph::builder("nav", Time::from_ticks(3_000))
        .deadline(Time::from_ticks(2_200))
        .criticality(Criticality::Droppable { service: 3.0 })
        .task(btask("gps_fix", 120, 260))
        .task(btask("map_match", 170, 360))
        .task(btask("route_eval", 140, 310))
        .task(btask("guidance", 100, 220))
        .channel(0, 1, 64)
        .channel(1, 2, 32)
        .channel(2, 3, 32)
        .build()
        .expect("static benchmark is valid");

    let infotainment = TaskGraph::builder("infotainment", Time::from_ticks(6_000))
        .deadline(Time::from_ticks(4_200))
        .criticality(Criticality::Droppable { service: 2.0 })
        .task(btask("media_decode", 230, 500))
        .task(btask("mixer", 60, 140))
        .task(btask("ui_render", 180, 390))
        .channel(0, 1, 128)
        .channel(1, 2, 64)
        .build()
        .expect("static benchmark is valid");

    let diagnostics = TaskGraph::builder("diagnostics", Time::from_ticks(6_000))
        .deadline(Time::from_ticks(4_200))
        .criticality(Criticality::Droppable { service: 1.0 })
        .task(btask("obd_poll", 80, 180))
        .task(btask("log_pack", 90, 210))
        .channel(0, 1, 64)
        .build()
        .expect("static benchmark is valid");

    let apps = AppSet::new(vec![
        speed_control,
        brake_monitor,
        nav,
        infotainment,
        diagnostics,
    ])
    .expect("static benchmark is valid");
    let arch = arch_medium();
    let policies = uniform_policies(arch.num_processors(), SchedPolicy::FixedPriorityPreemptive);
    Benchmark {
        name: "Cruise".to_string(),
        apps,
        arch,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_description() {
        let b = cruise();
        assert_eq!(b.apps.num_tasks(), 17);
        assert_eq!(b.apps.droppable_apps().count(), 3);
        assert_eq!(b.apps.hyperperiod(), Time::from_ticks(6_000));
        assert_eq!(b.apps.total_service(), 6.0);
    }

    #[test]
    fn critical_apps_have_constrained_deadlines() {
        let b = cruise();
        for id in b.apps.nondroppable_apps() {
            let app = b.apps.app(id);
            assert!(app.deadline() < app.period());
        }
    }

    #[test]
    fn nominal_utilization_fits_the_platform() {
        // Total big-core demand must leave headroom for hardening.
        let b = cruise();
        let mut u = 0.0;
        for (_, app) in b.apps.apps() {
            for (_, t) in app.tasks() {
                u += t
                    .exec_on(mcmap_model::ProcKind::new(0))
                    .unwrap()
                    .wcet
                    .as_f64()
                    / app.period().as_f64();
            }
        }
        assert!(u < 1.5, "total demand {u} should fit 4 cores with slack");
        assert!(u > 0.4, "benchmark should not be trivial, got {u}");
    }
}
