//! Reference MPSoC platforms used by the benchmarks.

use mcmap_model::{Architecture, Fabric, ProcKind, Processor, Time};

/// A small platform: two identical RISC cores on a shared bus.
pub fn arch_small() -> Architecture {
    Architecture::builder()
        .homogeneous(
            2,
            Processor::new("risc", ProcKind::new(0), 12.0, 95.0, 4e-8),
        )
        .fabric(Fabric::new(64).with_base_latency(Time::from_ticks(1)))
        .build()
        .expect("static platform is valid")
}

/// The default benchmark platform: four cores of two kinds (two big
/// general-purpose cores and two small cores with lower power but slower
/// execution). All benchmark tasks carry execution profiles for both kinds.
pub fn arch_medium() -> Architecture {
    Architecture::builder()
        .processor(Processor::new("big0", ProcKind::new(0), 18.0, 140.0, 5e-8))
        .processor(Processor::new("big1", ProcKind::new(0), 18.0, 140.0, 5e-8))
        .processor(Processor::new("little0", ProcKind::new(1), 6.0, 55.0, 8e-8))
        .processor(Processor::new("little1", ProcKind::new(1), 6.0, 55.0, 8e-8))
        .fabric(Fabric::new(64).with_base_latency(Time::from_ticks(1)))
        .build()
        .expect("static platform is valid")
}

/// A large platform: eight cores (four big, four little) on a wider fabric.
pub fn arch_large() -> Architecture {
    let mut b = Architecture::builder();
    for i in 0..4 {
        b = b.processor(Processor::new(
            format!("big{i}"),
            ProcKind::new(0),
            18.0,
            140.0,
            5e-8,
        ));
    }
    for i in 0..4 {
        b = b.processor(Processor::new(
            format!("little{i}"),
            ProcKind::new(1),
            6.0,
            55.0,
            8e-8,
        ));
    }
    b.fabric(Fabric::new(128).with_base_latency(Time::from_ticks(1)))
        .build()
        .expect("static platform is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_validate() {
        assert_eq!(arch_small().num_processors(), 2);
        assert_eq!(arch_medium().num_processors(), 4);
        assert_eq!(arch_large().num_processors(), 8);
    }

    #[test]
    fn medium_platform_is_heterogeneous() {
        let a = arch_medium();
        assert_eq!(a.num_kinds(), 2);
        let kinds: Vec<_> = a.processors().map(|(_, p)| p.kind).collect();
        assert_ne!(kinds[0], kinds[2]);
    }

    #[test]
    fn little_cores_draw_less_power() {
        let a = arch_medium();
        let big = a.processor(mcmap_model::ProcId::new(0));
        let little = a.processor(mcmap_model::ProcId::new(2));
        assert!(little.stat_power < big.stat_power);
        assert!(little.dyn_power < big.dyn_power);
    }
}
