//! Shared helpers for benchmark construction.

use mcmap_model::{ExecBounds, ProcKind, Task, Time};

/// Slowdown of the little (kind 1) cores relative to the big (kind 0)
/// cores, in percent (180 = 1.8× slower).
pub(crate) const LITTLE_SLOWDOWN_PCT: u64 = 180;

/// Builds a benchmark task with execution profiles for both processor
/// kinds: the given bounds on the big cores and a proportionally slower
/// profile on the little cores. Detection and voting overheads are scaled
/// from the WCET (context save/restore and majority voting are cheap
/// relative to the computation).
pub(crate) fn btask(name: &str, bcet: u64, wcet: u64) -> Task {
    debug_assert!(bcet <= wcet);
    let dt = wcet / 20 + 1;
    let ve = wcet / 25 + 1;
    Task::new(name)
        .with_exec(
            ProcKind::new(0),
            ExecBounds::new(Time::from_ticks(bcet), Time::from_ticks(wcet)),
        )
        .with_exec(
            ProcKind::new(1),
            ExecBounds::new(
                Time::from_ticks(bcet * LITTLE_SLOWDOWN_PCT / 100),
                Time::from_ticks(wcet * LITTLE_SLOWDOWN_PCT / 100),
            ),
        )
        .with_detect_overhead(Time::from_ticks(dt))
        .with_voting_overhead(Time::from_ticks(ve))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btask_profiles_both_kinds() {
        let t = btask("t", 50, 100);
        let big = t.exec_on(ProcKind::new(0)).unwrap();
        let little = t.exec_on(ProcKind::new(1)).unwrap();
        assert_eq!(big.wcet, Time::from_ticks(100));
        assert_eq!(little.wcet, Time::from_ticks(180));
        assert!(t.detect_overhead > Time::ZERO);
        assert!(t.voting_overhead > Time::ZERO);
    }
}
