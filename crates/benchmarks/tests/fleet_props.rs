//! Property tests of the fleet generator: for ANY preset and seed the
//! emitted system must be a valid model (lint-clean — no error-severity
//! diagnostics), its task graphs must be layered DAGs, and generation must
//! be bit-identical across repeated runs — the determinism the whole
//! benchmarking story (checkpoint resume, cross-host reproduction,
//! `BENCH_scale` fingerprint comparison) leans on.

use mcmap_benchmarks::{fleet, fleet_preset};
use mcmap_lint::{Linter, Severity};
use proptest::prelude::*;

fn preset_names() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("fleet-small"), Just("fleet-med"), Just("fleet-large"),]
}

proptest! {
    // Each case generates a full fleet (up to ~5000 tasks for fleet-large)
    // and lints it, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_preset_and_seed_is_lint_clean(
        name in preset_names(),
        seed in 0u64..10_000,
    ) {
        let cfg = fleet_preset(name).expect("known preset");
        let b = fleet(&cfg, seed);
        let report = Linter::new(&b.apps, &b.arch).lint();
        let errors: Vec<String> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect();
        prop_assert!(
            errors.is_empty(),
            "{name} seed {seed} emitted an invalid model: {errors:?}"
        );
    }

    #[test]
    fn graphs_are_layered_dags(
        name in preset_names(),
        seed in 0u64..10_000,
    ) {
        let cfg = fleet_preset(name).expect("known preset");
        let b = fleet(&cfg, seed);
        for (_, app) in b.apps.apps() {
            // Every channel goes from a lower task index to a higher one
            // (layers are emitted in topological order), so the graph is
            // acyclic by construction — verify the invariant held.
            for (_, ch) in app.channels() {
                prop_assert!(
                    ch.src.index() < ch.dst.index(),
                    "{name} seed {seed}: channel {} -> {} breaks layering",
                    ch.src.index(),
                    ch.dst.index()
                );
            }
            // And no task may exceed the configured layer width in
            // predecessors (1 structural + at most 1 diamond edge).
            for t in app.task_ids() {
                let preds = app.channels().filter(|(_, ch)| ch.dst == t).count();
                prop_assert!(preds <= 2, "task has {preds} predecessors");
            }
        }
    }

    #[test]
    fn generation_is_bit_identical_across_runs(
        name in preset_names(),
        seed in 0u64..10_000,
    ) {
        let cfg = fleet_preset(name).expect("known preset");
        let a = fleet(&cfg, seed);
        let b = fleet(&cfg, seed);
        prop_assert_eq!(a.apps, b.apps);
        prop_assert_eq!(a.arch, b.arch);
        prop_assert_eq!(a.name, b.name);
    }
}
