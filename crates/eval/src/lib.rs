//! # mcmap-eval
//!
//! A deterministic, parallel, memoizing candidate-evaluation engine for the
//! design-space exploration.
//!
//! The DSE's inner loop re-runs the full mixed-criticality WCRT analysis
//! (Algorithm 1: one scheduling-backend re-run per critical-state
//! transition) for every genome of every generation. That evaluation is a
//! *pure function* of the candidate, which buys two big levers:
//!
//! * **Batch parallelism** ([`parallel_map`], [`EvalEngine::evaluate_batch`])
//!   — a population is spread across a `std::thread` worker pool. Workers
//!   claim candidates through an atomic cursor (natural load balancing for
//!   evaluations of very different cost) and results are gathered **by
//!   index**, so the output is bit-identical regardless of the thread
//!   count: `threads` is purely a speed knob.
//! * **Memoization** ([`ShardedCache`]) — results are cached under a
//!   128-bit content hash of (genome, evaluation context), where the
//!   context fingerprints the application set, the architecture, and the
//!   exploration config. Evolutionary populations re-visit genomes
//!   constantly (uncrossed clones, unmutated offspring, converged
//!   sub-populations), so even small caches pay for themselves. The cache
//!   is sharded to keep lock contention off the hot path and
//!   capacity-bounded with FIFO eviction so memory stays flat over
//!   arbitrarily long runs.
//!
//! The engine is generic over the cached value `V`: callers that must
//! replay side effects per evaluation (e.g. the DSE's audit counters) store
//! the replay data inside `V` and apply it after every gather, hit or miss,
//! which keeps such counters deterministic too.
//!
//! Instrumentation is free-running ([`EvalStats`]): cache hits / misses /
//! evictions, per-phase nanoseconds (key hashing + lookup, evaluation,
//! insertion, batch wall clock), and genomes/sec, renderable as text or
//! JSON for `BENCH_*.json` tracking.
//!
//! # Examples
//!
//! ```
//! use mcmap_eval::{EvalCacheConfig, EvalEngine};
//!
//! let engine: EvalEngine<u64> = EvalEngine::new(EvalCacheConfig::default(), &"ctx");
//! let genomes: Vec<u64> = (0..64).map(|i| i % 8).collect();
//! let squares = engine.evaluate_batch(&genomes, 4, |g| g * g);
//! assert_eq!(squares[9], 1);
//! let stats = engine.stats();
//! assert_eq!(stats.genomes, 64);
//! assert!(stats.cache_hits >= 48, "only 8 distinct genomes exist");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod engine;
mod pool;
mod stats;

pub use cache::{CacheStats, ShardedCache};
pub use engine::{EvalCacheConfig, EvalContext, EvalEngine};
pub use pool::{
    parallel_map, parallel_map_caught, parallel_map_caught_timed, parallel_map_timed,
    pool_capacity, CaughtResult, WorkerLoad,
};
pub use stats::EvalStats;
