//! The deterministic worker pool.
//!
//! Since PR 10 the pool is **persistent**: a process-wide set of helper
//! threads (one per spare core) is spawned lazily on first use and then
//! reused by every [`parallel_map`] call, so a DSE that evaluates thousands
//! of small batches no longer pays a thread spawn/join per batch. Work is
//! claimed in **size-adaptive chunks** through a shared atomic cursor and
//! results are written straight into their output slots (no per-worker
//! bucket allocation, no gather pass).
//!
//! The pool is also the process's **shared thread budget**: batch-level
//! parallelism (`--threads`) and scenario-level parallelism
//! (`--scenario-threads`) both borrow helpers from the same fixed set, so
//! nested fan-out *composes* instead of oversubscribing — an inner
//! `parallel_map` issued from a helper that finds every other helper busy
//! simply runs inline on its caller. Deadlock is impossible by
//! construction: the submitting thread always participates in its own run,
//! so every run completes even when zero helpers are free.

// The workspace denies `unsafe_code`; this module is the single, narrowly
// scoped exception. Running *borrowed* closures on *persistent* threads
// requires erasing the closure's lifetime (the same reason rayon's core is
// unsafe) — the alternative, spawning scoped threads per batch, is exactly
// the overhead this pool exists to eliminate. Every unsafe block carries
// its invariant; the quiesce protocol in `run_with_pool` is the proof
// obligation they all lean on.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// What one pool participant (the caller or a helper) contributed to a
/// [`parallel_map_timed`] run: how long it spent inside the mapped
/// function's claim loop and how many items it completed. The per-worker
/// busy/wall ratio is the scatter-loss diagnostic surfaced through
/// `EvalStats` — a parallel batch whose helpers show near-zero busy time
/// paid the fan-out for nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerLoad {
    /// Nanoseconds this participant spent claiming and evaluating items.
    pub busy_nanos: u64,
    /// Items this participant completed.
    pub items: u64,
}

/// A lifetime-erased claim loop submitted to the persistent pool.
///
/// Safety contract: the submitting [`run_with_pool`] call never returns —
/// not even by unwinding — before the ticket is retired (`done` set,
/// removed from the queue, and `active == 0`), so the borrowed closure and
/// everything it captures strictly outlive every helper's use of it.
struct Ticket {
    /// The type-erased claim loop. Helpers call it exactly like the caller
    /// does; the closure's own atomic cursor partitions the work.
    work: &'static (dyn Fn() + Sync),
    /// Helpers still wanted; decremented (under the pool lock) when a
    /// helper joins, so a run never gets more participants than requested.
    wanted: usize,
    /// Helpers currently inside `work` (guarded by the pool lock).
    active: usize,
    /// Set (under the pool lock) when the caller's own claim loop drained
    /// the cursor: late helpers must skip the ticket instead of joining.
    done: bool,
}

#[derive(Default)]
struct PoolState {
    queue: Vec<Arc<Mutex<Ticket>>>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signalled when work is enqueued.
    work_cv: Condvar,
    /// Signalled when a helper leaves a ticket (quiesce wake-up).
    quiesce_cv: Condvar,
    /// Number of helper threads (spare cores; the caller is the +1).
    helpers: usize,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            // `MCMAP_POOL_HELPERS` overrides the helper count (read once,
            // at first use): CI uses it to exercise the helper machinery
            // on single-core runners, where the default would be zero.
            let helpers = std::env::var("MCMAP_POOL_HELPERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map_or(1, |n| n.get())
                        .saturating_sub(1)
                });
            let pool = Pool {
                state: Mutex::new(PoolState::default()),
                work_cv: Condvar::new(),
                quiesce_cv: Condvar::new(),
                helpers,
            };
            for i in 0..pool.helpers {
                std::thread::Builder::new()
                    .name(format!("mcmap-eval-{i}"))
                    .spawn(helper_loop)
                    .expect("spawn pool helper");
            }
            pool
        })
    }
}

/// A pool helper: block until a ticket wants more participants, run its
/// claim loop, repeat. Helpers are daemon threads — they hold no resources
/// beyond their stack, so process exit just abandons them.
fn helper_loop() {
    let pool = Pool::global();
    loop {
        let ticket: Arc<Mutex<Ticket>> = {
            let mut state = pool.state.lock().expect("pool lock");
            loop {
                let claimed = state.queue.iter().find_map(|t| {
                    let mut g = t.lock().expect("ticket lock");
                    if !g.done && g.wanted > 0 {
                        g.wanted -= 1;
                        g.active += 1;
                        Some(Arc::clone(t))
                    } else {
                        None
                    }
                });
                match claimed {
                    Some(t) => break t,
                    None => state = pool.work_cv.wait(state).expect("pool lock"),
                }
            }
        };
        // The claim loop catches its own panics (see `run_with_pool`), so
        // nothing can unwind through the helper and kill the pool.
        let work = ticket.lock().expect("ticket lock").work;
        work();
        let _state = pool.state.lock().expect("pool lock");
        ticket.lock().expect("ticket lock").active -= 1;
        pool.quiesce_cv.notify_all();
    }
}

/// Runs `claim` on the calling thread plus up to `helpers_wanted` pool
/// helpers, returning only when every participant has left the closure.
/// `claim` must be idempotent across participants (internally partitioned,
/// e.g. by an atomic cursor) and must not panic — wrap panicking work in
/// `catch_unwind` and ferry the payload out by side channel.
fn run_with_pool(helpers_wanted: usize, claim: &(dyn Fn() + Sync)) {
    let pool = Pool::global();
    let helpers_wanted = helpers_wanted.min(pool.helpers);
    if helpers_wanted == 0 {
        claim();
        return;
    }
    // SAFETY: the ticket is retired below — `done` set, dequeued, and
    // `active` drained to zero — before this function returns, and `claim`
    // itself cannot unwind past us (it catches), so no helper can touch
    // `claim` or its captures after their true lifetime ends.
    let work: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(claim) };
    let ticket = Arc::new(Mutex::new(Ticket {
        work,
        wanted: helpers_wanted,
        active: 0,
        done: false,
    }));
    {
        let mut state = pool.state.lock().expect("pool lock");
        state.queue.push(Arc::clone(&ticket));
    }
    pool.work_cv.notify_all();

    claim();

    let mut state = pool.state.lock().expect("pool lock");
    ticket.lock().expect("ticket lock").done = true;
    state.queue.retain(|t| !Arc::ptr_eq(t, &ticket));
    while ticket.lock().expect("ticket lock").active > 0 {
        state = pool.quiesce_cv.wait(state).expect("pool lock");
    }
}

/// One output slot, written exactly once by whichever participant claims
/// its index.
struct Slot<V>(std::cell::UnsafeCell<Option<V>>);

/// SAFETY: the atomic claim cursor hands every index to exactly one
/// participant, so each slot has a unique writer; the caller reads the
/// slots only after every participant has quiesced.
unsafe impl<V: Send> Sync for Slot<V> {}

/// The chunk size of one cursor claim: coarse enough that cheap items
/// amortize the atomic traffic, fine enough that expensive items cannot
/// serialize behind a bad static partition (at most 1/8 of an even share
/// rides on one claim).
fn chunk_size(items: usize, participants: usize) -> usize {
    (items / (participants * 8)).clamp(1, 1024)
}

/// Maps `f` over `items` on the calling thread plus pool helpers (up to
/// `threads` participants total) and returns the results in input order.
///
/// Work is claimed through a shared atomic cursor in size-adaptive chunks,
/// so expensive items do not serialize behind a bad static partition. Each
/// claimed result is written directly into its output slot, which makes the
/// output **independent of scheduling**: for a pure `f`, any thread count
/// produces the same vector.
///
/// `threads == 0` means "one per available core"; the effective count is
/// also clamped to `items.len()`. With one effective participant — or when
/// every pool helper is busy, e.g. inside a nested `parallel_map` — the map
/// runs inline, without any dispatch.
///
/// # Panics
///
/// A panic in `f` is resumed on the calling thread with its original
/// payload.
///
/// # Examples
///
/// ```
/// let doubled = mcmap_eval::parallel_map(&[1, 2, 3, 4], 8, |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8]);
/// ```
pub fn parallel_map<T, V, F>(items: &[T], threads: usize, f: F) -> Vec<V>
where
    T: Sync,
    V: Send,
    F: Fn(&T) -> V + Sync,
{
    parallel_map_timed(items, threads, f).0
}

/// [`parallel_map`] plus the per-participant [`WorkerLoad`] ledger: entry
/// `i` reports how long participant `i` (0 = the calling thread) spent in
/// the claim loop and how many items it completed. The ledger is a timing
/// observation — its values are **not** deterministic across runs, only the
/// result vector is.
pub fn parallel_map_timed<T, V, F>(items: &[T], threads: usize, f: F) -> (Vec<V>, Vec<WorkerLoad>)
where
    T: Sync,
    V: Send,
    F: Fn(&T) -> V + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        let t0 = Instant::now();
        let out: Vec<V> = items.iter().map(&f).collect();
        let load = WorkerLoad {
            busy_nanos: t0.elapsed().as_nanos() as u64,
            items: items.len() as u64,
        };
        return (out, vec![load]);
    }

    let slots: Vec<Slot<V>> = std::iter::repeat_with(|| Slot(std::cell::UnsafeCell::new(None)))
        .take(items.len())
        .collect();
    let loads: Vec<Slot<WorkerLoad>> =
        std::iter::repeat_with(|| Slot(std::cell::UnsafeCell::new(None)))
            .take(threads)
            .collect();
    let cursor = AtomicUsize::new(0);
    let participant = AtomicUsize::new(0);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let chunk = chunk_size(items.len(), threads);

    let claim = || {
        // Participants beyond the requested count contribute nothing; the
        // pool never hands out more helpers than `wanted`, so this is just
        // belt and braces for the load ledger's bound.
        let me = participant.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let mut completed = 0u64;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + chunk).min(items.len());
            for i in start..end {
                let v = f(&items[i]);
                // SAFETY: index `i` was claimed by exactly this
                // participant (unique cursor claim), so this is the slot's
                // only writer; reads happen after quiescence.
                unsafe { *slots[i].0.get() = Some(v) };
                completed += 1;
            }
        }));
        if let Err(payload) = result {
            let mut slot = panicked.lock().expect("panic slot");
            slot.get_or_insert(payload);
        }
        if me < threads {
            let load = WorkerLoad {
                busy_nanos: t0.elapsed().as_nanos() as u64,
                items: completed,
            };
            // SAFETY: participant indices are unique, so `me` writes its
            // own ledger slot exactly once.
            unsafe { *loads[me].0.get() = Some(load) };
        }
    };
    run_with_pool(threads - 1, &claim);

    if let Some(payload) = panicked.into_inner().expect("panic slot") {
        std::panic::resume_unwind(payload);
    }
    let out = slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("every index claimed exactly once"))
        .collect();
    let loads = loads
        .into_iter()
        .map(|s| s.0.into_inner().unwrap_or_default())
        .collect();
    (out, loads)
}

/// The per-item outcome of a caught map: the computed value, or the raw
/// panic payload `f` unwound with for that item.
pub type CaughtResult<V> = Result<V, Box<dyn std::any::Any + Send>>;

/// The fault-isolated sibling of [`parallel_map`]: a panic in `f` is
/// caught *per item* instead of unwinding the whole pool, so one poisoned
/// candidate cannot take down a long batch.
///
/// Returns, in input order, `Ok(value)` for items that evaluated and
/// `Err(payload)` — the raw panic payload — for items whose `f` panicked.
/// Participants survive their items' panics and keep claiming work.
///
/// # Examples
///
/// ```
/// let out = mcmap_eval::parallel_map_caught(&[1, 2, 3], 2, |x| {
///     assert!(*x != 2, "poisoned");
///     x * 10
/// });
/// assert_eq!(out[0].as_ref().unwrap(), &10);
/// assert!(out[1].is_err());
/// assert_eq!(out[2].as_ref().unwrap(), &30);
/// ```
pub fn parallel_map_caught<T, V, F>(items: &[T], threads: usize, f: F) -> Vec<CaughtResult<V>>
where
    T: Sync,
    V: Send,
    F: Fn(&T) -> V + Sync,
{
    parallel_map_caught_timed(items, threads, f).0
}

/// [`parallel_map_caught`] with the per-participant [`WorkerLoad`] ledger
/// of [`parallel_map_timed`].
pub fn parallel_map_caught_timed<T, V, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<CaughtResult<V>>, Vec<WorkerLoad>)
where
    T: Sync,
    V: Send,
    F: Fn(&T) -> V + Sync,
{
    // AssertUnwindSafe: the worst a caught panic can leave behind is a
    // torn memo-cache insert, and the engine never caches failed items —
    // callers observe either a completed value or an Err, nothing partial.
    parallel_map_timed(items, threads, |item: &T| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
    })
}

/// Number of participants a fan-out can use: the calling thread plus the
/// persistent pool's helpers (one per spare core). A host reports capacity
/// `n` even while helpers are busy — nested runs then degrade to inline
/// execution instead of spawning anything.
pub fn pool_capacity() -> usize {
    Pool::global().helpers + 1
}

/// Resolves the requested thread count: 0 = available parallelism, and
/// never more threads than items.
pub(crate) fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = || std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = if requested == 0 { hw() } else { requested };
    t.clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, threads, |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..50).collect();
        let _ = parallel_map(&items, 4, |_| calls.fetch_add(1, Ordering::Relaxed));
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(&[] as &[u8], 4, |x| *x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], 4, |x| *x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(16, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(1, 0), 1);
    }

    #[test]
    fn chunks_scale_with_batch_shape() {
        assert_eq!(chunk_size(24, 4), 1, "small batches claim singly");
        assert_eq!(chunk_size(256, 2), 16);
        assert_eq!(chunk_size(1 << 20, 2), 1024, "chunks stay bounded");
    }

    #[test]
    fn timed_variant_accounts_every_item_to_a_participant() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1, 4] {
            let (out, loads) = parallel_map_timed(&items, threads, |x| x + 1);
            assert_eq!(out.len(), 500);
            assert!(!loads.is_empty() && loads.len() <= threads.max(1));
            let total: u64 = loads.iter().map(|l| l.items).sum();
            assert_eq!(total, 500, "the ledger accounts every item");
        }
    }

    #[test]
    fn caught_variant_isolates_panics_per_item() {
        let items: Vec<u32> = (0..40).collect();
        for threads in [1, 4] {
            let out = parallel_map_caught(&items, threads, |x| {
                assert!(x % 7 != 3, "poisoned item {x}");
                x * 2
            });
            assert_eq!(out.len(), 40);
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let payload = r.as_ref().expect_err("poisoned items fail");
                    let msg = payload.downcast_ref::<String>().unwrap();
                    assert!(msg.contains(&format!("poisoned item {i}")));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1, 2, 3], 2, |x| {
                assert!(*x != 2, "boom at {x}");
                *x
            })
        });
        let payload = result.expect_err("the panic must cross the pool");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! payload is a String");
        assert!(msg.contains("boom at 2"), "got: {msg}");
    }

    #[test]
    fn pool_survives_a_panicking_run() {
        // A panic in one run must not poison the persistent pool: the next
        // run still completes normally on the same helpers.
        let _ = std::panic::catch_unwind(|| {
            parallel_map(&[1u8, 2, 3, 4], 4, |x| {
                assert!(*x != 3, "poison");
                *x
            })
        });
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_fan_out_composes_without_deadlock() {
        // An inner parallel_map issued from inside an outer one must
        // complete (inline if every helper is busy) — the shared-budget
        // rule. 16 outer items each fanning out 32 inner items.
        let outer: Vec<u64> = (0..16).collect();
        let result = parallel_map(&outer, 4, |&o| {
            let inner: Vec<u64> = (0..32).collect();
            parallel_map(&inner, 4, |&i| o * 100 + i)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = outer.iter().map(|&o| o * 100 * 32 + 496).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn pool_capacity_reports_at_least_the_caller() {
        assert!(pool_capacity() >= 1);
    }
}
