//! The deterministic `std::thread` worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on `threads` OS threads and returns the results in
/// input order.
///
/// Work is claimed through a shared atomic cursor, one item at a time, so
/// expensive items do not serialize behind a bad static partition. Each
/// worker tags its results with the item index and the caller scatters them
/// back, which makes the output **independent of scheduling**: for a pure
/// `f`, any thread count produces the same vector.
///
/// `threads == 0` means "one per available core"; the effective count is
/// also clamped to `items.len()`. With one effective thread the map runs
/// inline, without spawning.
///
/// # Panics
///
/// A panic in `f` is resumed on the calling thread with its original
/// payload.
///
/// # Examples
///
/// ```
/// let doubled = mcmap_eval::parallel_map(&[1, 2, 3, 4], 8, |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8]);
/// ```
pub fn parallel_map<T, V, F>(items: &[T], threads: usize, f: F) -> Vec<V>
where
    T: Sync,
    V: Send,
    F: Fn(&T) -> V + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, V)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<V>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// The fault-isolated sibling of [`parallel_map`]: a panic in `f` is
/// caught *per item* instead of unwinding the whole pool, so one poisoned
/// candidate cannot take down a long batch.
///
/// Returns, in input order, `Ok(value)` for items that evaluated and
/// `Err(payload)` — the raw panic payload — for items whose `f` panicked.
/// Worker threads survive their items' panics and keep claiming work.
///
/// # Examples
///
/// ```
/// let out = mcmap_eval::parallel_map_caught(&[1, 2, 3], 2, |x| {
///     assert!(*x != 2, "poisoned");
///     x * 10
/// });
/// assert_eq!(out[0].as_ref().unwrap(), &10);
/// assert!(out[1].is_err());
/// assert_eq!(out[2].as_ref().unwrap(), &30);
/// ```
pub fn parallel_map_caught<T, V, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<V, Box<dyn std::any::Any + Send>>>
where
    T: Sync,
    V: Send,
    F: Fn(&T) -> V + Sync,
{
    // AssertUnwindSafe: the worst a caught panic can leave behind is a
    // torn memo-cache insert, and the engine never caches failed items —
    // callers observe either a completed value or an Err, nothing partial.
    let guarded = |item: &T| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));

    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(guarded).collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, Result<V, _>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, guarded(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                // Unreachable for panics in `f` (they are caught per
                // item); only a defect in the pool itself lands here.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<Result<V, _>>> =
        std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Resolves the requested thread count: 0 = available parallelism, and
/// never more threads than items.
pub(crate) fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = || std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = if requested == 0 { hw() } else { requested };
    t.clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, threads, |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..50).collect();
        let _ = parallel_map(&items, 4, |_| calls.fetch_add(1, Ordering::Relaxed));
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(&[] as &[u8], 4, |x| *x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], 4, |x| *x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(16, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(1, 0), 1);
    }

    #[test]
    fn caught_variant_isolates_panics_per_item() {
        let items: Vec<u32> = (0..40).collect();
        for threads in [1, 4] {
            let out = parallel_map_caught(&items, threads, |x| {
                assert!(x % 7 != 3, "poisoned item {x}");
                x * 2
            });
            assert_eq!(out.len(), 40);
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let payload = r.as_ref().expect_err("poisoned items fail");
                    let msg = payload.downcast_ref::<String>().unwrap();
                    assert!(msg.contains(&format!("poisoned item {i}")));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1, 2, 3], 2, |x| {
                assert!(*x != 2, "boom at {x}");
                *x
            })
        });
        let payload = result.expect_err("the panic must cross the pool");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! payload is a String");
        assert!(msg.contains("boom at 2"), "got: {msg}");
    }
}
