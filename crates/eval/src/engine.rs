//! The evaluation engine: worker pool + memo cache + instrumentation.

use crate::cache::ShardedCache;
use crate::pool::{parallel_map_caught_timed, parallel_map_timed};
use crate::stats::{EvalStats, StatCounters};
use mcmap_obs::{Recorder, Value};
use mcmap_resilience::{panic_message, EvalFailure};
use mcmap_telemetry::{Class, Counter, Histogram, Registry};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Predicted per-batch work (nanoseconds) below which fanning out to the
/// worker pool costs more than it saves. Retuned for the persistent pool
/// (PR 10): dispatch no longer spawns threads per batch, it enqueues one
/// ticket and wakes already-parked helpers, so the fixed cost dropped from
/// low milliseconds to tens of microseconds of wake-up latency plus
/// contended sharded-cache traffic. A batch whose *observed* per-candidate
/// cost times its size lands under this bound runs serially instead.
///
/// The bound keeps a ~2× margin over the measured break-even for the same
/// reason as before: the cost history it consults is per-thread accounted,
/// and a batch that already ran parallel inflates it by the very
/// contention (allocator, cache shards) the fallback exists to dodge. With
/// the old 8 ms bound dt-med batches (~2 ms of real work) were *always*
/// rescued serially; at 750 µs they fan out, and only genuinely tiny
/// (near-fully-cached) batches fall back.
const SERIAL_FALLBACK_NANOS: u64 = 750_000;

/// Where an evaluation attempt sits inside its batch — handed to the
/// evaluation closure of [`EvalEngine::evaluate_batch_isolated`] so fault
/// injection (and any retry-aware logic) can address candidates by stable,
/// scheduling-independent coordinates without polluting the memo keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalContext {
    /// The candidate's position in the submitted batch.
    pub index: usize,
    /// Which attempt this is (0 = first, bumped once per caught panic).
    pub attempt: u32,
}

/// Sizing of the memoization cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheConfig {
    /// Total entry bound across all shards; `0` disables caching entirely
    /// (every candidate re-evaluates — the ablation / baseline mode).
    pub capacity: usize,
    /// Number of independently locked segments.
    pub shards: usize,
}

impl Default for EvalCacheConfig {
    fn default() -> Self {
        EvalCacheConfig {
            capacity: 65_536,
            shards: 16,
        }
    }
}

impl EvalCacheConfig {
    /// A cache bounded to `capacity` entries (0 = disabled) with the
    /// default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCacheConfig {
            capacity,
            ..EvalCacheConfig::default()
        }
    }

    /// The disabled-cache configuration.
    pub fn disabled() -> Self {
        EvalCacheConfig::with_capacity(0)
    }
}

/// A parallel, memoizing evaluator of candidate solutions.
///
/// The engine is generic over the cached value `V` — typically an objective
/// vector plus whatever per-candidate side data the caller must replay on
/// cache hits (feasibility verdicts, audit deltas). Construction binds the
/// engine to an evaluation *context* (anything [`Hash`]): candidate keys
/// mix the context fingerprint with the candidate's own content hash, so an
/// engine accidentally reused across two different problems cannot serve
/// stale results.
///
/// Determinism: for a pure evaluation function, `evaluate_batch` returns a
/// vector that is bit-identical for every thread count — workers race only
/// over *which* of them computes a value, never over what the value is or
/// where it lands.
pub struct EvalEngine<V> {
    cache: Option<Arc<ShardedCache<V>>>,
    context: u64,
    counters: StatCounters,
    obs: Recorder,
    metrics: Option<EvalMetrics>,
}

/// The engine's registered telemetry instruments. Batch/genome counts are
/// deterministic functions of the submitted work; everything else (the
/// hit/miss split, wall latency, the timing-driven serial fallback) is
/// thread-racy and registered as [`Class::Nondet`].
struct EvalMetrics {
    batches: Arc<Counter>,
    genomes: Arc<Counter>,
    batch_wall: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    serial_fallbacks: Arc<Counter>,
}

impl EvalMetrics {
    fn register(registry: &Registry) -> Self {
        EvalMetrics {
            batches: registry.counter("eval.batches", Class::Det),
            genomes: registry.counter("eval.genomes", Class::Det),
            batch_wall: registry.histogram("eval.batch_wall_ns", Class::Nondet),
            cache_hits: registry.counter("eval.cache_hits", Class::Nondet),
            cache_misses: registry.counter("eval.cache_misses", Class::Nondet),
            serial_fallbacks: registry.counter("eval.serial_fallbacks", Class::Nondet),
        }
    }

    /// Folds one batch into the instruments from the engine's own stats
    /// deltas — the same source the `eval.batch` span reports.
    fn observe_batch(&self, genomes: u64, wall_ns: u64, before: &EvalStats, after: &EvalStats) {
        self.batches.inc();
        self.genomes.add(genomes);
        self.batch_wall.observe(wall_ns);
        self.cache_hits.add(after.cache_hits - before.cache_hits);
        self.cache_misses
            .add(after.cache_misses - before.cache_misses);
        self.serial_fallbacks
            .add(after.serial_fallbacks - before.serial_fallbacks);
    }
}

impl<V: Clone + Send + Sync> EvalEngine<V> {
    /// Builds an engine whose keys are scoped to `context`.
    pub fn new(cfg: EvalCacheConfig, context: &impl Hash) -> Self {
        let mut h = DefaultHasher::new();
        context.hash(&mut h);
        EvalEngine {
            cache: (cfg.capacity > 0)
                .then(|| Arc::new(ShardedCache::new(cfg.capacity, cfg.shards))),
            context: h.finish(),
            counters: StatCounters::default(),
            obs: Recorder::default(),
            metrics: None,
        }
    }

    /// Builds an engine backed by an externally owned cache, so several
    /// engines (e.g. one per tenant of a job server) dedupe evaluations
    /// through one capacity-bounded store. Safe by construction: keys mix
    /// the per-engine context fingerprint, so two engines only ever
    /// exchange values when their contexts — and hence their evaluation
    /// functions' semantics — are identical. Each engine still keeps its
    /// own [`EvalStats`] counters; the shared store's global view is
    /// [`ShardedCache::global_stats`].
    pub fn with_shared_cache(cache: Arc<ShardedCache<V>>, context: &impl Hash) -> Self {
        let mut h = DefaultHasher::new();
        context.hash(&mut h);
        EvalEngine {
            cache: Some(cache),
            context: h.finish(),
            counters: StatCounters::default(),
            obs: Recorder::default(),
            metrics: None,
        }
    }

    /// Attaches an observability recorder: each `evaluate_batch` call is
    /// wrapped in an `eval.batch` span whose deterministic fields describe
    /// the submitted batch (size, thread budget) and whose
    /// non-deterministic fields carry the cache-traffic and latency deltas
    /// of the batch. Results are identical with or without a recorder.
    #[must_use]
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a telemetry registry: the engine registers its fleet
    /// metrics (`eval.batches` / `eval.genomes` as deterministic counters;
    /// batch wall-latency histogram, cache hit/miss split, and
    /// serial-fallback count as non-deterministic) and folds every batch
    /// into them. A disabled registry leaves the engine unmetered — the
    /// hot path carries no extra work. Results are identical either way.
    #[must_use]
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = registry.enabled().then(|| EvalMetrics::register(registry));
        self
    }

    /// The 128-bit memoization key of one candidate: two independent
    /// SipHash streams (distinct domain-separation prefixes) over
    /// (context, candidate). A 64-bit key would see birthday collisions
    /// around a few billion distinct candidates; at 128 bits a collision —
    /// the only event that could corrupt a result — is negligible.
    pub fn key_of<G: Hash>(&self, genome: &G) -> u128 {
        let mut hi = DefaultHasher::new();
        0xE1u8.hash(&mut hi);
        self.context.hash(&mut hi);
        genome.hash(&mut hi);
        let mut lo = DefaultHasher::new();
        0x7Bu8.hash(&mut lo);
        self.context.hash(&mut lo);
        genome.hash(&mut lo);
        ((hi.finish() as u128) << 64) | lo.finish() as u128
    }

    /// Evaluates one candidate through the cache.
    pub fn evaluate_one<G, F>(&self, genome: &G, eval: F) -> V
    where
        G: Hash,
        F: Fn(&G) -> V,
    {
        let t0 = Instant::now();
        let key = self.key_of(genome);
        let cached = self.cache.as_ref().and_then(|c| c.get(key));
        self.counters
            .add(&self.counters.lookup_nanos, t0.elapsed().as_nanos() as u64);
        if let Some(v) = cached {
            self.counters.add(&self.counters.hits, 1);
            return v;
        }

        let t1 = Instant::now();
        let v = eval(genome);
        self.counters
            .add(&self.counters.eval_nanos, t1.elapsed().as_nanos() as u64);
        self.counters.add(&self.counters.misses, 1);

        if let Some(cache) = &self.cache {
            let t2 = Instant::now();
            let evicted = cache.insert(key, v.clone());
            self.counters
                .add(&self.counters.insert_nanos, t2.elapsed().as_nanos() as u64);
            self.counters.add(&self.counters.evictions, evicted as u64);
        }
        v
    }

    /// Picks the effective worker count for a batch: the requested budget,
    /// unless the work the batch is *predicted* to carry (observed
    /// per-candidate cost × batch size) is too small to amortize pool and
    /// cache-contention overhead — then the batch runs serially and the
    /// fallback is counted. The first batch has no history and always
    /// honors the request. Results are bit-identical either way (the
    /// thread count never shapes values or order), so this timing-driven
    /// choice stays out of the canonical trace like any other thread knob.
    fn adaptive_threads(&self, batch: usize, requested: usize) -> usize {
        if requested == 1 || batch <= 1 {
            return requested;
        }
        let history = self.counters.genomes.load(Ordering::Relaxed);
        if history == 0 {
            return requested;
        }
        let work = self.counters.lookup_nanos.load(Ordering::Relaxed)
            + self.counters.eval_nanos.load(Ordering::Relaxed)
            + self.counters.insert_nanos.load(Ordering::Relaxed);
        let predicted = (work / history).saturating_mul(batch as u64);
        if predicted < SERIAL_FALLBACK_NANOS {
            self.counters.add(&self.counters.serial_fallbacks, 1);
            1
        } else {
            requested
        }
    }

    /// Evaluates a batch across `threads` workers (0 = one per core),
    /// returning results in input order regardless of thread count.
    pub fn evaluate_batch<G, F>(&self, genomes: &[G], threads: usize, eval: F) -> Vec<V>
    where
        G: Hash + Sync,
        F: Fn(&G) -> V + Sync,
    {
        let t0 = Instant::now();
        let before = (self.obs.enabled() || self.metrics.is_some()).then(|| self.stats());
        // The thread budget is a speed knob that must not shape the
        // canonical trace, so it rides in the non-deterministic payload.
        let mut span = self
            .obs
            .span("eval.batch", &[("genomes", Value::from(genomes.len()))]);
        span.nondet("threads", threads);
        let effective = self.adaptive_threads(genomes.len(), threads);
        if effective != threads {
            span.nondet("serial_fallback", true);
        }
        let (results, loads) =
            parallel_map_timed(genomes, effective, |g| self.evaluate_one(g, &eval));
        self.counters.merge_loads(&loads);
        self.counters.add(&self.counters.batches, 1);
        self.counters
            .add(&self.counters.genomes, genomes.len() as u64);
        self.counters
            .add(&self.counters.wall_nanos, t0.elapsed().as_nanos() as u64);
        if let Some(before) = before {
            // Which worker computes vs. reuses a value is a race: the cache
            // split and the phase latencies are non-deterministic payload.
            let after = self.stats();
            span.nondet("cache_hits", after.cache_hits - before.cache_hits);
            span.nondet("cache_misses", after.cache_misses - before.cache_misses);
            span.nondet("evictions", after.evictions - before.evictions);
            span.nondet("lookup_ns", after.lookup_nanos - before.lookup_nanos);
            span.nondet("eval_ns", after.eval_nanos - before.eval_nanos);
            span.nondet("insert_ns", after.insert_nanos - before.insert_nanos);
            if let Some(m) = &self.metrics {
                m.observe_batch(
                    genomes.len() as u64,
                    t0.elapsed().as_nanos() as u64,
                    &before,
                    &after,
                );
            }
        }
        span.end();
        results
    }

    /// The panic-isolated sibling of [`EvalEngine::evaluate_batch`]: a
    /// panicking evaluation is caught per candidate, retried up to
    /// `retries` more times, and — if every attempt fails — degraded into
    /// a typed [`EvalFailure`] instead of unwinding the run.
    ///
    /// The evaluation closure additionally receives an [`EvalContext`]
    /// naming the candidate's batch position and attempt number; memo keys
    /// are still content-only, so retried successes are cached normally
    /// and failed attempts are never cached. In the fault-free case the
    /// emitted `eval.batch` span is identical to the non-isolated path;
    /// each degraded candidate additionally emits an `eval.failure`
    /// counter (in batch order, on the calling thread, so traces stay
    /// deterministic for any thread count).
    pub fn evaluate_batch_isolated<G, F>(
        &self,
        genomes: &[G],
        threads: usize,
        retries: u32,
        eval: F,
    ) -> Vec<Result<V, EvalFailure>>
    where
        G: Hash + Sync,
        F: Fn(&G, EvalContext) -> V + Sync,
    {
        self.evaluate_batch_isolated_with(genomes, threads, retries, |_| {}, eval)
    }

    /// [`evaluate_batch_isolated`](Self::evaluate_batch_isolated) with an
    /// explicit fault-injection hook.
    ///
    /// `inject` runs inside the panic-isolation boundary but **before**
    /// the memo-cache lookup, once per attempt. This placement matters for
    /// deterministic chaos testing: a hook inside the evaluation closure
    /// would be skipped on cache hits, so whether an injected fault fires
    /// could depend on cache capacity and on which worker first filled a
    /// shared key — the hook here fires at exactly its addressed
    /// `(index, attempt)` coordinates regardless.
    pub fn evaluate_batch_isolated_with<G, F, I>(
        &self,
        genomes: &[G],
        threads: usize,
        retries: u32,
        inject: I,
        eval: F,
    ) -> Vec<Result<V, EvalFailure>>
    where
        G: Hash + Sync,
        F: Fn(&G, EvalContext) -> V + Sync,
        I: Fn(EvalContext) + Sync,
    {
        let t0 = Instant::now();
        let before = (self.obs.enabled() || self.metrics.is_some()).then(|| self.stats());
        let mut span = self
            .obs
            .span("eval.batch", &[("genomes", Value::from(genomes.len()))]);
        span.nondet("threads", threads);
        let effective = self.adaptive_threads(genomes.len(), threads);
        if effective != threads {
            span.nondet("serial_fallback", true);
        }

        let mut slots: Vec<Option<Result<V, EvalFailure>>> = std::iter::repeat_with(|| None)
            .take(genomes.len())
            .collect();
        let mut pending: Vec<usize> = (0..genomes.len()).collect();
        let mut attempt: u32 = 0;
        while !pending.is_empty() {
            let wave: Vec<(usize, &G)> = pending.iter().map(|&i| (i, &genomes[i])).collect();
            let (outcomes, loads) = parallel_map_caught_timed(&wave, effective, |&(index, g)| {
                let ctx = EvalContext { index, attempt };
                inject(ctx);
                self.evaluate_one(g, |g| eval(g, ctx))
            });
            self.counters.merge_loads(&loads);
            let mut still = Vec::new();
            for (&(index, g), outcome) in wave.iter().zip(outcomes) {
                match outcome {
                    Ok(v) => slots[index] = Some(Ok(v)),
                    Err(payload) => {
                        self.counters.add(&self.counters.panics, 1);
                        if attempt < retries {
                            still.push(index);
                        } else {
                            self.counters.add(&self.counters.degraded, 1);
                            slots[index] = Some(Err(EvalFailure {
                                candidate: (self.key_of(g) >> 64) as u64,
                                index,
                                attempts: attempt + 1,
                                message: panic_message(payload.as_ref()),
                            }));
                        }
                    }
                }
            }
            pending = still;
            attempt += 1;
        }
        self.counters.add(&self.counters.batches, 1);
        self.counters
            .add(&self.counters.genomes, genomes.len() as u64);
        self.counters
            .add(&self.counters.wall_nanos, t0.elapsed().as_nanos() as u64);

        let results: Vec<Result<V, EvalFailure>> = slots
            .into_iter()
            .map(|s| s.expect("every index resolved"))
            .collect();
        let failures = results.iter().filter(|r| r.is_err()).count();
        for failure in results.iter().filter_map(|r| r.as_ref().err()) {
            self.obs.counter(
                "eval.failure",
                &[
                    ("candidate", Value::from(failure.candidate)),
                    ("index", Value::from(failure.index)),
                    ("attempts", Value::from(failure.attempts)),
                ],
            );
        }
        if failures > 0 {
            span.field("failures", failures);
        }
        if let Some(before) = before {
            let after = self.stats();
            span.nondet("cache_hits", after.cache_hits - before.cache_hits);
            span.nondet("cache_misses", after.cache_misses - before.cache_misses);
            span.nondet("evictions", after.evictions - before.evictions);
            span.nondet("lookup_ns", after.lookup_nanos - before.lookup_nanos);
            span.nondet("eval_ns", after.eval_nanos - before.eval_nanos);
            span.nondet("insert_ns", after.insert_nanos - before.insert_nanos);
            if let Some(m) = &self.metrics {
                m.observe_batch(
                    genomes.len() as u64,
                    t0.elapsed().as_nanos() as u64,
                    &before,
                    &after,
                );
            }
        }
        span.end();
        results
    }

    /// Snapshot of the instrumentation counters.
    pub fn stats(&self) -> EvalStats {
        let entries = self.cache.as_ref().map_or(0, |c| c.len()) as u64;
        self.counters.snapshot(entries)
    }

    /// Zeroes the instrumentation counters (the cache keeps its contents).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Whether memoization is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }
}

impl<V> std::fmt::Debug for EvalEngine<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("context", &self.context)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn engine(capacity: usize) -> EvalEngine<u64> {
        EvalEngine::new(EvalCacheConfig::with_capacity(capacity), &"test-context")
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let genomes: Vec<u64> = (0..200).map(|i| i * 31 % 17).collect();
        let reference = engine(256).evaluate_batch(&genomes, 1, |g| g.wrapping_mul(*g) + 1);
        for threads in [2, 4, 8] {
            let e = engine(256);
            assert_eq!(
                e.evaluate_batch(&genomes, threads, |g| g.wrapping_mul(*g) + 1),
                reference
            );
            assert_eq!(e.stats().genomes, 200);
            assert_eq!(e.stats().batches, 1);
        }
    }

    #[test]
    fn cache_avoids_recomputation() {
        let calls = AtomicUsize::new(0);
        let e = engine(1024);
        let genomes = vec![1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        let out = e.evaluate_batch(&genomes, 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            g + 100
        });
        assert_eq!(out, vec![101, 102, 103, 101, 102, 103, 101, 102, 103]);
        assert_eq!(calls.load(Ordering::Relaxed), 3, "3 distinct genomes");
        let s = e.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (6, 3));
        assert_eq!(s.cache_entries, 3);
        assert!(s.hit_rate() > 0.66 && s.hit_rate() < 0.67);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let calls = AtomicUsize::new(0);
        let e = engine(0);
        assert!(!e.cache_enabled());
        let _ = e.evaluate_batch(&[5u64, 5, 5], 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            *g
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn distinct_contexts_produce_distinct_keys() {
        let a: EvalEngine<u64> = EvalEngine::new(EvalCacheConfig::default(), &"ctx-a");
        let b: EvalEngine<u64> = EvalEngine::new(EvalCacheConfig::default(), &"ctx-b");
        assert_ne!(a.key_of(&42u64), b.key_of(&42u64));
        assert_eq!(a.key_of(&42u64), a.key_of(&42u64));
        assert_ne!(a.key_of(&42u64), a.key_of(&43u64));
    }

    #[test]
    fn eviction_pressure_is_counted_and_bounded() {
        let e = engine(8);
        let genomes: Vec<u64> = (0..1000).collect();
        let _ = e.evaluate_batch(&genomes, 1, |g| *g);
        let s = e.stats();
        assert_eq!(s.cache_misses, 1000);
        assert!(s.evictions > 900, "tiny cache must churn: {s:?}");
        assert!(s.cache_entries <= 16, "entries bounded near capacity");
    }

    #[test]
    fn isolated_batch_degrades_poisoned_candidates_without_unwinding() {
        let genomes: Vec<u64> = (0..30).collect();
        for threads in [1, 4] {
            let e = engine(256);
            let out = e.evaluate_batch_isolated(&genomes, threads, 0, |g, _ctx| {
                assert!(g % 9 != 4, "poison {g}");
                g + 1
            });
            for (g, r) in genomes.iter().zip(&out) {
                if g % 9 == 4 {
                    let f = r.as_ref().expect_err("poisoned");
                    assert_eq!(f.index, *g as usize);
                    assert_eq!(f.attempts, 1);
                    assert!(f.message.contains(&format!("poison {g}")));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), g + 1);
                }
            }
            let s = e.stats();
            assert_eq!(s.degraded, 3, "genomes 4, 13, 22 within 0..30");
            assert_eq!(s.panics, 3);
            assert_eq!(s.genomes, 30);
        }
    }

    #[test]
    fn isolated_batch_retries_rescue_transient_panics() {
        use std::sync::atomic::AtomicUsize;
        let first_attempts = AtomicUsize::new(0);
        let e = engine(256);
        let genomes: Vec<u64> = (0..10).collect();
        let out = e.evaluate_batch_isolated(&genomes, 2, 1, |g, ctx| {
            if ctx.attempt == 0 && g % 3 == 0 {
                first_attempts.fetch_add(1, Ordering::Relaxed);
                panic!("transient");
            }
            g * 2
        });
        let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, genomes.iter().map(|g| g * 2).collect::<Vec<_>>());
        assert_eq!(first_attempts.load(Ordering::Relaxed), 4);
        let s = e.stats();
        assert_eq!(s.panics, 4, "caught on first attempt");
        assert_eq!(s.degraded, 0, "all rescued by the retry");
    }

    #[test]
    fn failed_attempts_are_never_cached() {
        let calls = AtomicUsize::new(0);
        let e = engine(256);
        let poisoned = [7u64];
        let out = e.evaluate_batch_isolated(&poisoned, 1, 2, |_g, _ctx| -> u64 {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always")
        });
        assert!(out[0].is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 3, "1 + 2 retries");
        // The same genome evaluated cleanly afterwards is a miss, not a
        // stale hit of a poisoned entry.
        let ok = e.evaluate_batch_isolated(&poisoned, 1, 0, |g, _ctx| g + 1);
        assert_eq!(*ok[0].as_ref().unwrap(), 8);
    }

    #[test]
    fn isolated_batch_matches_plain_batch_when_fault_free() {
        let genomes: Vec<u64> = (0..100).map(|i| i % 23).collect();
        let plain = engine(128).evaluate_batch(&genomes, 4, |g| g * 7);
        let isolated: Vec<u64> = engine(128)
            .evaluate_batch_isolated(&genomes, 4, 1, |g, _ctx| g * 7)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, isolated);
    }

    #[test]
    fn small_cheap_batches_fall_back_to_serial_dispatch() {
        let e = engine(256);
        let genomes: Vec<u64> = (0..24).collect();
        // First batch: no cost history, the requested budget is honored.
        let first = e.evaluate_batch(&genomes, 4, |g| g + 1);
        assert_eq!(e.stats().serial_fallbacks, 0);
        // Second batch: observed per-candidate cost is sub-microsecond, so
        // 24 candidates predict far below the fan-out threshold — the batch
        // runs serially, with identical results.
        let second = e.evaluate_batch(&genomes, 4, |g| g + 1);
        assert_eq!(first, second);
        assert_eq!(e.stats().serial_fallbacks, 1);
        // The isolated path takes the same decision.
        let isolated: Vec<u64> = e
            .evaluate_batch_isolated(&genomes, 4, 1, |g, _ctx| g + 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(isolated, second);
        assert_eq!(e.stats().serial_fallbacks, 2);
    }

    #[test]
    fn expensive_batches_keep_their_thread_budget() {
        let e = engine(0); // no cache: every candidate pays full cost
        let genomes: Vec<u64> = (0..4).collect();
        let slow = |g: &u64| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            *g
        };
        let _ = e.evaluate_batch(&genomes, 4, slow);
        // History now says ~5 ms per candidate → 4 candidates predict
        // 20 ms, comfortably above the threshold: no fallback.
        let _ = e.evaluate_batch(&genomes, 4, slow);
        assert_eq!(e.stats().serial_fallbacks, 0);
    }

    #[test]
    fn serial_requests_never_count_as_fallbacks() {
        let e = engine(256);
        let genomes: Vec<u64> = (0..10).collect();
        let _ = e.evaluate_batch(&genomes, 1, |g| *g);
        let _ = e.evaluate_batch(&genomes, 1, |g| *g);
        assert_eq!(e.stats().serial_fallbacks, 0);
    }

    #[test]
    fn shared_cache_dedupes_across_engines_with_equal_context() {
        let store: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(256, 4));
        let calls = AtomicUsize::new(0);
        let genomes = vec![1u64, 2, 3];
        let a = EvalEngine::with_shared_cache(Arc::clone(&store), &"tenant-ctx");
        let b = EvalEngine::with_shared_cache(Arc::clone(&store), &"tenant-ctx");
        let eval = |g: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            g * 10
        };
        let first = a.evaluate_batch(&genomes, 1, eval);
        let second = b.evaluate_batch(&genomes, 1, eval);
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::Relaxed), 3, "b reuses a's work");
        // Per-engine counters stay per-tenant; the store sees the union.
        assert_eq!(a.stats().cache_misses, 3);
        assert_eq!(b.stats().cache_hits, 3);
        let g = store.global_stats();
        assert_eq!((g.hits, g.misses, g.insertions), (3, 3, 3));
        // A different context on the same store must never exchange values.
        let c = EvalEngine::with_shared_cache(Arc::clone(&store), &"other-ctx");
        let _ = c.evaluate_batch(&genomes, 1, eval);
        assert_eq!(c.stats().cache_hits, 0);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn reset_stats_keeps_the_cache_warm() {
        let calls = AtomicUsize::new(0);
        let e = engine(64);
        let _ = e.evaluate_batch(&[9u64], 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            *g
        });
        e.reset_stats();
        let _ = e.evaluate_batch(&[9u64], 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            *g
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "second pass is a hit");
        let s = e.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 0));
    }

    #[test]
    fn telemetry_registry_observes_every_batch_path() {
        use mcmap_telemetry::{Registry, SampleValue};
        let registry = Registry::new();
        let e = engine(256).with_metrics(&registry);
        let genomes = vec![1u64, 2, 3, 1, 2, 3];
        let _ = e.evaluate_batch(&genomes, 1, |g| *g);
        let _ = e
            .evaluate_batch_isolated(&genomes, 1, 0, |g, _ctx| *g)
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>();
        let snap = registry.snapshot();
        let counter = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.id.name == name)
                .and_then(|m| match &m.value {
                    SampleValue::Counter(v) => Some(*v),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(counter("eval.batches"), 2);
        assert_eq!(counter("eval.genomes"), 12);
        // Second batch replays entirely from cache: 3 misses + 9 hits.
        assert_eq!(
            counter("eval.cache_hits") + counter("eval.cache_misses"),
            12
        );
        let wall = snap
            .metrics
            .iter()
            .find(|m| m.id.name == "eval.batch_wall_ns")
            .expect("wall histogram registered");
        match &wall.value {
            SampleValue::Histogram(h) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        // A disabled registry leaves the engine unmetered but unchanged.
        let quiet = Registry::default();
        let q = engine(256).with_metrics(&quiet);
        let out = q.evaluate_batch(&genomes, 1, |g| *g);
        assert_eq!(out, genomes);
        assert!(quiet.snapshot().metrics.is_empty());
    }
}
