//! The evaluation engine: worker pool + memo cache + instrumentation.

use crate::cache::ShardedCache;
use crate::pool::parallel_map;
use crate::stats::{EvalStats, StatCounters};
use mcmap_obs::{Recorder, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Sizing of the memoization cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheConfig {
    /// Total entry bound across all shards; `0` disables caching entirely
    /// (every candidate re-evaluates — the ablation / baseline mode).
    pub capacity: usize,
    /// Number of independently locked segments.
    pub shards: usize,
}

impl Default for EvalCacheConfig {
    fn default() -> Self {
        EvalCacheConfig {
            capacity: 65_536,
            shards: 16,
        }
    }
}

impl EvalCacheConfig {
    /// A cache bounded to `capacity` entries (0 = disabled) with the
    /// default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCacheConfig {
            capacity,
            ..EvalCacheConfig::default()
        }
    }

    /// The disabled-cache configuration.
    pub fn disabled() -> Self {
        EvalCacheConfig::with_capacity(0)
    }
}

/// A parallel, memoizing evaluator of candidate solutions.
///
/// The engine is generic over the cached value `V` — typically an objective
/// vector plus whatever per-candidate side data the caller must replay on
/// cache hits (feasibility verdicts, audit deltas). Construction binds the
/// engine to an evaluation *context* (anything [`Hash`]): candidate keys
/// mix the context fingerprint with the candidate's own content hash, so an
/// engine accidentally reused across two different problems cannot serve
/// stale results.
///
/// Determinism: for a pure evaluation function, `evaluate_batch` returns a
/// vector that is bit-identical for every thread count — workers race only
/// over *which* of them computes a value, never over what the value is or
/// where it lands.
pub struct EvalEngine<V> {
    cache: Option<ShardedCache<V>>,
    context: u64,
    counters: StatCounters,
    obs: Recorder,
}

impl<V: Clone + Send + Sync> EvalEngine<V> {
    /// Builds an engine whose keys are scoped to `context`.
    pub fn new(cfg: EvalCacheConfig, context: &impl Hash) -> Self {
        let mut h = DefaultHasher::new();
        context.hash(&mut h);
        EvalEngine {
            cache: (cfg.capacity > 0).then(|| ShardedCache::new(cfg.capacity, cfg.shards)),
            context: h.finish(),
            counters: StatCounters::default(),
            obs: Recorder::default(),
        }
    }

    /// Attaches an observability recorder: each `evaluate_batch` call is
    /// wrapped in an `eval.batch` span whose deterministic fields describe
    /// the submitted batch (size, thread budget) and whose
    /// non-deterministic fields carry the cache-traffic and latency deltas
    /// of the batch. Results are identical with or without a recorder.
    #[must_use]
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// The 128-bit memoization key of one candidate: two independent
    /// SipHash streams (distinct domain-separation prefixes) over
    /// (context, candidate). A 64-bit key would see birthday collisions
    /// around a few billion distinct candidates; at 128 bits a collision —
    /// the only event that could corrupt a result — is negligible.
    pub fn key_of<G: Hash>(&self, genome: &G) -> u128 {
        let mut hi = DefaultHasher::new();
        0xE1u8.hash(&mut hi);
        self.context.hash(&mut hi);
        genome.hash(&mut hi);
        let mut lo = DefaultHasher::new();
        0x7Bu8.hash(&mut lo);
        self.context.hash(&mut lo);
        genome.hash(&mut lo);
        ((hi.finish() as u128) << 64) | lo.finish() as u128
    }

    /// Evaluates one candidate through the cache.
    pub fn evaluate_one<G, F>(&self, genome: &G, eval: F) -> V
    where
        G: Hash,
        F: Fn(&G) -> V,
    {
        let t0 = Instant::now();
        let key = self.key_of(genome);
        let cached = self.cache.as_ref().and_then(|c| c.get(key));
        self.counters
            .add(&self.counters.lookup_nanos, t0.elapsed().as_nanos() as u64);
        if let Some(v) = cached {
            self.counters.add(&self.counters.hits, 1);
            return v;
        }

        let t1 = Instant::now();
        let v = eval(genome);
        self.counters
            .add(&self.counters.eval_nanos, t1.elapsed().as_nanos() as u64);
        self.counters.add(&self.counters.misses, 1);

        if let Some(cache) = &self.cache {
            let t2 = Instant::now();
            let evicted = cache.insert(key, v.clone());
            self.counters
                .add(&self.counters.insert_nanos, t2.elapsed().as_nanos() as u64);
            self.counters.add(&self.counters.evictions, evicted as u64);
        }
        v
    }

    /// Evaluates a batch across `threads` workers (0 = one per core),
    /// returning results in input order regardless of thread count.
    pub fn evaluate_batch<G, F>(&self, genomes: &[G], threads: usize, eval: F) -> Vec<V>
    where
        G: Hash + Sync,
        F: Fn(&G) -> V + Sync,
    {
        let t0 = Instant::now();
        let before = self.obs.enabled().then(|| self.stats());
        // The thread budget is a speed knob that must not shape the
        // canonical trace, so it rides in the non-deterministic payload.
        let mut span = self
            .obs
            .span("eval.batch", &[("genomes", Value::from(genomes.len()))]);
        span.nondet("threads", threads);
        let results = parallel_map(genomes, threads, |g| self.evaluate_one(g, &eval));
        self.counters.add(&self.counters.batches, 1);
        self.counters
            .add(&self.counters.genomes, genomes.len() as u64);
        self.counters
            .add(&self.counters.wall_nanos, t0.elapsed().as_nanos() as u64);
        if let Some(before) = before {
            // Which worker computes vs. reuses a value is a race: the cache
            // split and the phase latencies are non-deterministic payload.
            let after = self.stats();
            span.nondet("cache_hits", after.cache_hits - before.cache_hits);
            span.nondet("cache_misses", after.cache_misses - before.cache_misses);
            span.nondet("evictions", after.evictions - before.evictions);
            span.nondet("lookup_ns", after.lookup_nanos - before.lookup_nanos);
            span.nondet("eval_ns", after.eval_nanos - before.eval_nanos);
            span.nondet("insert_ns", after.insert_nanos - before.insert_nanos);
        }
        span.end();
        results
    }

    /// Snapshot of the instrumentation counters.
    pub fn stats(&self) -> EvalStats {
        let entries = self.cache.as_ref().map_or(0, ShardedCache::len) as u64;
        self.counters.snapshot(entries)
    }

    /// Zeroes the instrumentation counters (the cache keeps its contents).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Whether memoization is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }
}

impl<V> std::fmt::Debug for EvalEngine<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("context", &self.context)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn engine(capacity: usize) -> EvalEngine<u64> {
        EvalEngine::new(EvalCacheConfig::with_capacity(capacity), &"test-context")
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let genomes: Vec<u64> = (0..200).map(|i| i * 31 % 17).collect();
        let reference = engine(256).evaluate_batch(&genomes, 1, |g| g.wrapping_mul(*g) + 1);
        for threads in [2, 4, 8] {
            let e = engine(256);
            assert_eq!(
                e.evaluate_batch(&genomes, threads, |g| g.wrapping_mul(*g) + 1),
                reference
            );
            assert_eq!(e.stats().genomes, 200);
            assert_eq!(e.stats().batches, 1);
        }
    }

    #[test]
    fn cache_avoids_recomputation() {
        let calls = AtomicUsize::new(0);
        let e = engine(1024);
        let genomes = vec![1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        let out = e.evaluate_batch(&genomes, 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            g + 100
        });
        assert_eq!(out, vec![101, 102, 103, 101, 102, 103, 101, 102, 103]);
        assert_eq!(calls.load(Ordering::Relaxed), 3, "3 distinct genomes");
        let s = e.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (6, 3));
        assert_eq!(s.cache_entries, 3);
        assert!(s.hit_rate() > 0.66 && s.hit_rate() < 0.67);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let calls = AtomicUsize::new(0);
        let e = engine(0);
        assert!(!e.cache_enabled());
        let _ = e.evaluate_batch(&[5u64, 5, 5], 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            *g
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn distinct_contexts_produce_distinct_keys() {
        let a: EvalEngine<u64> = EvalEngine::new(EvalCacheConfig::default(), &"ctx-a");
        let b: EvalEngine<u64> = EvalEngine::new(EvalCacheConfig::default(), &"ctx-b");
        assert_ne!(a.key_of(&42u64), b.key_of(&42u64));
        assert_eq!(a.key_of(&42u64), a.key_of(&42u64));
        assert_ne!(a.key_of(&42u64), a.key_of(&43u64));
    }

    #[test]
    fn eviction_pressure_is_counted_and_bounded() {
        let e = engine(8);
        let genomes: Vec<u64> = (0..1000).collect();
        let _ = e.evaluate_batch(&genomes, 1, |g| *g);
        let s = e.stats();
        assert_eq!(s.cache_misses, 1000);
        assert!(s.evictions > 900, "tiny cache must churn: {s:?}");
        assert!(s.cache_entries <= 16, "entries bounded near capacity");
    }

    #[test]
    fn reset_stats_keeps_the_cache_warm() {
        let calls = AtomicUsize::new(0);
        let e = engine(64);
        let _ = e.evaluate_batch(&[9u64], 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            *g
        });
        e.reset_stats();
        let _ = e.evaluate_batch(&[9u64], 1, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            *g
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "second pass is a hit");
        let s = e.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 0));
    }
}
