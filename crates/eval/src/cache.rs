//! The sharded, capacity-bounded memoization cache.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Lifetime traffic counters of one [`ShardedCache`].
///
/// Unlike the per-engine [`EvalStats`](crate::EvalStats), these accumulate
/// over every client of the cache — when several engines share one cache
/// (the server's cross-job store), this is the global view: how many
/// lookups any tenant resolved from work another tenant already did, and
/// how much the bounded capacity churned. Timing-free and monotone; purely
/// observational (never part of any determinism contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident across all shards.
    pub entries: u64,
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values inserted (including refreshes of an existing key).
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent map from 128-bit content keys to cached evaluations.
///
/// The key space is split across `shards` independently locked segments
/// (selected by the key's high bits, which the [engine](crate::EvalEngine)
/// derives from a different hash stream than the low bits), so parallel
/// workers rarely contend on the same lock. Each shard holds at most
/// `⌈capacity / shards⌉` entries and evicts in FIFO order — no recency
/// bookkeeping on the read path, which keeps hits lock-short and cheap.
///
/// Correctness never depends on cache *contents*: evaluation is a pure
/// function, so a hit returns exactly what re-evaluation would. Eviction
/// and sharding therefore only shape the hit *rate*, never the results.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

struct Shard<V> {
    map: HashMap<u128, V>,
    order: VecDeque<u128>,
}

impl<V: Clone> ShardedCache<V> {
    /// Builds a cache bounded to roughly `capacity` entries across `shards`
    /// segments (both forced to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let cap_per_shard = capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            cap_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        &self.shards[((key >> 64) as usize) % self.shards.len()]
    }

    /// Returns a clone of the cached value, if present.
    pub fn get(&self, key: u128) -> Option<V> {
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        let hit = shard.map.get(&key).cloned();
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts (or refreshes) a value and returns how many entries were
    /// evicted to respect the shard capacity.
    pub fn insert(&self, key: u128, value: V) -> usize {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.map.insert(key, value).is_none() {
            shard.order.push_back(key);
        }
        let mut evicted = 0;
        while shard.map.len() > self.cap_per_shard {
            let Some(victim) = shard.order.pop_front() else {
                break;
            };
            if shard.map.remove(&victim).is_some() {
                evicted += 1;
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Total number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-shard entry bound.
    pub fn capacity_per_shard(&self) -> usize {
        self.cap_per_shard
    }

    /// Lifetime traffic counters, aggregated over every client of this
    /// cache instance.
    pub fn global_stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl<V> std::fmt::Debug for ShardedCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("cap_per_shard", &self.cap_per_shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_what_insert_stored() {
        let c: ShardedCache<String> = ShardedCache::new(64, 4);
        assert_eq!(c.get(42), None);
        assert_eq!(c.insert(42, "v".into()), 0);
        assert_eq!(c.get(42), Some("v".into()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_respected_per_shard() {
        // One shard, capacity 4: inserting 10 keys keeps only the last 4.
        let c: ShardedCache<u32> = ShardedCache::new(4, 1);
        let mut evicted = 0;
        for k in 0..10u128 {
            evicted += c.insert(k, k as u32);
        }
        assert_eq!(evicted, 6);
        assert_eq!(c.len(), 4);
        for k in 0..6u128 {
            assert_eq!(c.get(k), None, "oldest entries evicted first");
        }
        for k in 6..10u128 {
            assert_eq!(c.get(k), Some(k as u32));
        }
    }

    #[test]
    fn refreshing_a_key_does_not_grow_the_cache() {
        let c: ShardedCache<u8> = ShardedCache::new(8, 1);
        for _ in 0..20 {
            c.insert(1, 7);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1), Some(7));
    }

    #[test]
    fn global_stats_accumulate_across_clients() {
        let c: ShardedCache<u8> = ShardedCache::new(2, 1);
        assert_eq!(c.global_stats(), CacheStats::default());
        assert_eq!(c.get(1), None);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30); // evicts key 1
        assert_eq!(c.get(2), Some(20));
        assert_eq!(c.get(1), None);
        let s = c.global_stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.evictions, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn keys_spread_over_shards_by_high_bits() {
        let c: ShardedCache<u8> = ShardedCache::new(1024, 8);
        for hi in 0..8u128 {
            c.insert(hi << 64, 0);
        }
        // All eight land in distinct shards, so none evict each other even
        // with a tiny total... and the total is visible.
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }
}
