//! Free-running instrumentation counters and their report formats.

use crate::pool::WorkerLoad;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Internal atomic counters, bumped lock-free from worker threads.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub batches: AtomicU64,
    pub genomes: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub panics: AtomicU64,
    pub degraded: AtomicU64,
    pub serial_fallbacks: AtomicU64,
    pub lookup_nanos: AtomicU64,
    pub eval_nanos: AtomicU64,
    pub insert_nanos: AtomicU64,
    pub wall_nanos: AtomicU64,
    /// Per-participant dispatch ledger, merged batch by batch: slot `i`
    /// accumulates what participant `i` (0 = the submitting thread)
    /// contributed across all batches. Cold path — touched once per batch,
    /// not per candidate — so a mutex is fine.
    pub workers: Mutex<Vec<WorkerLoad>>,
}

impl StatCounters {
    pub fn add(&self, field: &AtomicU64, v: u64) {
        field.fetch_add(v, Ordering::Relaxed);
    }

    /// Folds one batch's per-participant loads into the cumulative ledger.
    pub fn merge_loads(&self, loads: &[WorkerLoad]) {
        let mut workers = self.workers.lock().expect("worker ledger");
        if workers.len() < loads.len() {
            workers.resize(loads.len(), WorkerLoad::default());
        }
        for (slot, load) in workers.iter_mut().zip(loads) {
            slot.busy_nanos += load.busy_nanos;
            slot.items += load.items;
        }
    }

    pub fn reset(&self) {
        for f in [
            &self.batches,
            &self.genomes,
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.panics,
            &self.degraded,
            &self.serial_fallbacks,
            &self.lookup_nanos,
            &self.eval_nanos,
            &self.insert_nanos,
            &self.wall_nanos,
        ] {
            f.store(0, Ordering::Relaxed);
        }
        self.workers.lock().expect("worker ledger").clear();
    }

    pub fn snapshot(&self, cache_entries: u64) -> EvalStats {
        EvalStats {
            worker_loads: self.workers.lock().expect("worker ledger").clone(),
            batches: self.batches.load(Ordering::Relaxed),
            genomes: self.genomes.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            serial_fallbacks: self.serial_fallbacks.load(Ordering::Relaxed),
            cache_entries,
            lookup_nanos: self.lookup_nanos.load(Ordering::Relaxed),
            eval_nanos: self.eval_nanos.load(Ordering::Relaxed),
            insert_nanos: self.insert_nanos.load(Ordering::Relaxed),
            wall_nanos: self.wall_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the engine's instrumentation.
///
/// `genomes` and `batches` are deterministic for a fixed exploration
/// (results are gathered by index, and every submitted candidate counts
/// exactly once, cache hit or not). Hit/miss totals can shift by a few
/// units across thread counts — concurrent workers may race to first-fill
/// the same key — so throughput tracking should compare `hit_rate()`
/// trends, not exact counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalStats {
    /// Number of `evaluate_batch` calls.
    pub batches: u64,
    /// Total candidates submitted (hits + misses).
    pub genomes: u64,
    /// Candidates answered from the memoization cache.
    pub cache_hits: u64,
    /// Candidates that ran the full evaluation.
    pub cache_misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Worker panics caught by the isolated evaluation path (one per
    /// failed attempt, including attempts later rescued by a retry).
    pub panics: u64,
    /// Candidates that exhausted their retry budget and were degraded to
    /// a typed failure.
    pub degraded: u64,
    /// Batches the adaptive dispatcher ran serially because the predicted
    /// work (observed per-candidate cost x batch size) was too small to
    /// amortize worker-pool and cache-contention overhead.
    pub serial_fallbacks: u64,
    /// Entries resident in the cache at snapshot time.
    pub cache_entries: u64,
    /// Nanoseconds spent hashing keys and probing the cache.
    pub lookup_nanos: u64,
    /// Nanoseconds spent inside the evaluation function (summed across
    /// workers, so this can exceed wall time).
    pub eval_nanos: u64,
    /// Nanoseconds spent inserting results into the cache.
    pub insert_nanos: u64,
    /// Wall-clock nanoseconds across all batches (caller-side).
    pub wall_nanos: u64,
    /// Cumulative per-participant dispatch ledger: entry `i` is what
    /// participant `i` (0 = the submitting thread, 1.. = pool helpers)
    /// spent inside batch claim loops and how many candidates it
    /// completed. Timing observation — non-deterministic across runs, like
    /// the phase nanos.
    pub worker_loads: Vec<WorkerLoad>,
}

impl EvalStats {
    /// Share of candidates answered from the cache (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        if self.genomes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.genomes as f64
        }
    }

    /// Evaluation throughput in candidates per wall-clock second.
    pub fn genomes_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.genomes as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Per-worker utilization: each participant's busy nanoseconds over
    /// the total batch wall time. On a well-scattered workload every entry
    /// sits near 1.0; helpers near 0.0 mean the fan-out paid for threads
    /// it could not feed.
    pub fn utilization(&self) -> Vec<f64> {
        if self.wall_nanos == 0 {
            return vec![0.0; self.worker_loads.len()];
        }
        self.worker_loads
            .iter()
            .map(|w| w.busy_nanos as f64 / self.wall_nanos as f64)
            .collect()
    }

    /// Multi-line human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "eval-stats: {} genomes in {} batches ({:.1} genomes/s)\n\
             eval-stats: cache {} hits / {} misses ({:.2} % hit rate), \
             {} evictions, {} resident\n\
             eval-stats: phase nanos: lookup {}, evaluate {}, insert {}, wall {}\n",
            self.genomes,
            self.batches,
            self.genomes_per_sec(),
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.evictions,
            self.cache_entries,
            self.lookup_nanos,
            self.eval_nanos,
            self.insert_nanos,
            self.wall_nanos,
        );
        if self.serial_fallbacks > 0 {
            out.push_str(&format!(
                "eval-stats: adaptive dispatch: {} small batches ran serially\n",
                self.serial_fallbacks,
            ));
        }
        if !self.worker_loads.is_empty() {
            let util = self.utilization();
            let rendered: Vec<String> = self
                .worker_loads
                .iter()
                .zip(&util)
                .map(|(w, u)| format!("{} ({:.0} %)", w.items, u * 100.0))
                .collect();
            out.push_str(&format!(
                "eval-stats: worker items (busy/wall): {}\n",
                rendered.join(", "),
            ));
        }
        if self.panics > 0 || self.degraded > 0 {
            out.push_str(&format!(
                "eval-stats: resilience: {} panics caught, {} candidates degraded\n",
                self.panics, self.degraded,
            ));
        }
        out
    }

    /// Single-object JSON report (stable keys, for `BENCH_*.json` tooling).
    pub fn to_json(&self) -> String {
        let util = self.utilization();
        let workers: Vec<String> = self
            .worker_loads
            .iter()
            .zip(&util)
            .map(|(w, u)| {
                format!(
                    "{{\"busy_nanos\":{},\"items\":{},\"utilization\":{:.6}}}",
                    w.busy_nanos, w.items, u,
                )
            })
            .collect();
        format!(
            "{{\"batches\":{},\"genomes\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"hit_rate\":{:.6},\"evictions\":{},\"panics\":{},\"degraded\":{},\
             \"serial_fallbacks\":{},\"cache_entries\":{},\
             \"lookup_nanos\":{},\"eval_nanos\":{},\"insert_nanos\":{},\
             \"wall_nanos\":{},\"genomes_per_sec\":{:.3},\"workers\":[{}]}}",
            self.batches,
            self.genomes,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.evictions,
            self.panics,
            self.degraded,
            self.serial_fallbacks,
            self.cache_entries,
            self.lookup_nanos,
            self.eval_nanos,
            self.insert_nanos,
            self.wall_nanos,
            self.genomes_per_sec(),
            workers.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_zero_denominators() {
        let s = EvalStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.genomes_per_sec(), 0.0);
    }

    #[test]
    fn reports_mention_the_load_bearing_numbers() {
        let s = EvalStats {
            batches: 2,
            genomes: 10,
            cache_hits: 4,
            cache_misses: 6,
            evictions: 1,
            panics: 3,
            degraded: 1,
            serial_fallbacks: 2,
            cache_entries: 5,
            lookup_nanos: 100,
            eval_nanos: 900,
            insert_nanos: 50,
            wall_nanos: 1_000_000_000,
            worker_loads: vec![
                WorkerLoad {
                    busy_nanos: 900_000_000,
                    items: 7,
                },
                WorkerLoad {
                    busy_nanos: 250_000_000,
                    items: 3,
                },
            ],
        };
        let text = s.render_text();
        assert!(text.contains("4 hits / 6 misses"));
        assert!(text.contains("40.00 % hit rate"));
        assert!(text.contains("3 panics caught, 1 candidates degraded"));
        let json = s.to_json();
        assert!(json.contains("\"cache_hits\":4"));
        assert!(json.contains("\"hit_rate\":0.400000"));
        assert!(json.contains("\"panics\":3"));
        assert!(json.contains("\"degraded\":1"));
        assert!(json.contains("\"serial_fallbacks\":2"));
        assert!(text.contains("2 small batches ran serially"));
        assert!(json.contains("\"genomes_per_sec\":10.000"));
        assert!(text.contains("7 (90 %), 3 (25 %)"), "got: {text}");
        assert!(json.contains(
            "\"workers\":[{\"busy_nanos\":900000000,\"items\":7,\"utilization\":0.900000}"
        ));
        assert_eq!(s.utilization(), vec![0.9, 0.25]);

        let clean = EvalStats::default();
        assert!(
            !clean.render_text().contains("resilience"),
            "fault-free runs keep the original report shape"
        );
    }

    #[test]
    fn counters_reset_to_zero() {
        let c = StatCounters::default();
        c.add(&c.genomes, 5);
        c.add(&c.hits, 2);
        c.merge_loads(&[WorkerLoad {
            busy_nanos: 10,
            items: 5,
        }]);
        assert_eq!(c.snapshot(0).genomes, 5);
        assert_eq!(c.snapshot(0).worker_loads.len(), 1);
        c.reset();
        assert_eq!(c.snapshot(0), EvalStats::default());
    }

    #[test]
    fn worker_ledger_merges_by_participant_index() {
        let c = StatCounters::default();
        c.merge_loads(&[
            WorkerLoad {
                busy_nanos: 100,
                items: 4,
            },
            WorkerLoad {
                busy_nanos: 50,
                items: 2,
            },
        ]);
        // A later serial batch only touches participant 0; the ledger
        // keeps the wider shape.
        c.merge_loads(&[WorkerLoad {
            busy_nanos: 25,
            items: 1,
        }]);
        let s = c.snapshot(0);
        assert_eq!(
            s.worker_loads,
            vec![
                WorkerLoad {
                    busy_nanos: 125,
                    items: 5,
                },
                WorkerLoad {
                    busy_nanos: 50,
                    items: 2,
                },
            ]
        );
    }
}
