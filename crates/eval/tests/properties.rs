//! Property-based tests of the evaluation engine's core guarantees:
//! thread-count invariance and cache transparency.

use mcmap_eval::{parallel_map, EvalCacheConfig, EvalEngine};
use proptest::prelude::*;

/// A deliberately collision-heavy "evaluation": maps many genomes to the
/// same value so the cache sees real hit traffic.
fn expensive(g: &u64) -> (u64, bool) {
    let mut acc = *g;
    for _ in 0..50 {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    (acc, acc.is_multiple_of(3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_map_matches_serial_map(
        items in proptest::collection::vec(any::<u64>(), 0..80),
        threads in 1usize..9,
    ) {
        let serial: Vec<(u64, bool)> = items.iter().map(expensive).collect();
        prop_assert_eq!(parallel_map(&items, threads, expensive), serial);
    }

    #[test]
    fn cache_on_and_cache_off_agree(
        items in proptest::collection::vec(0u64..32, 1..120),
        threads in 1usize..5,
        capacity in 0usize..64,
    ) {
        let cached: EvalEngine<(u64, bool)> =
            EvalEngine::new(EvalCacheConfig::with_capacity(capacity), &"prop");
        let bare: EvalEngine<(u64, bool)> =
            EvalEngine::new(EvalCacheConfig::disabled(), &"prop");
        let a = cached.evaluate_batch(&items, threads, expensive);
        let b = bare.evaluate_batch(&items, 1, expensive);
        prop_assert_eq!(a, b);
        // Both engines account every submitted genome exactly once.
        prop_assert_eq!(cached.stats().genomes, items.len() as u64);
        prop_assert_eq!(bare.stats().genomes, items.len() as u64);
        prop_assert_eq!(bare.stats().cache_misses, items.len() as u64);
    }

    #[test]
    fn repeated_batches_are_idempotent(
        items in proptest::collection::vec(0u64..16, 1..60),
    ) {
        let e: EvalEngine<(u64, bool)> =
            EvalEngine::new(EvalCacheConfig::default(), &"prop-idem");
        let first = e.evaluate_batch(&items, 2, expensive);
        let second = e.evaluate_batch(&items, 4, expensive);
        prop_assert_eq!(first, second);
        // The second pass is answered entirely from the cache.
        let s = e.stats();
        prop_assert!(s.cache_hits >= items.len() as u64);
    }
}
