//! Stress the persistent pool **with real helper threads**, regardless of
//! host core count: every test forces `MCMAP_POOL_HELPERS` before first
//! pool use, so the helper machinery (ticket claiming, quiesce protocol,
//! nested-budget degradation) is exercised even on single-core CI runners
//! where the default helper count is zero.

use mcmap_eval::{parallel_map, parallel_map_caught, parallel_map_timed, pool_capacity};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Each test calls this before touching the pool; the value is read once
/// at pool initialization, so concurrently running tests all agree.
fn force_helpers() {
    std::env::set_var("MCMAP_POOL_HELPERS", "3");
    assert_eq!(pool_capacity(), 4);
}

#[test]
fn helpers_preserve_order_and_coverage_under_load() {
    force_helpers();
    for round in 0..50u64 {
        let items: Vec<u64> = (0..257).map(|i| i * 31 + round).collect();
        let expect: Vec<u64> = items.iter().map(|x| x ^ 0xA5A5).collect();
        assert_eq!(parallel_map(&items, 4, |x| x ^ 0xA5A5), expect);
    }
}

#[test]
fn helpers_account_every_item_exactly_once() {
    force_helpers();
    let calls = AtomicUsize::new(0);
    let items: Vec<u32> = (0..1000).collect();
    let (out, loads) = parallel_map_timed(&items, 4, |x| {
        calls.fetch_add(1, Ordering::Relaxed);
        x + 1
    });
    assert_eq!(out.len(), 1000);
    assert_eq!(calls.load(Ordering::Relaxed), 1000);
    assert_eq!(loads.iter().map(|l| l.items).sum::<u64>(), 1000);
}

#[test]
fn helper_panics_propagate_and_the_pool_survives() {
    force_helpers();
    for _ in 0..20 {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&(0..64).collect::<Vec<u32>>(), 4, |x| {
                assert!(*x != 40, "boom at {x}");
                *x
            })
        });
        let payload = result.expect_err("panic must cross the pool");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("boom at 40"));
        // The pool still answers cleanly after the unwind.
        assert_eq!(parallel_map(&[1u8, 2, 3], 4, |x| x * 2), vec![2, 4, 6]);
    }
}

#[test]
fn caught_map_with_helpers_isolates_failures_per_item() {
    force_helpers();
    let items: Vec<u32> = (0..200).collect();
    let out = parallel_map_caught(&items, 4, |x| {
        assert!(x % 13 != 5, "poisoned {x}");
        x * 3
    });
    for (i, r) in out.iter().enumerate() {
        if i % 13 == 5 {
            assert!(r.is_err());
        } else {
            assert_eq!(*r.as_ref().unwrap(), i as u32 * 3);
        }
    }
}

#[test]
fn nested_maps_share_the_helper_budget_without_deadlock() {
    force_helpers();
    // Outer×inner fan-out much wider than the pool: inner maps degrade to
    // (mostly) inline execution instead of deadlocking or oversubscribing.
    let outer: Vec<u64> = (0..24).collect();
    let result = parallel_map(&outer, 4, |&o| {
        let inner: Vec<u64> = (0..100).collect();
        parallel_map(&inner, 4, |&i| o * 1000 + i)
            .iter()
            .sum::<u64>()
    });
    let expect: Vec<u64> = outer.iter().map(|&o| o * 1000 * 100 + 4950).collect();
    assert_eq!(result, expect);
}

#[test]
fn many_small_batches_reuse_the_pool() {
    force_helpers();
    // The regression this pool exists to fix: thousands of small batches
    // must not pay a spawn/join each. This is a correctness smoke (the
    // timing claim lives in the fleet_scale bench); it mainly proves the
    // ticket queue drains cleanly under rapid-fire submission.
    for round in 0..2000u64 {
        let items = [round, round + 1, round + 2, round + 3];
        let out = parallel_map(&items, 4, |x| x * 2);
        assert_eq!(
            out,
            vec![round * 2, round * 2 + 2, round * 2 + 4, round * 2 + 6]
        );
    }
}
