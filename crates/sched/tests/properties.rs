//! Property-based tests for the holistic scheduling backend.

use mcmap_hardening::{harden, HardenedSystem, HardeningPlan};
use mcmap_model::{
    AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor, Task,
    TaskGraph, Time,
};
use mcmap_sched::{
    nominal_bounds, uniform_policies, HolisticAnalysis, Mapping, SchedBackend, SchedPolicy,
};
use proptest::prelude::*;

/// A random multi-app system description: per app a (period, chain of
/// (bcet_frac, wcet)) plus a placement choice per task.
#[derive(Debug, Clone)]
struct SystemDesc {
    apps: Vec<(u64, Vec<(u64, u64)>)>,
    placements: Vec<usize>,
    preemptive: bool,
}

fn system_strategy() -> impl Strategy<Value = SystemDesc> {
    let app = (
        prop::sample::select(vec![1_000u64, 2_000, 4_000]),
        prop::collection::vec((1u64..100, 1u64..100), 1..4),
    );
    (
        prop::collection::vec(app, 1..4),
        prop::collection::vec(0usize..3, 12),
        any::<bool>(),
    )
        .prop_map(|(apps, placements, preemptive)| SystemDesc {
            apps,
            placements,
            preemptive,
        })
}

fn build(desc: &SystemDesc) -> (Architecture, HardenedSystem, Mapping, Vec<SchedPolicy>) {
    let arch = Architecture::builder()
        .homogeneous(3, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
        .fabric(Fabric::new(16))
        .build()
        .expect("valid");
    let graphs: Vec<TaskGraph> = desc
        .apps
        .iter()
        .enumerate()
        .map(|(i, (period, tasks))| {
            let mut b = TaskGraph::builder(format!("a{i}"), Time::from_ticks(*period))
                .criticality(Criticality::Droppable { service: 1.0 });
            for (j, (b_raw, w_extra)) in tasks.iter().enumerate() {
                let wcet = b_raw + w_extra;
                b = b.task(Task::new(format!("t{i}_{j}")).with_uniform_exec(
                    1,
                    ExecBounds::new(Time::from_ticks(*b_raw), Time::from_ticks(wcet)),
                ));
            }
            for j in 1..tasks.len() {
                b = b.channel(j - 1, j, 8);
            }
            b.build().expect("chains are valid")
        })
        .collect();
    let apps = AppSet::new(graphs).expect("nonempty");
    let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).expect("valid");
    let placement: Vec<ProcId> = (0..hsys.num_tasks())
        .map(|i| ProcId::new(desc.placements[i % desc.placements.len()]))
        .collect();
    let mapping = Mapping::new(&hsys, &arch, placement).expect("kind 0 everywhere");
    let policy = if desc.preemptive {
        SchedPolicy::FixedPriorityPreemptive
    } else {
        SchedPolicy::FixedPriorityNonPreemptive
    };
    (arch, hsys, mapping, uniform_policies(3, policy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn windows_are_internally_consistent(desc in system_strategy()) {
        let (arch, hsys, mapping, policies) = build(&desc);
        let analysis = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
        let bounds = nominal_bounds(&hsys, &arch, &mapping);
        let w = analysis.analyze(&bounds);
        for id in hsys.task_ids() {
            let (min_start, max_finish) = w.window(id);
            if w.converged {
                // A task cannot finish before it starts plus its bcet.
                prop_assert!(
                    max_finish >= min_start + bounds[id.index()].bcet,
                    "task {id}: window [{min_start}, {max_finish}]"
                );
            }
            // Precedence: a consumer never starts before any producer's
            // best-case finish.
            for pred in hsys.predecessors(id) {
                prop_assert!(
                    w.min_start[id.index()]
                        >= w.min_start[pred.index()] + bounds[pred.index()].bcet
                );
            }
        }
    }

    #[test]
    fn widening_bounds_is_monotone(desc in system_strategy(), victim in 0usize..12) {
        let (arch, hsys, mapping, policies) = build(&desc);
        let analysis = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
        let base = nominal_bounds(&hsys, &arch, &mapping);
        let w1 = analysis.analyze(&base);
        let mut wider = base.clone();
        let v = victim % hsys.num_tasks();
        wider[v] = ExecBounds::new(Time::ZERO, wider[v].wcet * 2);
        let w2 = analysis.analyze(&wider);
        if w1.converged && w2.converged {
            for i in 0..hsys.num_tasks() {
                prop_assert!(w2.max_finish[i] >= w1.max_finish[i]);
                prop_assert!(w2.min_start[i] <= w1.min_start[i]);
            }
        }
    }

    #[test]
    fn zeroed_tasks_vanish_from_the_schedule(desc in system_strategy(), victim in 0usize..12) {
        let (arch, hsys, mapping, policies) = build(&desc);
        let analysis = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
        let mut bounds = nominal_bounds(&hsys, &arch, &mapping);
        let v = victim % hsys.num_tasks();
        bounds[v] = ExecBounds::ZERO;
        let w = analysis.analyze(&bounds);
        // A zero-bound task completes exactly at its release.
        prop_assert_eq!(
            w.max_finish[v],
            {
                let release = hsys
                    .in_channels(mcmap_hardening::HTaskId::new(v))
                    .map(|c| {
                        let delay = if mapping.proc_of(c.src) == mapping.proc_of(c.dst) {
                            Time::ZERO
                        } else {
                            arch.fabric().transfer_time(c.bytes)
                        };
                        w.max_finish[c.src.index()].saturating_add(delay)
                    })
                    .max()
                    .unwrap_or(Time::ZERO);
                release
            }
        );
    }

    #[test]
    fn analysis_is_deterministic(desc in system_strategy()) {
        let (arch, hsys, mapping, policies) = build(&desc);
        let analysis = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
        let bounds = nominal_bounds(&hsys, &arch, &mapping);
        let a = analysis.analyze(&bounds);
        let b = analysis.analyze(&bounds);
        prop_assert_eq!(a, b);
    }
}
