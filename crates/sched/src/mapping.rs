//! Task-to-processor mappings and per-processor scheduling policies.

use core::fmt;
use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{Architecture, ProcId, Time};

/// The local scheduling policy of one processing element.
///
/// The paper adopts *static hardening-mapping / dynamic scheduling*: once
/// tasks are bound to a PE they are dispatched at run time by that PE's
/// local scheduler. Both policies use fixed task priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Fixed-priority preemptive scheduling.
    #[default]
    FixedPriorityPreemptive,
    /// Fixed-priority non-preemptive scheduling (the DT benchmarks model a
    /// non-preemptive CORBA middleware).
    FixedPriorityNonPreemptive,
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedPolicy::FixedPriorityPreemptive => write!(f, "fp-preemptive"),
            SchedPolicy::FixedPriorityNonPreemptive => write!(f, "fp-non-preemptive"),
        }
    }
}

/// Creates a uniform policy assignment for `n` processors.
pub fn uniform_policies(n: usize, policy: SchedPolicy) -> Vec<SchedPolicy> {
    vec![policy; n]
}

/// Error produced when constructing a [`Mapping`].
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The placement slice length does not match the number of hardened
    /// tasks.
    LengthMismatch {
        /// Provided entries.
        got: usize,
        /// Expected entries (hardened tasks).
        expected: usize,
    },
    /// A task was placed on a processor that does not exist.
    UnknownProcessor {
        /// The task.
        task: HTaskId,
        /// The out-of-range processor.
        proc: ProcId,
    },
    /// A task was placed on a processor whose kind it cannot execute on.
    KindMismatch {
        /// The task.
        task: HTaskId,
        /// The incompatible processor.
        proc: ProcId,
    },
    /// A task with a plan-fixed placement was placed elsewhere.
    FixedPlacementViolated {
        /// The task.
        task: HTaskId,
        /// The processor required by the hardening plan.
        required: ProcId,
        /// The processor actually assigned.
        got: ProcId,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::LengthMismatch { got, expected } => {
                write!(f, "placement has {got} entries, expected {expected}")
            }
            MapError::UnknownProcessor { task, proc } => {
                write!(f, "task {task} mapped to unknown processor {proc}")
            }
            MapError::KindMismatch { task, proc } => {
                write!(f, "task {task} cannot execute on processor {proc}")
            }
            MapError::FixedPlacementViolated {
                task,
                required,
                got,
            } => {
                write!(
                    f,
                    "task {task} must stay on {required} (hardening plan) but was mapped to {got}"
                )
            }
        }
    }
}

impl std::error::Error for MapError {}

/// A complete binding of hardened tasks to processors, with fixed local
/// priorities.
///
/// Priorities are `u32` values where a *smaller* value means a *higher*
/// priority; ties are broken deterministically by task id.
///
/// # Examples
///
/// ```
/// use mcmap_hardening::{harden, HardeningPlan};
/// use mcmap_model::{AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task,
///     TaskGraph, Time};
/// use mcmap_sched::Mapping;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let arch = Architecture::builder()
/// #     .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
/// #     .build()?;
/// # let g = TaskGraph::builder("g", Time::from_ticks(100))
/// #     .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
/// #     .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
/// #     .channel(0, 1, 8)
/// #     .build()?;
/// # let apps = AppSet::new(vec![g])?;
/// # let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch)?;
/// let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0), ProcId::new(1)])?;
/// assert_eq!(mapping.proc_of(mcmap_hardening::HTaskId::new(1)), ProcId::new(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    proc: Vec<ProcId>,
    priority: Vec<u32>,
}

impl Mapping {
    /// Creates a mapping from a placement slice, validating it against the
    /// hardened system and architecture, and assigning default
    /// rate-monotonic priorities (see [`Mapping::with_priorities`] to
    /// override).
    ///
    /// # Errors
    ///
    /// See [`MapError`] for the rejected conditions.
    pub fn new(
        hsys: &HardenedSystem,
        arch: &Architecture,
        placement: Vec<ProcId>,
    ) -> Result<Self, MapError> {
        if placement.len() != hsys.num_tasks() {
            return Err(MapError::LengthMismatch {
                got: placement.len(),
                expected: hsys.num_tasks(),
            });
        }
        for (id, t) in hsys.tasks() {
            let proc = placement[id.index()];
            if proc.index() >= arch.num_processors() {
                return Err(MapError::UnknownProcessor { task: id, proc });
            }
            if !t.runs_on(arch.processor(proc).kind) {
                return Err(MapError::KindMismatch { task: id, proc });
            }
            if let Some(required) = t.fixed_proc {
                if proc != required {
                    return Err(MapError::FixedPlacementViolated {
                        task: id,
                        required,
                        got: proc,
                    });
                }
            }
        }
        let priority = rate_monotonic_priorities(hsys);
        Ok(Mapping {
            proc: placement,
            priority,
        })
    }

    /// Replaces the priority assignment.
    ///
    /// # Panics
    ///
    /// Panics if `priority.len()` differs from the number of tasks.
    pub fn with_priorities(mut self, priority: Vec<u32>) -> Self {
        assert_eq!(
            priority.len(),
            self.proc.len(),
            "priority vector must cover every task"
        );
        self.priority = priority;
        self
    }

    /// The processor a task is bound to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn proc_of(&self, id: HTaskId) -> ProcId {
        self.proc[id.index()]
    }

    /// The fixed priority of a task (smaller = more urgent).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn priority_of(&self, id: HTaskId) -> u32 {
        self.priority[id.index()]
    }

    /// The full placement slice (indexed by task id).
    pub fn placement(&self) -> &[ProcId] {
        &self.proc
    }

    /// `true` when `a` has strictly higher priority than `b` (ties broken by
    /// id).
    pub fn outranks(&self, a: HTaskId, b: HTaskId) -> bool {
        (self.priority[a.index()], a.index()) < (self.priority[b.index()], b.index())
    }

    /// Ids of the tasks bound to `proc`.
    pub fn tasks_on(&self, proc: ProcId) -> impl Iterator<Item = HTaskId> + '_ {
        self.proc
            .iter()
            .enumerate()
            .filter(move |&(_, &p)| p == proc)
            .map(|(i, _)| HTaskId::new(i))
    }
}

/// Default priority assignment: rate monotonic over the owning application's
/// period, refined by precedence depth (producers outrank their consumers)
/// so pipelines drain front-to-back, with task id as the final tie-break.
pub fn rate_monotonic_priorities(hsys: &HardenedSystem) -> Vec<u32> {
    let n = hsys.num_tasks();
    // Depth = longest path from any source, per task.
    let mut depth = vec![0u32; n];
    for &id in hsys.topological_order() {
        for succ in hsys.successors(id) {
            let d = depth[id.index()] + 1;
            if depth[succ.index()] < d {
                depth[succ.index()] = d;
            }
        }
    }
    let mut order: Vec<HTaskId> = hsys.task_ids().collect();
    order.sort_by_key(|&id| (hsys.app_of(id).period, depth[id.index()], id.index()));
    let mut prio = vec![0u32; n];
    for (rank, id) in order.into_iter().enumerate() {
        prio[id.index()] = rank as u32;
    }
    prio
}

/// Deadline-monotonic priority assignment: shorter relative deadline =
/// higher priority, refined by precedence depth and task id, mirroring
/// [`rate_monotonic_priorities`].
pub fn deadline_monotonic_priorities(hsys: &HardenedSystem) -> Vec<u32> {
    let n = hsys.num_tasks();
    let mut depth = vec![0u32; n];
    for &id in hsys.topological_order() {
        for succ in hsys.successors(id) {
            let d = depth[id.index()] + 1;
            if depth[succ.index()] < d {
                depth[succ.index()] = d;
            }
        }
    }
    let mut order: Vec<HTaskId> = hsys.task_ids().collect();
    order.sort_by_key(|&id| (hsys.app_of(id).deadline, depth[id.index()], id.index()));
    let mut prio = vec![0u32; n];
    for (rank, id) in order.into_iter().enumerate() {
        prio[id.index()] = rank as u32;
    }
    prio
}

/// Per-processor utilization of a mapping under nominal worst-case demand:
/// `u_p = Σ_{v on p} wcet_v / period_v`. The expected-power objective in the
/// core crate refines this with fault-activation probabilities.
pub fn nominal_utilization(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
) -> Vec<f64> {
    let mut u = vec![0.0; arch.num_processors()];
    for (id, t) in hsys.tasks() {
        let proc = mapping.proc_of(id);
        let kind = arch.processor(proc).kind;
        let wcet = t.nominal_bounds(kind).map(|b| b.wcet).unwrap_or(Time::ZERO);
        let period = hsys.app_of(id).period;
        u[proc.index()] += wcet.as_f64() / period.as_f64();
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{AppSet, ExecBounds, ProcKind, Processor, Task, TaskGraph};

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap()
    }

    fn two_app_system() -> (AppSet, Architecture, HardenedSystem) {
        let fast = TaskGraph::builder("fast", Time::from_ticks(50))
            .task(Task::new("f0").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .task(Task::new("f1").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .channel(0, 1, 8)
            .build()
            .unwrap();
        let slow = TaskGraph::builder("slow", Time::from_ticks(100))
            .task(Task::new("s0").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![fast, slow]).unwrap();
        let arch = arch(2);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        (apps, arch, hsys)
    }

    #[test]
    fn valid_mapping_constructs() {
        let (_, arch, hsys) = two_app_system();
        let m = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(1), ProcId::new(0)],
        )
        .unwrap();
        assert_eq!(m.proc_of(HTaskId::new(1)), ProcId::new(1));
        assert_eq!(m.tasks_on(ProcId::new(0)).count(), 2);
        assert_eq!(m.placement().len(), 3);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (_, arch, hsys) = two_app_system();
        assert!(matches!(
            Mapping::new(&hsys, &arch, vec![ProcId::new(0)]),
            Err(MapError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_processor_rejected() {
        let (_, arch, hsys) = two_app_system();
        assert!(matches!(
            Mapping::new(
                &hsys,
                &arch,
                vec![ProcId::new(0), ProcId::new(7), ProcId::new(0)]
            ),
            Err(MapError::UnknownProcessor { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let het = Architecture::builder()
            .processor(Processor::new("a", ProcKind::new(0), 5.0, 20.0, 0.0))
            .processor(Processor::new("b", ProcKind::new(1), 5.0, 20.0, 0.0))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(10))
            .task(
                Task::new("t").with_exec(ProcKind::new(0), ExecBounds::exact(Time::from_ticks(1))),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &het).unwrap();
        assert!(matches!(
            Mapping::new(&hsys, &het, vec![ProcId::new(1)]),
            Err(MapError::KindMismatch { .. })
        ));
    }

    #[test]
    fn fixed_placement_enforced() {
        let arch = arch(3);
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1)], ProcId::new(2)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        // Tasks: primary (free), replica (fixed p1), voter (fixed p2).
        let ok = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(1), ProcId::new(2)],
        );
        assert!(ok.is_ok());
        let bad = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(0), ProcId::new(2)],
        );
        assert!(matches!(bad, Err(MapError::FixedPlacementViolated { .. })));
    }

    #[test]
    fn rate_monotonic_orders_by_period_then_depth() {
        let (_, _, hsys) = two_app_system();
        let prio = rate_monotonic_priorities(&hsys);
        // fast app tasks (period 50) outrank slow app (period 100).
        assert!(prio[0] < prio[2]);
        assert!(prio[1] < prio[2]);
        // producer outranks consumer within the pipeline.
        assert!(prio[0] < prio[1]);
    }

    #[test]
    fn outranks_breaks_ties_by_id() {
        let (_, arch, hsys) = two_app_system();
        let m = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(0), ProcId::new(0)],
        )
        .unwrap()
        .with_priorities(vec![1, 1, 0]);
        assert!(m.outranks(HTaskId::new(2), HTaskId::new(0)));
        assert!(m.outranks(HTaskId::new(0), HTaskId::new(1)));
        assert!(!m.outranks(HTaskId::new(1), HTaskId::new(0)));
    }

    #[test]
    #[should_panic(expected = "priority vector must cover every task")]
    fn wrong_priority_length_panics() {
        let (_, arch, hsys) = two_app_system();
        let _ = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(0), ProcId::new(0)],
        )
        .unwrap()
        .with_priorities(vec![0]);
    }

    #[test]
    fn nominal_utilization_sums_demand() {
        let (_, arch, hsys) = two_app_system();
        let m = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(0), ProcId::new(1)],
        )
        .unwrap();
        let u = nominal_utilization(&hsys, &arch, &m);
        assert!((u[0] - (5.0 / 50.0 + 5.0 / 50.0)).abs() < 1e-12);
        assert!((u[1] - 10.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn policy_display() {
        assert_eq!(
            SchedPolicy::FixedPriorityPreemptive.to_string(),
            "fp-preemptive"
        );
        assert_eq!(uniform_policies(3, SchedPolicy::default()).len(), 3);
    }
}

#[cfg(test)]
mod dm_tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan};
    use mcmap_model::{AppSet, ExecBounds, ProcKind, Processor, Task, TaskGraph};

    #[test]
    fn deadline_monotonic_prefers_tight_deadlines() {
        // Same periods, different deadlines: the tighter-deadline app must
        // outrank under DM while RM ties break by structure.
        let tight = TaskGraph::builder("tight", Time::from_ticks(100))
            .deadline(Time::from_ticks(40))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .build()
            .unwrap();
        let loose = TaskGraph::builder("loose", Time::from_ticks(100))
            .deadline(Time::from_ticks(90))
            .task(Task::new("l").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .build()
            .unwrap();
        // Put `loose` first so the id tie-break would favour it.
        let apps = AppSet::new(vec![loose, tight]).unwrap();
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 1.0, 1.0, 0.0))
            .build()
            .unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let dm = deadline_monotonic_priorities(&hsys);
        assert!(dm[1] < dm[0], "tight deadline must outrank: {dm:?}");
        let rm = rate_monotonic_priorities(&hsys);
        assert!(rm[0] < rm[1], "RM ties break by id: {rm:?}");
    }

    #[test]
    fn dm_assignment_is_a_permutation() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .task(Task::new("c").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
            .channel(0, 1, 4)
            .channel(1, 2, 4)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 1.0, 1.0, 0.0))
            .build()
            .unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mut dm = deadline_monotonic_priorities(&hsys);
        dm.sort_unstable();
        assert_eq!(dm, vec![0, 1, 2]);
    }
}
