//! A coarse, fixed-point-free schedulability backend.
//!
//! The paper stresses that Algorithm 1 works over *any* backend that
//! produces safe `[minStart, maxFinish]` windows ([9], [15]–[17] are all
//! named as candidates). [`CoarseAnalysis`] is a second, deliberately
//! simple implementation demonstrating that pluggability: instead of the
//! holistic busy-period fixed point it charges every same-processor
//! higher-priority task its *entire hyperperiod demand* up front:
//!
//! ```text
//! finish(v) = release(v) + B(v) + C(v) + Σ_{w ∈ hp(v) on proc(v)} (H/T_w + 2) · C_w
//! ```
//!
//! The `+2` covers carry-in and carry-out jobs at the window edges, so the
//! expression over-counts any interference window of length ≤ H. The bound
//! is therefore safe whenever the task completes within one hyperperiod of
//! its release; if the computed finish exceeds `release + H`, the backend
//! reports [`Time::MAX`] (unschedulable under the constrained-deadline
//! model, where every deadline ≤ period ≤ H).
//!
//! It is one topological pass (no iteration), typically 3–10× faster and
//! 2–5× more pessimistic than [`HolisticAnalysis`](crate::HolisticAnalysis)
//! — a useful pre-filter inside DSE loops.

use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{Architecture, ExecBounds, Time};

use crate::{hyperperiod, Mapping, SchedBackend, SchedPolicy, TaskWindows};

/// The coarse hyperperiod-demand backend. Construction mirrors
/// [`HolisticAnalysis`](crate::HolisticAnalysis); `analyze` is a single
/// topological pass.
#[derive(Debug)]
pub struct CoarseAnalysis<'a> {
    hsys: &'a HardenedSystem,
    /// Incoming edges: `(source, channel delay)` per task.
    in_edges: Vec<Vec<(HTaskId, Time)>>,
    /// Same-processor interferers per task: higher-priority tasks carry
    /// their per-hyperperiod job budget `H/T + 2`; lower-priority tasks on
    /// non-preemptive processors carry budget 0 and enter the blocking
    /// pool instead.
    hp_budget: Vec<Vec<(HTaskId, u64)>>,
    hyper: Time,
}

impl<'a> CoarseAnalysis<'a> {
    /// Builds the backend for one mapped system.
    ///
    /// # Panics
    ///
    /// Panics if `policies` does not cover every processor.
    pub fn new(
        hsys: &'a HardenedSystem,
        arch: &'a Architecture,
        mapping: &'a Mapping,
        policies: Vec<SchedPolicy>,
    ) -> Self {
        assert_eq!(
            policies.len(),
            arch.num_processors(),
            "one policy per processor required"
        );
        let n = hsys.num_tasks();
        let hyper = hyperperiod(hsys);

        let mut in_edges: Vec<Vec<(HTaskId, Time)>> = vec![Vec::new(); n];
        for c in hsys.channels() {
            let delay = if mapping.proc_of(c.src) == mapping.proc_of(c.dst) {
                Time::ZERO
            } else {
                arch.fabric().transfer_time(c.bytes)
            };
            in_edges[c.dst.index()].push((c.src, delay));
        }

        let mut hp_budget: Vec<Vec<(HTaskId, u64)>> = vec![Vec::new(); n];
        for v in hsys.task_ids() {
            let pv = mapping.proc_of(v);
            let non_preemptive = policies[pv.index()] == SchedPolicy::FixedPriorityNonPreemptive;
            for w in hsys.task_ids() {
                if w == v || mapping.proc_of(w) != pv {
                    continue;
                }
                if mapping.outranks(w, v) {
                    let period = hsys.app_of(w).period;
                    let jobs = hyper.ticks() / period.ticks() + 2;
                    hp_budget[v.index()].push((w, jobs));
                } else if non_preemptive {
                    // Budget 0 marks a blocking-pool entry; the largest such
                    // execution is charged once at analyze time.
                    hp_budget[v.index()].push((w, 0));
                }
            }
        }

        CoarseAnalysis {
            hsys,
            in_edges,
            hp_budget,
            hyper,
        }
    }
}

impl SchedBackend for CoarseAnalysis<'_> {
    fn analyze(&self, bounds: &[ExecBounds]) -> TaskWindows {
        assert_eq!(
            bounds.len(),
            self.hsys.num_tasks(),
            "one execution-bound entry per hardened task required"
        );
        let n = self.hsys.num_tasks();
        let mut min_start = vec![Time::ZERO; n];
        let mut min_finish = vec![Time::ZERO; n];
        let mut max_finish = vec![Time::ZERO; n];
        let mut converged = true;

        for &v in self.hsys.topological_order() {
            // Best case: interference-free.
            let er = self.in_edges[v.index()]
                .iter()
                .map(|&(src, delay)| min_finish[src.index()].saturating_add(delay))
                .max()
                .unwrap_or(Time::ZERO);
            min_start[v.index()] = er;
            min_finish[v.index()] = er.saturating_add(bounds[v.index()].bcet);

            // Worst case: latest release + full hyperperiod demand.
            let release = self.in_edges[v.index()]
                .iter()
                .map(|&(src, delay)| max_finish[src.index()].saturating_add(delay))
                .max()
                .unwrap_or(Time::ZERO);
            let c = bounds[v.index()].wcet;
            let mut finish = release.saturating_add(c);
            if !c.is_zero() {
                let mut blocking = Time::ZERO;
                for &(w, jobs) in &self.hp_budget[v.index()] {
                    let cw = bounds[w.index()].wcet;
                    if jobs == 0 {
                        // Lower-priority pool entry: non-preemptive blocking
                        // is the single largest such execution.
                        blocking = blocking.max(cw);
                    } else {
                        finish = finish.saturating_add(cw.saturating_mul(jobs));
                    }
                }
                finish = finish.saturating_add(blocking);
                if finish.saturating_sub(release) > self.hyper {
                    // The safety argument only covers windows ≤ H.
                    finish = Time::MAX;
                    converged = false;
                }
            }
            max_finish[v.index()] = finish.max(release);
        }

        TaskWindows {
            min_start,
            max_finish,
            converged,
            outer_iters: 1,
        }
    }

    fn num_tasks(&self) -> usize {
        self.hsys.num_tasks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nominal_bounds, uniform_policies, HolisticAnalysis};
    use mcmap_hardening::{harden, HardeningPlan};
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };

    fn fixture(
        periods: &[u64],
        wcets: &[u64],
        same_pe: bool,
    ) -> (Architecture, HardenedSystem, Mapping) {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let graphs: Vec<TaskGraph> = periods
            .iter()
            .zip(wcets)
            .enumerate()
            .map(|(i, (&p, &w))| {
                TaskGraph::builder(format!("a{i}"), Time::from_ticks(p))
                    .criticality(Criticality::Droppable { service: 1.0 })
                    .task(Task::new(format!("t{i}")).with_uniform_exec(
                        1,
                        ExecBounds::new(Time::from_ticks(w / 2), Time::from_ticks(w)),
                    ))
                    .build()
                    .unwrap()
            })
            .collect();
        let apps = AppSet::new(graphs).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let placement: Vec<ProcId> = (0..hsys.num_tasks())
            .map(|i| ProcId::new(if same_pe { 0 } else { i % 2 }))
            .collect();
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        (arch, hsys, mapping)
    }

    #[test]
    fn coarse_dominates_holistic() {
        let (arch, hsys, mapping) = fixture(&[100, 200, 400], &[10, 20, 30], true);
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
        let coarse = CoarseAnalysis::new(&hsys, &arch, &mapping, policies.clone());
        let holistic = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
        let bounds = nominal_bounds(&hsys, &arch, &mapping);
        let wc = coarse.analyze(&bounds);
        let wh = holistic.analyze(&bounds);
        for i in 0..hsys.num_tasks() {
            assert!(
                wc.max_finish[i] >= wh.max_finish[i],
                "task {i}: coarse {} < holistic {}",
                wc.max_finish[i],
                wh.max_finish[i]
            );
            // Best cases agree (same interference-free pass).
            assert_eq!(wc.min_start[i], wh.min_start[i]);
        }
    }

    #[test]
    fn single_task_is_exact() {
        let (arch, hsys, mapping) = fixture(&[100], &[40], true);
        let coarse = CoarseAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let w = coarse.analyze(&nominal_bounds(&hsys, &arch, &mapping));
        assert!(w.converged);
        assert_eq!(w.max_finish[0], Time::from_ticks(40));
        assert_eq!(w.min_start[0], Time::ZERO);
    }

    #[test]
    fn overload_saturates_to_unschedulable() {
        // Lowest-priority task cannot fit a full hyperperiod of demand.
        let (arch, hsys, mapping) = fixture(&[10, 10, 10], &[8, 8, 8], true);
        let coarse = CoarseAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let w = coarse.analyze(&nominal_bounds(&hsys, &arch, &mapping));
        assert!(!w.converged);
        assert_eq!(w.max_finish[2], Time::MAX);
    }

    #[test]
    fn zero_wcet_tasks_pass_through() {
        let (arch, hsys, mapping) = fixture(&[100, 100], &[10, 10], true);
        let coarse = CoarseAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let mut bounds = nominal_bounds(&hsys, &arch, &mapping);
        bounds[1] = ExecBounds::ZERO;
        let w = coarse.analyze(&bounds);
        assert_eq!(w.max_finish[1], Time::ZERO);
    }

    #[test]
    fn non_preemptive_blocking_counted_once() {
        // High-priority short task blocked by one long lower-priority task.
        let (arch, hsys, mapping) = fixture(&[100, 400], &[10, 50], true);
        let coarse = CoarseAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityNonPreemptive),
        );
        let w = coarse.analyze(&nominal_bounds(&hsys, &arch, &mapping));
        // Task 0 (RM-highest): release 0 + C 10 + blocking 50 = 60.
        assert_eq!(w.max_finish[0], Time::from_ticks(60));
    }

    /// The headline pluggability demo: Algorithm 1 accepts this backend and
    /// keeps its safety ordering.
    #[test]
    fn algorithm1_runs_over_the_coarse_backend() {
        use mcmap_model::AppId;
        let (arch, hsys, mapping) = fixture(&[400, 400], &[30, 40], true);
        let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
        let bounds = nominal_bounds(&hsys, &arch, &mapping);
        let coarse = CoarseAnalysis::new(&hsys, &arch, &mapping, policies.clone());
        let holistic = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
        // Not using mcmap-core here (dependency direction); exercise the
        // trait through a generic helper instead.
        fn worst<B: SchedBackend>(b: &B, bounds: &[ExecBounds]) -> Vec<Time> {
            b.analyze(bounds).max_finish
        }
        let wc = worst(&coarse, &bounds);
        let wh = worst(&holistic, &bounds);
        for i in 0..hsys.num_tasks() {
            assert!(wc[i] >= wh[i]);
        }
        let _ = AppId::new(0);
    }
}
