//! Holistic best/worst-case scheduling analysis for distributed task graphs.
//!
//! This module is the library's stand-in for the analytical WCRT backend of
//! Kim et al. (DAC 2013, [9] in the paper). It computes, for every hardened
//! task, a safe earliest-start (`minStart`) and latest-finish (`maxFinish`)
//! bound under fixed-priority scheduling on each processor:
//!
//! * **Best case** — a single topological pass assuming zero interference:
//!   a task starts as soon as the best-case results of its predecessors have
//!   arrived (best-case execution, uncontended fabric transfers).
//! * **Worst case** — a holistic fixed point in the Tindell/Clark lineage:
//!   a task's worst-case release is the latest arrival over its
//!   predecessors' worst-case finishes plus channel delays; its local
//!   queueing delay comes from a busy-period response-time iteration where
//!   same-processor higher-priority tasks interfere with release jitter
//!   `J_j = latestRelease_j − earliestRelease_j`. Non-preemptive processors
//!   additionally suffer one blocking term from lower-priority tasks.
//!
//! The worst-case pass is monotone in the latest-release estimates (the
//! earliest releases are fixed by the exact best-case pass first), so the
//! iteration converges from below to the least fixed point, or is declared
//! divergent once any finish time exceeds a generous bound (64 hyperperiods).

use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{Architecture, ExecBounds, Time};
use std::sync::Mutex;

use crate::{hyperperiod, Mapping, SchedBackend, SchedPolicy, TaskWindows};

/// Maximum sweeps of the global worst-case fixed point.
const MAX_OUTER_ITERS: usize = 256;
/// Maximum iterations of a single response-time fixed point.
const MAX_RT_ITERS: usize = 4096;
/// Divergence bound, in hyperperiods.
const DIVERGENCE_HYPERPERIODS: u64 = 64;
/// Upper bound on pooled scratch states: one per plausible concurrent
/// caller; anything beyond that is dropped instead of hoarded.
const MAX_POOLED_SCRATCH: usize = 16;

/// Reusable iteration buffers of one worst-case fixed-point run.
///
/// The mixed-criticality analysis calls the backend once per transition
/// scenario of every candidate, so the intermediate `latest-release` and
/// best-case `min_finish` vectors are pooled on the analysis context and
/// fully re-initialized per run instead of being re-allocated. (The
/// `min_start`/`max_finish` vectors are the *output* and necessarily
/// allocated fresh — they are moved into the returned [`TaskWindows`].)
#[derive(Debug, Default)]
struct ScratchState {
    lr: Vec<Time>,
    min_finish: Vec<Time>,
}

/// Holistic fixed-priority analysis of one hardened system under one
/// mapping.
///
/// Construction precomputes the interference structure (per-processor task
/// lists, channel latencies); [`SchedBackend::analyze`] can then be called
/// many times with different execution-bound vectors, which is exactly the
/// access pattern of the mixed-criticality analysis.
///
/// # Examples
///
/// ```
/// use mcmap_hardening::{harden, HardeningPlan};
/// use mcmap_model::{AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task,
///     TaskGraph, Time};
/// use mcmap_sched::{nominal_bounds, uniform_policies, HolisticAnalysis, Mapping,
///     SchedBackend, SchedPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let arch = Architecture::builder()
///     .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
///     .build()?;
/// let g = TaskGraph::builder("g", Time::from_ticks(100))
///     .task(Task::new("a").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
///     .task(Task::new("b").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(20))))
///     .channel(0, 1, 0)
///     .build()?;
/// let apps = AppSet::new(vec![g])?;
/// let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch)?;
/// let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2])?;
/// let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
/// let analysis = HolisticAnalysis::new(&hsys, &arch, &mapping, policies);
/// let windows = analysis.analyze(&nominal_bounds(&hsys, &arch, &mapping));
/// // Pipeline a → b on one processor: b finishes at 30 (its producer is
/// // precedence-related and cannot interfere with b's busy window).
/// assert_eq!(windows.max_finish[1], Time::from_ticks(30));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HolisticAnalysis<'a> {
    hsys: &'a HardenedSystem,
    mapping: &'a Mapping,
    policies: Vec<SchedPolicy>,
    /// Incoming edges per task: `(source task, worst/best channel delay)`.
    in_edges: Vec<Vec<(HTaskId, Time)>>,
    /// Same-processor tasks that can preempt/delay each task (higher
    /// priority first). Derived once from the mapping.
    hp_interferers: Vec<Vec<HTaskId>>,
    /// Same-processor lower-or-equal-priority tasks (for non-preemptive
    /// blocking).
    lp_blockers: Vec<Vec<HTaskId>>,
    /// Period of each task (the owning application's period).
    period: Vec<Time>,
    /// Divergence bound.
    limit: Time,
    /// Pool of reusable iteration buffers (lock-per-run, not per-task).
    scratch: Mutex<Vec<ScratchState>>,
}

impl<'a> HolisticAnalysis<'a> {
    /// Builds the analysis context.
    ///
    /// # Panics
    ///
    /// Panics if `policies` does not cover every processor of the
    /// architecture.
    pub fn new(
        hsys: &'a HardenedSystem,
        arch: &'a Architecture,
        mapping: &'a Mapping,
        policies: Vec<SchedPolicy>,
    ) -> Self {
        assert_eq!(
            policies.len(),
            arch.num_processors(),
            "one policy per processor required"
        );
        let n = hsys.num_tasks();
        let fabric = arch.fabric();

        let mut in_edges: Vec<Vec<(HTaskId, Time)>> = vec![Vec::new(); n];
        for c in hsys.channels() {
            let delay = if mapping.proc_of(c.src) == mapping.proc_of(c.dst) {
                Time::ZERO
            } else {
                fabric.transfer_time(c.bytes)
            };
            in_edges[c.dst.index()].push((c.src, delay));
        }

        // Precedence refinement: a same-application ancestor of `v` always
        // completes before `v` releases (same instance), and its next
        // instance releases no earlier than the period — after `v`'s
        // deadline in the constrained-deadline model the library enforces.
        // Symmetrically a descendant cannot start before `v` finishes.
        // Neither can therefore occupy the processor during `v`'s busy
        // window, so precedence-related same-app tasks are excluded from
        // interference and blocking. (The resulting bound is safe whenever
        // the computed response stays within the deadline; beyond the
        // deadline the configuration is rejected anyway.)
        let related = reachability(hsys);
        let mut hp_interferers: Vec<Vec<HTaskId>> = vec![Vec::new(); n];
        let mut lp_blockers: Vec<Vec<HTaskId>> = vec![Vec::new(); n];
        for v in hsys.task_ids() {
            let pv = mapping.proc_of(v);
            for w in hsys.task_ids() {
                if w == v || mapping.proc_of(w) != pv {
                    continue;
                }
                if related[v.index()][w.index()] || related[w.index()][v.index()] {
                    continue;
                }
                if mapping.outranks(w, v) {
                    hp_interferers[v.index()].push(w);
                } else {
                    lp_blockers[v.index()].push(w);
                }
            }
        }

        let period = hsys.tasks().map(|(id, _)| hsys.app_of(id).period).collect();

        let limit = hyperperiod(hsys).saturating_mul(DIVERGENCE_HYPERPERIODS);

        HolisticAnalysis {
            hsys,
            mapping,
            policies,
            in_edges,
            hp_interferers,
            lp_blockers,
            period,
            limit,
            scratch: Mutex::new(Vec::new()),
        }
    }

    fn policy_of(&self, v: HTaskId) -> SchedPolicy {
        self.policies[self.mapping.proc_of(v).index()]
    }

    /// Exact best-case pass: earliest release and earliest finish assuming
    /// no interference and best-case execution everywhere. Writes into the
    /// caller's buffers, which are fully re-initialized.
    fn best_case_into(
        &self,
        bounds: &[ExecBounds],
        er: &mut Vec<Time>,
        min_finish: &mut Vec<Time>,
    ) {
        let n = self.hsys.num_tasks();
        er.clear();
        er.resize(n, Time::ZERO);
        min_finish.clear();
        min_finish.resize(n, Time::ZERO);
        for &v in self.hsys.topological_order() {
            let release = self.in_edges[v.index()]
                .iter()
                .map(|&(src, delay)| min_finish[src.index()].saturating_add(delay))
                .max()
                .unwrap_or(Time::ZERO);
            er[v.index()] = release;
            min_finish[v.index()] = release.saturating_add(bounds[v.index()].bcet);
        }
    }

    /// Busy-period response time of `v` (from its latest release), given the
    /// current latest-release estimates of the interferers.
    fn local_response(&self, v: HTaskId, bounds: &[ExecBounds], er: &[Time], lr: &[Time]) -> Time {
        let c = bounds[v.index()].wcet;
        if c.is_zero() {
            return Time::ZERO;
        }
        match self.policy_of(v) {
            SchedPolicy::FixedPriorityPreemptive => {
                let mut w = c;
                for _ in 0..MAX_RT_ITERS {
                    let mut total = c;
                    for &j in &self.hp_interferers[v.index()] {
                        let cj = bounds[j.index()].wcet;
                        if cj.is_zero() {
                            continue;
                        }
                        let jitter = lr[j.index()].saturating_sub(er[j.index()]);
                        let releases = w.saturating_add(jitter).div_ceil(self.period[j.index()]);
                        total = total.saturating_add(cj.saturating_mul(releases));
                    }
                    if total == w || total > self.limit {
                        return total;
                    }
                    w = total;
                }
                Time::MAX
            }
            SchedPolicy::FixedPriorityNonPreemptive => {
                let blocking = self.lp_blockers[v.index()]
                    .iter()
                    .map(|&j| bounds[j.index()].wcet)
                    .max()
                    .unwrap_or(Time::ZERO);
                let mut s = blocking;
                for _ in 0..MAX_RT_ITERS {
                    let mut total = blocking;
                    for &j in &self.hp_interferers[v.index()] {
                        let cj = bounds[j.index()].wcet;
                        if cj.is_zero() {
                            continue;
                        }
                        let jitter = lr[j.index()].saturating_sub(er[j.index()]);
                        // Start-time equation: jobs released in [0, s] delay
                        // the start, hence ⌊(s + J)/T⌋ + 1 releases.
                        let releases =
                            (s.saturating_add(jitter).ticks() / self.period[j.index()].ticks()) + 1;
                        total = total.saturating_add(cj.saturating_mul(releases));
                    }
                    if total == s || total > self.limit {
                        return total.saturating_add(c);
                    }
                    s = total;
                }
                Time::MAX
            }
        }
    }

    /// One full analysis run: pops a scratch state from the pool, iterates,
    /// and returns the buffers for reuse.
    fn run(&self, bounds: &[ExecBounds], seed: Option<&TaskWindows>) -> TaskWindows {
        assert_eq!(
            bounds.len(),
            self.hsys.num_tasks(),
            "one execution-bound entry per hardened task required"
        );
        let mut scratch = self
            .scratch
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        let windows = self.run_with(bounds, seed, &mut scratch);
        let mut pool = self.scratch.lock().expect("scratch pool poisoned");
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(scratch);
        }
        windows
    }

    /// The worst-case fixed point, optionally warm-started.
    ///
    /// Cold (`seed == None`) this is the classic iteration from
    /// `lr = er, max_finish = 0`. Warm-started, the latest releases begin
    /// at `max(er, seed.min_start)` and the finishes at `seed.max_finish`
    /// — valid whenever the seed came from a pointwise-contained bounds
    /// vector (see [`SchedBackend::analyze_from`]): the seed then lies at
    /// or below the least fixed point for `bounds`, and a monotone
    /// iteration started anywhere between the cold start and the least
    /// fixed point converges to exactly that same fixed point.
    fn run_with(
        &self,
        bounds: &[ExecBounds],
        seed: Option<&TaskWindows>,
        scratch: &mut ScratchState,
    ) -> TaskWindows {
        let n = self.hsys.num_tasks();
        let ScratchState { lr, min_finish } = scratch;
        let mut er = vec![Time::ZERO; n];
        self.best_case_into(bounds, &mut er, min_finish);

        let mut max_finish: Vec<Time> = vec![Time::ZERO; n];
        lr.clear();
        match seed {
            None => lr.extend_from_slice(&er),
            Some(s) => {
                max_finish.copy_from_slice(&s.max_finish);
                // Seed the latest releases at the value the seeded finishes
                // already imply: `lr[v] = max(er[v], arrival over seeded
                // predecessor finishes)`. The seed's finishes are at or
                // below the least fixed point for `bounds` (containment),
                // so this stays between the cold start and the fixed point
                // — and when the seed *is* the fixed point, the first sweep
                // is a pure verification pass.
                for (v, &e) in er.iter().enumerate() {
                    let arrival = self.in_edges[v]
                        .iter()
                        .map(|&(src, delay)| max_finish[src.index()].saturating_add(delay))
                        .max()
                        .unwrap_or(Time::ZERO);
                    lr.push(e.max(arrival));
                }
            }
        }

        let mut converged = false;
        let mut diverged = false;
        let mut outer_iters = 0usize;
        for _ in 0..MAX_OUTER_ITERS {
            outer_iters += 1;
            let mut changed = false;
            for &v in self.hsys.topological_order() {
                let release = self.in_edges[v.index()]
                    .iter()
                    .map(|&(src, delay)| max_finish[src.index()].saturating_add(delay))
                    .max()
                    .unwrap_or(Time::ZERO);
                let release = release.max(lr[v.index()]);
                let response = self.local_response(v, bounds, &er, lr);
                let finish = release.saturating_add(response);
                if release > lr[v.index()] || finish > max_finish[v.index()] {
                    changed = true;
                }
                lr[v.index()] = release.max(lr[v.index()]);
                max_finish[v.index()] = finish.max(max_finish[v.index()]);
            }
            if max_finish.iter().any(|&f| f > self.limit) {
                diverged = true;
                break;
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if diverged {
            // Diverged: saturate and bail out.
            for f in &mut max_finish {
                if *f > self.limit {
                    *f = Time::MAX;
                }
            }
            converged = false;
        }

        TaskWindows {
            min_start: er,
            max_finish,
            converged,
            outer_iters,
        }
    }
}

/// `related[a][b]` ⇔ there is a directed path `a → … → b`.
fn reachability(hsys: &HardenedSystem) -> Vec<Vec<bool>> {
    let n = hsys.num_tasks();
    let mut reach = vec![vec![false; n]; n];
    // Process in reverse topological order: a task reaches its successors
    // and everything they reach.
    for &v in hsys.topological_order().iter().rev() {
        for s in hsys.successors(v) {
            reach[v.index()][s.index()] = true;
            let (row_v, row_s) = split_rows(&mut reach, v.index(), s.index());
            for (r, &t) in row_v.iter_mut().zip(row_s.iter()) {
                *r |= t;
            }
        }
    }
    reach
}

/// Borrows two distinct rows of the matrix, the first mutably.
fn split_rows(m: &mut [Vec<bool>], a: usize, b: usize) -> (&mut Vec<bool>, &Vec<bool>) {
    assert_ne!(a, b, "graph validation rejects self-loops");
    if a < b {
        let (lo, hi) = m.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = m.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

impl SchedBackend for HolisticAnalysis<'_> {
    fn analyze(&self, bounds: &[ExecBounds]) -> TaskWindows {
        self.run(bounds, None)
    }

    fn analyze_from(&self, bounds: &[ExecBounds], seed: &TaskWindows) -> TaskWindows {
        // A diverged seed carries saturated finishes that are not a valid
        // lower bound of anything — run cold.
        if !seed.converged {
            return self.analyze(bounds);
        }
        let warm = self.run(bounds, Some(seed));
        if warm.converged {
            warm
        } else {
            // The warm iteration hit the divergence bound (or the sweep
            // budget). The cold run saturates at a *different* iterate, so
            // re-run cold to keep the bit-identical-windows contract; the
            // extra cost only hits unschedulable candidates, whose
            // iterates grow geometrically and bail out quickly.
            self.analyze(bounds)
        }
    }

    fn num_tasks(&self) -> usize {
        self.hsys.num_tasks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nominal_bounds, uniform_policies};
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Architecture, ExecBounds, Fabric, ProcId, ProcKind, Processor, Task, TaskGraph,
    };

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .fabric(Fabric::new(8))
            .build()
            .unwrap()
    }

    fn analyze_system(
        apps: &AppSet,
        arch: &Architecture,
        placement: Vec<ProcId>,
        policy: SchedPolicy,
    ) -> (HardenedSystem, TaskWindows) {
        let hsys = harden(apps, &HardeningPlan::unhardened(apps), arch).unwrap();
        let mapping = Mapping::new(&hsys, arch, placement).unwrap();
        let analysis = HolisticAnalysis::new(
            &hsys,
            arch,
            &mapping,
            uniform_policies(arch.num_processors(), policy),
        );
        let w = analysis.analyze(&nominal_bounds(&hsys, arch, &mapping));
        (hsys, w)
    }

    fn task(name: &str, bcet: u64, wcet: u64) -> Task {
        Task::new(name).with_uniform_exec(
            1,
            ExecBounds::new(Time::from_ticks(bcet), Time::from_ticks(wcet)),
        )
    }

    #[test]
    fn single_task_window_is_its_execution() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(task("a", 3, 7))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(1);
        let (_, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        assert!(w.converged);
        assert_eq!(w.min_start[0], Time::ZERO);
        assert_eq!(w.max_finish[0], Time::from_ticks(7));
    }

    #[test]
    fn pipeline_on_one_processor_serializes() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(task("a", 2, 10))
            .task(task("b", 3, 20))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(1);
        let (_, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0); 2],
            SchedPolicy::FixedPriorityPreemptive,
        );
        assert_eq!(w.min_start[1], Time::from_ticks(2));
        // The precedence refinement knows the producer cannot interfere
        // with its consumer's busy window: 10 + 20.
        assert_eq!(w.max_finish[1], Time::from_ticks(30));
    }

    #[test]
    fn cross_processor_channel_adds_fabric_delay() {
        let g = TaskGraph::builder("g", Time::from_ticks(1000))
            .task(task("a", 10, 10))
            .task(task("b", 5, 5))
            .channel(0, 1, 64) // 64 bytes / 8 B-per-tick = 8 ticks
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(2);
        let (_, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0), ProcId::new(1)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        assert_eq!(w.min_start[1], Time::from_ticks(18));
        assert_eq!(w.max_finish[1], Time::from_ticks(23));

        // Same-processor mapping pays no fabric delay; the producer is
        // precedence-related and does not interfere: 10 + 5 = 15.
        let (_, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0), ProcId::new(0)],
            SchedPolicy::FixedPriorityPreemptive,
        );
        assert_eq!(w.max_finish[1], Time::from_ticks(15));
    }

    #[test]
    fn preemptive_interference_counts_higher_priority_jobs() {
        // Two independent apps on one PE: fast (period 10, wcet 2) outranks
        // slow (period 100, wcet 10) under rate-monotonic priorities.
        let fast = TaskGraph::builder("fast", Time::from_ticks(10))
            .task(task("f", 2, 2))
            .build()
            .unwrap();
        let slow = TaskGraph::builder("slow", Time::from_ticks(100))
            .task(task("s", 10, 10))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![fast, slow]).unwrap();
        let arch = arch(1);
        let (_, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0); 2],
            SchedPolicy::FixedPriorityPreemptive,
        );
        // Classic RTA: R_s = 10 + ⌈R_s/10⌉·2 → R = 14 (10+2 preemptions... )
        // iteration: w0=10 → 10+2*1? ⌈10/10⌉=1 → 12 → ⌈12/10⌉=2 → 14 → ⌈14/10⌉=2 → 14.
        assert_eq!(w.max_finish[1], Time::from_ticks(14));
        // The fast task is undisturbed.
        assert_eq!(w.max_finish[0], Time::from_ticks(2));
    }

    #[test]
    fn non_preemptive_blocking_from_lower_priority() {
        let fast = TaskGraph::builder("fast", Time::from_ticks(50))
            .task(task("f", 2, 2))
            .build()
            .unwrap();
        let slow = TaskGraph::builder("slow", Time::from_ticks(100))
            .task(task("s", 30, 30))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![fast, slow]).unwrap();
        let arch = arch(1);
        let (_, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0); 2],
            SchedPolicy::FixedPriorityNonPreemptive,
        );
        // fast can be blocked by the running slow job: start ≤ 30, finish ≤ 32.
        assert_eq!(w.max_finish[0], Time::from_ticks(32));
    }

    #[test]
    fn zero_wcet_tasks_neither_execute_nor_interfere() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(task("a", 5, 5))
            .task(task("b", 5, 5))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(1);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 2]).unwrap();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(1, SchedPolicy::FixedPriorityPreemptive),
        );
        // Pin task a to [0,0] (as Algorithm 1 does for dropped tasks).
        let bounds = vec![
            ExecBounds::ZERO,
            ExecBounds::new(Time::from_ticks(5), Time::from_ticks(5)),
        ];
        let w = analysis.analyze(&bounds);
        assert_eq!(w.max_finish[0], Time::ZERO);
        assert_eq!(w.max_finish[1], Time::from_ticks(5));
    }

    #[test]
    fn overload_misses_deadlines() {
        // Two 0.8-utilization tasks on one PE: the response-time equation of
        // the lower-priority task converges (its interference rate is 0.8 <
        // 1) but far beyond the deadline.
        let a = TaskGraph::builder("a", Time::from_ticks(10))
            .task(task("x", 8, 8))
            .build()
            .unwrap();
        let b = TaskGraph::builder("b", Time::from_ticks(10))
            .task(task("y", 8, 8))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![a, b]).unwrap();
        let arch = arch(1);
        let (hsys, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0); 2],
            SchedPolicy::FixedPriorityPreemptive,
        );
        assert!(w.converged);
        // Fixed point of R = 8 + ⌈R/10⌉·8 is 40.
        assert_eq!(w.max_finish[1], Time::from_ticks(40));
        assert!(!w.all_deadlines_met(&hsys));
    }

    #[test]
    fn saturated_processor_diverges() {
        // Three 0.8-utilization tasks: the lowest-priority task faces an
        // interference rate of 1.6 ≥ 1 and the fixed point diverges.
        let mk = |name: &str| {
            TaskGraph::builder(name, Time::from_ticks(10))
                .task(task(name, 8, 8))
                .build()
                .unwrap()
        };
        let apps = AppSet::new(vec![mk("a"), mk("b"), mk("c")]).unwrap();
        let arch = arch(1);
        let (hsys, w) = analyze_system(
            &apps,
            &arch,
            vec![ProcId::new(0); 3],
            SchedPolicy::FixedPriorityPreemptive,
        );
        assert!(!w.converged);
        assert_eq!(w.max_finish[2], Time::MAX);
        assert!(!w.all_deadlines_met(&hsys));
    }

    #[test]
    fn replicated_task_waits_for_voter() {
        let g = TaskGraph::builder("g", Time::from_ticks(1000))
            .task(
                Task::new("a")
                    .with_uniform_exec(
                        1,
                        ExecBounds::new(Time::from_ticks(10), Time::from_ticks(10)),
                    )
                    .with_voting_overhead(Time::from_ticks(3)),
            )
            .task(task("b", 5, 5))
            .channel(0, 1, 0)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(3);
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(
            0,
            TaskHardening::active(vec![ProcId::new(1), ProcId::new(2)], ProcId::new(0)),
        );
        let hsys = harden(&apps, &plan, &arch).unwrap();
        // primary a → p0, replicas fixed p1/p2, voter fixed p0, b → p1.
        let placement: Vec<ProcId> = hsys
            .tasks()
            .map(|(_, t)| t.fixed_proc.unwrap_or(ProcId::new(0)))
            .collect();
        let mut placement = placement;
        let b_id = hsys.tasks().find(|(_, t)| t.name == "b").unwrap().0;
        placement[b_id.index()] = ProcId::new(1);
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(3, SchedPolicy::FixedPriorityPreemptive),
        );
        let w = analysis.analyze(&nominal_bounds(&hsys, &arch, &mapping));
        assert!(w.converged);
        let voter = hsys.voter_of(0).unwrap();
        // Voter can only finish after the copies (10) plus fan-in transfer
        // (1 byte → 1 tick from remote replicas) plus voting (3).
        assert!(w.max_finish[voter.index()] >= Time::from_ticks(13));
        // b starts after the voter's result arrives.
        assert!(w.min_start[b_id.index()] >= w.min_start[voter.index()]);
        assert!(w.max_finish[b_id.index()] >= w.max_finish[voter.index()]);
    }

    #[test]
    fn wider_bounds_never_shrink_windows() {
        // Monotonicity: inflating one task's wcet cannot reduce any finish.
        let g = TaskGraph::builder("g", Time::from_ticks(200))
            .task(task("a", 5, 10))
            .task(task("b", 5, 10))
            .task(task("c", 5, 10))
            .channel(0, 2, 8)
            .channel(1, 2, 8)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(2);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(
            &hsys,
            &arch,
            vec![ProcId::new(0), ProcId::new(0), ProcId::new(1)],
        )
        .unwrap();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let base = nominal_bounds(&hsys, &arch, &mapping);
        let w1 = analysis.analyze(&base);
        let mut inflated = base.clone();
        inflated[0].wcet = inflated[0].wcet * 3;
        let w2 = analysis.analyze(&inflated);
        for i in 0..hsys.num_tasks() {
            assert!(w2.max_finish[i] >= w1.max_finish[i]);
            assert!(w2.min_start[i] == w1.min_start[i]); // bcet untouched
        }
    }

    /// Fixture shared by the warm-start tests: three cross-coupled apps on
    /// two PEs with real interference, nominal vs. ×3-inflated bounds.
    fn warm_fixture() -> (
        HardenedSystem,
        Architecture,
        crate::Mapping,
        Vec<ExecBounds>,
        Vec<ExecBounds>,
    ) {
        let mk = |name: &str, period: u64, b: u64, w: u64| {
            TaskGraph::builder(name, Time::from_ticks(period))
                .task(task(&format!("{name}0"), b, w))
                .task(task(&format!("{name}1"), b, w))
                .channel(0, 1, 16)
                .build()
                .unwrap()
        };
        let apps = AppSet::new(vec![
            mk("a", 400, 10, 30),
            mk("b", 600, 20, 40),
            mk("c", 1200, 15, 50),
        ])
        .unwrap();
        let arch = arch(2);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let placement = vec![
            ProcId::new(0),
            ProcId::new(1),
            ProcId::new(0),
            ProcId::new(1),
            ProcId::new(1),
            ProcId::new(0),
        ];
        let mapping = Mapping::new(&hsys, &arch, placement).unwrap();
        let narrow = nominal_bounds(&hsys, &arch, &mapping);
        let wide: Vec<ExecBounds> = narrow
            .iter()
            .map(|b| ExecBounds::new(b.bcet, b.wcet * 3))
            .collect();
        (hsys, arch, mapping, narrow, wide)
    }

    #[test]
    fn warm_start_reproduces_the_cold_fixed_point_exactly() {
        let (hsys, arch, mapping, narrow, wide) = warm_fixture();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let seed = analysis.analyze(&narrow);
        assert!(seed.converged);
        let cold = analysis.analyze(&wide);
        let warm = analysis.analyze_from(&wide, &seed);
        assert_eq!(warm.min_start, cold.min_start);
        assert_eq!(warm.max_finish, cold.max_finish);
        assert_eq!(warm.converged, cold.converged);
        assert!(
            warm.outer_iters <= cold.outer_iters,
            "warm {} > cold {}",
            warm.outer_iters,
            cold.outer_iters
        );
    }

    #[test]
    fn warm_start_from_identical_bounds_converges_in_one_sweep() {
        let (hsys, arch, mapping, narrow, _) = warm_fixture();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let seed = analysis.analyze(&narrow);
        let warm = analysis.analyze_from(&narrow, &seed);
        assert_eq!(warm.max_finish, seed.max_finish);
        assert_eq!(
            warm.outer_iters, 1,
            "a fixed-point seed needs exactly the verification sweep"
        );
    }

    #[test]
    fn warm_start_with_diverged_seed_falls_back_to_cold() {
        // Saturated processor from `saturated_processor_diverges`.
        let mk = |name: &str| {
            TaskGraph::builder(name, Time::from_ticks(10))
                .task(task(name, 8, 8))
                .build()
                .unwrap()
        };
        let apps = AppSet::new(vec![mk("a"), mk("b"), mk("c")]).unwrap();
        let arch = arch(1);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0); 3]).unwrap();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(1, SchedPolicy::FixedPriorityPreemptive),
        );
        let bounds = nominal_bounds(&hsys, &arch, &mapping);
        let cold = analysis.analyze(&bounds);
        assert!(!cold.converged);
        // Both a diverged seed and a divergent warm run must reproduce the
        // cold result bit-for-bit (including the saturation pattern).
        let warm = analysis.analyze_from(&bounds, &cold);
        assert_eq!(warm, cold);
    }

    #[test]
    fn scratch_reuse_keeps_repeated_analyses_identical() {
        let (hsys, arch, mapping, narrow, wide) = warm_fixture();
        let analysis = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(2, SchedPolicy::FixedPriorityPreemptive),
        );
        let first_narrow = analysis.analyze(&narrow);
        let first_wide = analysis.analyze(&wide);
        for _ in 0..5 {
            // Alternate bound vectors so stale buffer contents would show.
            assert_eq!(analysis.analyze(&wide), first_wide);
            assert_eq!(analysis.analyze(&narrow), first_narrow);
        }
    }

    #[test]
    #[should_panic(expected = "one policy per processor")]
    fn wrong_policy_count_panics() {
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(task("a", 1, 1))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let arch = arch(2);
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        let _ = HolisticAnalysis::new(
            &hsys,
            &arch,
            &mapping,
            uniform_policies(1, SchedPolicy::default()),
        );
    }
}
