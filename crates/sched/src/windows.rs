//! Per-task scheduling windows — the output of the `sched` backend.

use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{lcm_time, AppId, Architecture, ExecBounds, Time};

use crate::Mapping;

/// Best-case start and worst-case finish times for every hardened task,
/// relative to the simultaneous release of all applications at time 0.
///
/// This is exactly the `[minStart_v, maxFinish_v]` pair Algorithm 1 of the
/// paper extracts from its `sched` backend (line 8).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskWindows {
    /// Earliest possible start of each task's execution.
    pub min_start: Vec<Time>,
    /// Latest possible completion of each task ([`Time::MAX`] when the
    /// analysis diverged).
    pub max_finish: Vec<Time>,
    /// `false` when the fixed-point iteration diverged; all affected
    /// `max_finish` entries saturate at [`Time::MAX`] and the system must be
    /// treated as unschedulable.
    pub converged: bool,
    /// Fixed-point iterations the backend performed to produce these
    /// windows (1 for single-pass backends). Deterministic analysis-effort
    /// metric surfaced through the observability layer.
    pub outer_iters: usize,
}

impl TaskWindows {
    /// The window of one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn window(&self, id: HTaskId) -> (Time, Time) {
        (self.min_start[id.index()], self.max_finish[id.index()])
    }

    /// Worst-case response time of an application: the latest completion of
    /// any of its member tasks, measured from the application release.
    pub fn app_wcrt(&self, hsys: &HardenedSystem, app: AppId) -> Time {
        hsys.apps()[app.index()]
            .members
            .iter()
            .map(|&id| self.max_finish[id.index()])
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// `true` when every application finishes within its deadline.
    pub fn all_deadlines_met(&self, hsys: &HardenedSystem) -> bool {
        self.converged
            && hsys
                .apps()
                .iter()
                .all(|happ| self.app_wcrt(hsys, happ.app) <= happ.deadline)
    }

    /// Maximum completion time over the whole system.
    pub fn makespan(&self) -> Time {
        self.max_finish.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// The pluggable schedulability backend consumed by the mixed-criticality
/// analysis (the paper's `sched` function).
///
/// Implementations derive safe `[minStart, maxFinish]` windows from a vector
/// of per-task execution bounds. Algorithm 1 calls `analyze` repeatedly with
/// *modified* bounds (passive replicas pinned to `[0, 0]`, droppable tasks
/// widened to `[0, wcet]`, critical tasks inflated per Eq. (1)), so the
/// bounds are a parameter rather than read from the system model.
pub trait SchedBackend {
    /// Computes scheduling windows under the given per-task execution
    /// bounds (indexed by [`HTaskId::index`]).
    fn analyze(&self, bounds: &[ExecBounds]) -> TaskWindows;

    /// Warm-started variant of [`analyze`](Self::analyze): computes the
    /// **same windows** as `analyze(bounds)` but may seed its fixed point
    /// from `seed` to converge in fewer iterations.
    ///
    /// # Contract
    ///
    /// The caller must guarantee that `seed` is the result of analyzing a
    /// bounds vector that is *pointwise contained* in `bounds` (for every
    /// task, `seed`'s `[bcet, wcet]` interval lies inside the one in
    /// `bounds`). Under that precondition a monotone backend's least fixed
    /// point for `bounds` lies at or above `seed`, so starting there cannot
    /// change the result — only the iteration count ([`TaskWindows::
    /// outer_iters`] may be smaller than the cold run's).
    ///
    /// The default implementation ignores the seed and runs cold, which is
    /// always correct; single-pass backends have nothing to warm.
    fn analyze_from(&self, bounds: &[ExecBounds], seed: &TaskWindows) -> TaskWindows {
        let _ = seed;
        self.analyze(bounds)
    }

    /// Number of tasks this backend analyzes (the required bounds length).
    fn num_tasks(&self) -> usize;
}

/// Resolves the nominal execution bounds of every hardened task on its
/// mapped processor. This is the bounds vector for the *normal* system state
/// before Algorithm 1 applies its per-state modifications.
///
/// # Panics
///
/// Panics if a task is mapped to a processor whose kind it cannot run on —
/// [`Mapping::new`](crate::Mapping::new) prevents such mappings.
pub fn nominal_bounds(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
) -> Vec<ExecBounds> {
    hsys.tasks()
        .map(|(id, t)| {
            let kind = arch.processor(mapping.proc_of(id)).kind;
            t.nominal_bounds(kind)
                .unwrap_or_else(|| panic!("task {id} cannot run on its mapped processor"))
        })
        .collect()
}

/// The hyperperiod of a hardened system: the least common multiple of all
/// application periods. The mixed-criticality protocol returns the system to
/// the normal state at each hyperperiod boundary (§3).
pub fn hyperperiod(hsys: &HardenedSystem) -> Time {
    hsys.apps()
        .iter()
        .map(|a| a.period)
        .fold(Time::from_ticks(1), lcm_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan};
    use mcmap_model::{AppSet, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph};

    fn fixture() -> (Architecture, HardenedSystem, Mapping) {
        let arch = Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap();
        let a =
            TaskGraph::builder("a", Time::from_ticks(40))
                .task(Task::new("a0").with_uniform_exec(
                    1,
                    ExecBounds::new(Time::from_ticks(2), Time::from_ticks(4)),
                ))
                .build()
                .unwrap();
        let b =
            TaskGraph::builder("b", Time::from_ticks(60))
                .task(Task::new("b0").with_uniform_exec(
                    1,
                    ExecBounds::new(Time::from_ticks(3), Time::from_ticks(6)),
                ))
                .build()
                .unwrap();
        let apps = AppSet::new(vec![a, b]).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0), ProcId::new(1)]).unwrap();
        (arch, hsys, mapping)
    }

    #[test]
    fn nominal_bounds_follow_mapping_kind() {
        let (arch, hsys, mapping) = fixture();
        let bounds = nominal_bounds(&hsys, &arch, &mapping);
        assert_eq!(bounds.len(), 2);
        assert_eq!(
            bounds[0],
            ExecBounds::new(Time::from_ticks(2), Time::from_ticks(4))
        );
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        let (_, hsys, _) = fixture();
        assert_eq!(hyperperiod(&hsys), Time::from_ticks(120));
    }

    #[test]
    fn windows_queries() {
        let (_, hsys, _) = fixture();
        let w = TaskWindows {
            min_start: vec![Time::ZERO, Time::from_ticks(1)],
            max_finish: vec![Time::from_ticks(10), Time::from_ticks(30)],
            converged: true,
            outer_iters: 1,
        };
        assert_eq!(
            w.window(HTaskId::new(1)),
            (Time::from_ticks(1), Time::from_ticks(30))
        );
        assert_eq!(w.app_wcrt(&hsys, AppId::new(0)), Time::from_ticks(10));
        assert_eq!(w.app_wcrt(&hsys, AppId::new(1)), Time::from_ticks(30));
        assert_eq!(w.makespan(), Time::from_ticks(30));
        assert!(w.all_deadlines_met(&hsys));
    }

    #[test]
    fn deadline_miss_detected() {
        let (_, hsys, _) = fixture();
        let w = TaskWindows {
            min_start: vec![Time::ZERO; 2],
            max_finish: vec![Time::from_ticks(50), Time::from_ticks(10)],
            converged: true,
            outer_iters: 1,
        };
        // App 0 deadline is 40 < 50.
        assert!(!w.all_deadlines_met(&hsys));
    }

    #[test]
    fn diverged_windows_never_meet_deadlines() {
        let (_, hsys, _) = fixture();
        let w = TaskWindows {
            min_start: vec![Time::ZERO; 2],
            max_finish: vec![Time::from_ticks(1), Time::from_ticks(1)],
            converged: false,
            outer_iters: 1,
        };
        assert!(!w.all_deadlines_met(&hsys));
    }
}
