//! # mcmap-sched
//!
//! The schedulability backend (`sched` in the paper's Algorithm 1):
//! best-case start / worst-case finish analysis for hardened task graphs
//! mapped onto a fixed-priority MPSoC.
//!
//! The paper plugs an external analytical method (Kim et al., DAC 2013) into
//! its wrapper; any backend producing safe `[minStart, maxFinish]` windows
//! works. This crate provides [`HolisticAnalysis`], a holistic offset/jitter
//! fixed-point analysis in the Tindell/Clark lineage supporting preemptive
//! and non-preemptive fixed-priority processors and bandwidth-limited fabric
//! transfers, behind the [`SchedBackend`] trait the mixed-criticality
//! analysis consumes.
//!
//! # Examples
//!
//! See [`HolisticAnalysis`] for an end-to-end example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod holistic;
mod mapping;
mod windows;

pub use coarse::CoarseAnalysis;
pub use holistic::HolisticAnalysis;
pub use mapping::{
    deadline_monotonic_priorities, nominal_utilization, rate_monotonic_priorities,
    uniform_policies, MapError, Mapping, SchedPolicy,
};
pub use windows::{hyperperiod, nominal_bounds, SchedBackend, TaskWindows};
