//! Runtime fault-reaction layer over an operating-point portfolio.
//!
//! The design-time side of this workspace (`mcmap-core`) produces a
//! [`Portfolio`](mcmap_core::Portfolio) of analyzed operating points;
//! this crate is the run-time side that consumes it, in two halves:
//!
//! * [`RuntimeManager`] — a deterministic mode-switch controller. It
//!   consumes fault events and load changes (as produced by
//!   `mcmap-sim`'s discrete-event engine) and walks a graceful
//!   degradation ladder: under fault pressure it first drops
//!   LO-criticality applications *within* the current operating point
//!   (cheapest service first), escalates to a lower-service point only
//!   when the ladder is exhausted, and re-admits in reverse order once
//!   the system has been quiet long enough. A permanent processor loss
//!   invalidates every point that maps work onto the dead processor and
//!   forces an immediate switch to the best surviving point. Every
//!   transition emits an obs mark (`runtime.switch`) and telemetry
//!   (`runtime.switch` counters, `runtime.degraded_apps` gauge,
//!   `runtime.time_in_mode_ticks` histogram).
//!
//! * [`run_campaign`] — a seeded Monte-Carlo validation campaign: the
//!   refutation harness for the static analysis. Every fault profile
//!   within the hardening coverage is simulated against every operating
//!   point and the observed response times are checked against the
//!   analyzed WCRT bounds; any excess is a structured [`Violation`].
//!   Campaigns run on the `mcmap-eval` worker pool (bit-identical
//!   summaries for any thread count), checkpoint at chunk boundaries via
//!   the `mcmap-resilience` sealed-envelope machinery, and honor the
//!   cooperative stop flag so a SIGTERM mid-campaign resumes exactly.
//!
//! [`run_reaction`] closes the loop for benchmarking: it drives the
//! manager from actual simulations hyperperiod by hyperperiod, measuring
//! switch latency (fault injection → the mode-switch boundary) and
//! re-checking bounds in every visited mode.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod manager;

pub use campaign::{
    read_campaign_checkpoint, run_campaign, CampaignCheckpoint, CampaignConfig, CampaignSummary,
    PointValidation, Violation,
};
pub use manager::{
    run_reaction, ReactionConfig, ReactionReport, RuntimeConfig, RuntimeEvent, RuntimeManager,
    Transition,
};
