//! Seeded Monte-Carlo validation campaigns over a materialized portfolio.
//!
//! A campaign is the refutation harness for the static analysis: for
//! every operating point, simulate `profiles` independent seeded fault
//! profiles (one worst-case-execution hyperperiod each) and check every
//! observed response time against the point's analyzed WCRT bound. Only
//! runs *within the hardening coverage* carry the promise — a profile
//! whose post-masking output was corrupted ([`unsafe_instances`] > 0)
//! exceeded the configured masking budget and is counted but not
//! bound-checked — and dropped applications carry no promise at all.
//!
//! The campaign is deterministic end to end: profile `i` simulates with
//! `seed + i` on every point, the work fans out on the `mcmap-eval`
//! order-preserving pool (bit-identical summaries for any `threads`),
//! and progress checkpoints at fixed chunk boundaries through the
//! `mcmap-resilience` sealed envelope, so a SIGTERM-interrupted campaign
//! resumes into the exact summary the uninterrupted run would have
//! produced.
//!
//! [`unsafe_instances`]: mcmap_sim::SimResult::unsafe_instances

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mcmap_core::MaterializedPoint;
use mcmap_model::{AppId, Architecture, Time};
use mcmap_obs::{parse_json, Json, Recorder, Value};
use mcmap_resilience::{atomic_write_rotating, backup_path, seal, unseal, ResilienceError};
use mcmap_sched::SchedPolicy;
use mcmap_sim::{ExecModel, RandomFaults, SimConfig, Simulator};
use mcmap_telemetry::{Class, Registry};

/// Envelope kind tag for campaign checkpoints.
const KIND: &str = "sim-campaign";

/// Detailed violations kept in the summary (the count is always exact).
const MAX_VIOLATION_DETAIL: usize = 64;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fault profiles simulated per operating point.
    pub profiles: u64,
    /// Base seed; profile `i` uses `seed + i` on every point.
    pub seed: u64,
    /// Fault-probability boost applied to every profile (raw SEU rates
    /// would need billions of profiles to exercise a single fault).
    pub boost: f64,
    /// Worker threads (0 = one per core; any value yields bit-identical
    /// summaries).
    pub threads: usize,
    /// Hyperperiods simulated per profile.
    pub hyperperiods: u64,
    /// Profiles per checkpoint slice. Checkpoints and stop-flag checks
    /// happen at multiples of this, so it is also the resume granularity.
    pub chunk: u64,
    /// Checkpoint file. `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Resume from [`CampaignConfig::checkpoint`] when it holds a
    /// matching campaign; refuse (rather than silently restart) on a
    /// fingerprint mismatch.
    pub resume: bool,
    /// Cooperative stop flag (SIGTERM/SIGINT): checked at every chunk
    /// boundary; when raised the campaign checkpoints and returns a
    /// summary marked `interrupted`.
    pub stop: Option<Arc<AtomicBool>>,
    /// Deterministic interruption for tests: stop after exactly this many
    /// chunks, as if the stop flag had been raised there.
    pub stop_after_chunks: Option<u64>,
    /// Obs recorder (`validate.campaign` span, per-chunk progress).
    pub obs: Recorder,
    /// Telemetry registry (`validate.*` counters).
    pub telemetry: Registry,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            profiles: 1000,
            seed: 0xC0FFEE,
            boost: 1e3,
            threads: 0,
            hyperperiods: 1,
            chunk: 250,
            checkpoint: None,
            resume: false,
            stop: None,
            stop_after_chunks: None,
            obs: Recorder::default(),
            telemetry: Registry::default(),
        }
    }
}

/// One observed-over-bound excess — a refutation of the analysis (or of
/// the simulator), never an expected outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Operating-point index.
    pub point: usize,
    /// Fault-profile index (its seed is `campaign seed + profile`).
    pub profile: u64,
    /// The application whose bound was exceeded.
    pub app: AppId,
    /// Simulated worst response time.
    pub observed: Time,
    /// Analyzed WCRT bound.
    pub bound: Time,
}

impl Violation {
    /// Renders the structured diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "VIOLATION point={} profile={} app={} observed={} bound={} excess={}",
            self.point,
            self.profile,
            self.app.index(),
            self.observed.ticks(),
            self.bound.ticks(),
            self.observed.saturating_sub(self.bound).ticks(),
        )
    }
}

/// Per-point validation aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointValidation {
    /// Profiles simulated within the hardening coverage.
    pub covered: u64,
    /// Profiles beyond coverage (some masking budget exhausted); counted,
    /// not bound-checked.
    pub beyond_coverage: u64,
    /// Profiles with at least one detected fault (critical-state entry).
    pub faulty: u64,
    /// Per application: worst observed response time over all covered
    /// profiles ([`Time::ZERO`] when the app never completed, e.g. it is
    /// dropped by the point).
    pub observed_max: Vec<Time>,
    /// Per application: the analyzed bound being validated.
    pub bound: Vec<Time>,
    /// Bound violations in covered profiles (must be zero).
    pub violations: u64,
}

impl PointValidation {
    /// Minimum slack (bound − worst observation) over the applications
    /// that carry a finite bound and completed at least once; `None` when
    /// no application qualifies.
    pub fn min_slack(&self) -> Option<Time> {
        self.observed_max
            .iter()
            .zip(&self.bound)
            .filter(|(obs, b)| **b != Time::MAX && !obs.is_zero())
            .map(|(obs, b)| b.saturating_sub(*obs))
            .min()
    }
}

/// The campaign outcome. Everything in here is deterministic (seeded
/// simulation, order-preserving merge), so two runs of the same
/// configuration — at any thread count, interrupted or not — render the
/// same text and JSON byte for byte.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Base seed.
    pub seed: u64,
    /// Fault boost.
    pub boost: f64,
    /// Profiles requested per point.
    pub profiles: u64,
    /// Profiles completed per point (< `profiles` when interrupted).
    pub done: u64,
    /// Per-point aggregates, portfolio order.
    pub points: Vec<PointValidation>,
    /// Detailed violations (capped at [`MAX_VIOLATION_DETAIL`]; the
    /// per-point `violations` counters are exact).
    pub violations: Vec<Violation>,
    /// `true` when the stop flag ended the campaign early.
    pub interrupted: bool,
    /// Profiles restored from a checkpoint rather than simulated.
    pub resumed_from: Option<u64>,
}

impl CampaignSummary {
    /// Total bound violations across all points.
    pub fn total_violations(&self) -> u64 {
        self.points.iter().map(|p| p.violations).sum()
    }

    /// Total simulation runs performed (or restored).
    pub fn total_runs(&self) -> u64 {
        self.done * self.points.len() as u64
    }

    /// Renders the deterministic text summary (one header, one line per
    /// point, then any violation details).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign: {} profiles/point x {} points (seed {}, boost {:e}){}\n",
            self.done,
            self.points.len(),
            self.seed,
            self.boost,
            if self.interrupted {
                format!(" [interrupted at {}/{}]", self.done, self.profiles)
            } else {
                String::new()
            },
        ));
        out.push_str("point  covered  beyond  faulty  violations  min-slack\n");
        for (i, p) in self.points.iter().enumerate() {
            let slack = match p.min_slack() {
                Some(s) => s.ticks().to_string(),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:>5}  {:>7}  {:>6}  {:>6}  {:>10}  {:>9}\n",
                i, p.covered, p.beyond_coverage, p.faulty, p.violations, slack
            ));
        }
        for v in &self.violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        out
    }

    /// Renders the deterministic JSON summary.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"seed\":{},\"boost_bits\":{},\"profiles\":{},\"done\":{},\"interrupted\":{},",
            self.seed,
            self.boost.to_bits(),
            self.profiles,
            self.done,
            self.interrupted
        ));
        out.push_str(&format!(
            "\"violations\":{},\"points\":[",
            self.total_violations()
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"covered\":{},\"beyond_coverage\":{},\"faulty\":{},\"violations\":{},",
                p.covered, p.beyond_coverage, p.faulty, p.violations
            ));
            out.push_str("\"min_slack\":");
            match p.min_slack() {
                Some(s) => out.push_str(&s.ticks().to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"observed_max\":[");
            for (j, t) in p.observed_max.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&t.ticks().to_string());
            }
            out.push_str("],\"bound\":[");
            for (j, t) in p.bound.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&t.ticks().to_string());
            }
            out.push_str("]}");
        }
        out.push_str("],\"violation_detail\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"point\":{},\"profile\":{},\"app\":{},\"observed\":{},\"bound\":{}}}",
                v.point,
                v.profile,
                v.app.index(),
                v.observed.ticks(),
                v.bound.ticks()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// A campaign checkpoint: the accumulated aggregates at a chunk boundary
/// plus the fingerprint that guards resumption.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    /// Fingerprint of the campaign inputs (seed, boost, profile count,
    /// chunking, and every point's bounds/dropped set/placement).
    pub fingerprint: u64,
    /// Profiles completed per point.
    pub done: u64,
    /// Per-point aggregates at the boundary.
    pub points: Vec<PointValidation>,
    /// Detailed violations at the boundary.
    pub violations: Vec<Violation>,
}

impl CampaignCheckpoint {
    /// Serializes to the sealed envelope byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"fingerprint\":{},\"done\":{},\"points\":[",
            self.fingerprint, self.done
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"covered\":{},\"beyond\":{},\"faulty\":{},\"violations\":{},\"observed\":[",
                p.covered, p.beyond_coverage, p.faulty, p.violations
            ));
            for (j, t) in p.observed_max.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&t.ticks().to_string());
            }
            out.push_str("],\"bound\":[");
            for (j, t) in p.bound.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&t.ticks().to_string());
            }
            out.push_str("]}");
        }
        out.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{},{},{},{}]",
                v.point,
                v.profile,
                v.app.index(),
                v.observed.ticks(),
                v.bound.ticks()
            ));
        }
        out.push_str("]}");
        seal(KIND, out.as_bytes())
    }

    /// Deserializes from sealed envelope bytes (`path` for diagnostics).
    ///
    /// # Errors
    ///
    /// Returns a corruption-class [`ResilienceError`] on envelope or
    /// schema mismatch.
    pub fn from_bytes(path: &Path, bytes: &[u8]) -> Result<Self, ResilienceError> {
        let payload = unseal(KIND, path, bytes)?;
        let text = std::str::from_utf8(&payload).map_err(|_| malformed(path, "not UTF-8"))?;
        let root = parse_json(text).map_err(|e| malformed(path, format!("invalid JSON: {e}")))?;
        let fingerprint = field_u64(path, &root, "fingerprint")?;
        let done = field_u64(path, &root, "done")?;
        let mut points = Vec::new();
        for p in field_arr(path, &root, "points")? {
            points.push(PointValidation {
                covered: field_u64(path, p, "covered")?,
                beyond_coverage: field_u64(path, p, "beyond")?,
                faulty: field_u64(path, p, "faulty")?,
                violations: field_u64(path, p, "violations")?,
                observed_max: time_list(path, p, "observed")?,
                bound: time_list(path, p, "bound")?,
            });
        }
        let mut violations = Vec::new();
        for v in field_arr(path, &root, "violations")? {
            let row: Vec<u64> = match v {
                Json::Arr(items) => items
                    .iter()
                    .map(|x| x.as_u64().ok_or_else(|| malformed(path, "violation row")))
                    .collect::<Result<_, _>>()?,
                _ => return Err(malformed(path, "violation: expected array")),
            };
            if row.len() != 5 {
                return Err(malformed(path, "violation: expected 5 fields"));
            }
            violations.push(Violation {
                point: row[0] as usize,
                profile: row[1],
                app: AppId::new(row[2] as usize),
                observed: Time::from_ticks(row[3]),
                bound: Time::from_ticks(row[4]),
            });
        }
        Ok(CampaignCheckpoint {
            fingerprint,
            done,
            points,
            violations,
        })
    }
}

/// Reads the campaign checkpoint at `path`, falling back to
/// `<path>.bak` when the primary is corrupt. Returns the checkpoint and
/// whether the backup was used.
///
/// # Errors
///
/// Propagates the primary's error when there is no usable backup.
pub fn read_campaign_checkpoint(
    path: &Path,
) -> Result<(CampaignCheckpoint, bool), ResilienceError> {
    let read = |p: &Path| -> Result<CampaignCheckpoint, ResilienceError> {
        let bytes = std::fs::read(p).map_err(|e| ResilienceError::io(p, "read", e))?;
        CampaignCheckpoint::from_bytes(p, &bytes)
    };
    match read(path) {
        Ok(c) => Ok((c, false)),
        Err(primary) if primary.is_corruption() => match read(&backup_path(path)) {
            Ok(c) => Ok((c, true)),
            Err(_) => Err(primary),
        },
        Err(e) => Err(e),
    }
}

/// Runs (or resumes) a validation campaign over a materialized portfolio.
///
/// # Errors
///
/// Returns [`ResilienceError`] when checkpoint I/O fails or a resume is
/// attempted against a checkpoint from a different campaign
/// (fingerprint mismatch).
///
/// # Panics
///
/// Panics when `points` is empty or `policies` does not match the
/// architecture's processor count (same contract as
/// [`Simulator::new`]).
pub fn run_campaign(
    points: &[MaterializedPoint],
    arch: &Architecture,
    policies: &[SchedPolicy],
    cfg: &CampaignConfig,
) -> Result<CampaignSummary, ResilienceError> {
    assert!(!points.is_empty(), "a campaign needs at least one point");
    let fingerprint = campaign_fingerprint(points, cfg);
    let num_apps = points[0].app_wcrt.len();

    let mut acc: Vec<PointValidation> = points
        .iter()
        .map(|p| PointValidation {
            covered: 0,
            beyond_coverage: 0,
            faulty: 0,
            observed_max: vec![Time::ZERO; num_apps],
            bound: p.app_wcrt.clone(),
            violations: 0,
        })
        .collect();
    let mut violations: Vec<Violation> = Vec::new();
    let mut done: u64 = 0;
    let mut resumed_from = None;

    if cfg.resume {
        let path = cfg.checkpoint.as_deref().ok_or_else(|| {
            malformed(Path::new("<campaign>"), "--resume needs a checkpoint path")
        })?;
        if path.exists() {
            let (ckpt, recovered) = read_campaign_checkpoint(path)?;
            if ckpt.fingerprint != fingerprint {
                return Err(malformed(
                    path,
                    format!(
                        "campaign fingerprint mismatch: checkpoint={:016x} current={:016x} \
                         (different portfolio, seed, boost, or profile count)",
                        ckpt.fingerprint, fingerprint
                    ),
                ));
            }
            if recovered {
                cfg.obs.mark("resilience.recover", &[]);
            }
            acc = ckpt.points;
            violations = ckpt.violations;
            done = ckpt.done;
            resumed_from = Some(done);
        }
    }

    let span = cfg.obs.span(
        "validate.campaign",
        &[
            ("points", Value::U64(points.len() as u64)),
            ("profiles", Value::U64(cfg.profiles)),
        ],
    );
    let profiles_counter = cfg
        .telemetry
        .enabled()
        .then(|| cfg.telemetry.counter("validate.profiles", Class::Det));
    let violations_counter = cfg
        .telemetry
        .enabled()
        .then(|| cfg.telemetry.counter("validate.violations", Class::Det));

    let sims: Vec<Simulator<'_>> = points
        .iter()
        .map(|p| Simulator::new(&p.hsys, arch, &p.mapping, policies.to_vec()))
        .collect();

    // One work item per (point, profile); outcome index `point` is
    // implicit in input order, so the order-preserving pool's output
    // merges deterministically whatever the thread count.
    struct Outcome {
        observed: Vec<Time>,
        faulty: bool,
        covered: bool,
        violations: Vec<(usize, Time, Time)>,
    }
    let chunk = cfg.chunk.max(1);
    let mut interrupted = false;
    let mut chunks_run: u64 = 0;
    while done < cfg.profiles {
        if cfg.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst))
            || cfg.stop_after_chunks.is_some_and(|n| chunks_run >= n)
        {
            interrupted = true;
            break;
        }
        chunks_run += 1;
        let end = (done + chunk).min(cfg.profiles);
        let items: Vec<(usize, u64)> = (done..end)
            .flat_map(|i| (0..points.len()).map(move |p| (p, i)))
            .collect();
        let outcomes = mcmap_eval::parallel_map(&items, cfg.threads, |&(p, i)| {
            let point = &points[p];
            let sim_cfg = SimConfig {
                exec_model: ExecModel::WorstCase,
                hyperperiods: cfg.hyperperiods,
                dropped: point.dropped.clone(),
                start_critical: false,
            };
            let mut faults =
                RandomFaults::new(&point.hsys, arch, &point.mapping, cfg.seed.wrapping_add(i))
                    .with_boost(cfg.boost);
            let r = sims[p].run(&sim_cfg, &mut faults);
            let covered = r.unsafe_instances.iter().sum::<u64>() == 0;
            let mut viols = Vec::new();
            if covered {
                for (a, (&observed, &bound)) in r.app_wcrt.iter().zip(&point.app_wcrt).enumerate() {
                    if bound != Time::MAX
                        && !point.dropped.contains(&AppId::new(a))
                        && observed > bound
                    {
                        viols.push((a, observed, bound));
                    }
                }
            }
            Outcome {
                observed: r.app_wcrt,
                faulty: r.critical_entries > 0,
                covered,
                violations: viols,
            }
        });
        for (&(p, i), o) in items.iter().zip(&outcomes) {
            let pv = &mut acc[p];
            if o.covered {
                pv.covered += 1;
                for (slot, &t) in pv.observed_max.iter_mut().zip(&o.observed) {
                    *slot = (*slot).max(t);
                }
            } else {
                pv.beyond_coverage += 1;
            }
            if o.faulty {
                pv.faulty += 1;
            }
            pv.violations += o.violations.len() as u64;
            for &(a, observed, bound) in &o.violations {
                if violations.len() < MAX_VIOLATION_DETAIL {
                    violations.push(Violation {
                        point: p,
                        profile: i,
                        app: AppId::new(a),
                        observed,
                        bound,
                    });
                }
            }
        }
        if let Some(c) = &profiles_counter {
            c.add(end - done);
        }
        if let Some(c) = &violations_counter {
            c.add(outcomes.iter().map(|o| o.violations.len() as u64).sum());
        }
        done = end;
        cfg.obs
            .counter("validate.progress", &[("done", Value::U64(done))]);
        if let Some(path) = &cfg.checkpoint {
            let ckpt = CampaignCheckpoint {
                fingerprint,
                done,
                points: acc.clone(),
                violations: violations.clone(),
            };
            atomic_write_rotating(path, &ckpt.to_bytes())?;
        }
    }
    drop(span);

    Ok(CampaignSummary {
        seed: cfg.seed,
        boost: cfg.boost,
        profiles: cfg.profiles,
        done,
        points: acc,
        violations,
        interrupted,
        resumed_from,
    })
}

/// Fingerprint of everything the accumulated aggregates depend on: the
/// campaign knobs and each point's identity (bounds, dropped set,
/// placement). Thread count and chunk size are *excluded* — like the DSE
/// checkpoint, a campaign may resume with different parallelism. The
/// chunk size only moves checkpoint boundaries, never results.
fn campaign_fingerprint(points: &[MaterializedPoint], cfg: &CampaignConfig) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    cfg.seed.hash(&mut h);
    cfg.boost.to_bits().hash(&mut h);
    cfg.profiles.hash(&mut h);
    cfg.hyperperiods.hash(&mut h);
    points.len().hash(&mut h);
    for p in points {
        for t in &p.app_wcrt {
            t.ticks().hash(&mut h);
        }
        for a in &p.dropped {
            a.index().hash(&mut h);
        }
        for proc in p.mapping.placement() {
            proc.index().hash(&mut h);
        }
    }
    h.finish()
}

fn malformed(path: &Path, detail: impl Into<String>) -> ResilienceError {
    ResilienceError::Malformed {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

fn field_u64(path: &Path, obj: &Json, key: &str) -> Result<u64, ResilienceError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed(path, format!("missing or non-integer `{key}`")))
}

fn field_arr<'a>(path: &Path, obj: &'a Json, key: &str) -> Result<&'a [Json], ResilienceError> {
    match obj.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(malformed(path, format!("missing or non-array `{key}`"))),
    }
}

fn time_list(path: &Path, obj: &Json, key: &str) -> Result<Vec<Time>, ResilienceError> {
    field_arr(path, obj, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(Time::from_ticks)
                .ok_or_else(|| malformed(path, format!("{key}: expected ticks")))
        })
        .collect()
}
