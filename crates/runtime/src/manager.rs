//! The deterministic mode-switch controller and its sim-driven harness.

use mcmap_core::MaterializedPoint;
use mcmap_model::{AppId, Architecture, Criticality, ProcId, Time};
use mcmap_obs::{Recorder, Value};
use mcmap_sched::SchedPolicy;
use mcmap_sim::{ExecModel, RandomFaults, SimConfig, Simulator};
use mcmap_telemetry::{Class, Registry};

/// An event the runtime reacts to, one per hyperperiod boundary. The
/// first two are produced by the simulator itself (critical-state entries
/// are exactly the detected transient faults); the last two model the
/// environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeEvent {
    /// `entries` transient faults were detected since the last boundary
    /// (the simulator's critical-state entries).
    Fault {
        /// Number of critical-state entries observed.
        entries: u64,
    },
    /// A fault-free interval.
    Quiet,
    /// A load change adding sustained pressure — handled like fault
    /// pressure (shed LO-criticality service to regain headroom).
    LoadSpike,
    /// Permanent loss of a processor. Every operating point that maps
    /// any task onto it becomes non-viable for the rest of the mission.
    PeLoss {
        /// The failed processor.
        pe: ProcId,
    },
}

/// Reaction-policy knobs. The defaults are deliberately twitchy
/// (degrade after one bad hyperperiod, recover after two quiet ones) so
/// short campaigns exercise every transition kind.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Consecutive pressure events at a fully extended ladder before the
    /// manager escalates to a lower-service operating point.
    pub escalate_after: u32,
    /// Consecutive quiet events before one degradation step is undone
    /// (an application re-admitted, or a switch back up the point list).
    pub recover_after: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            escalate_after: 1,
            recover_after: 2,
        }
    }
}

/// One recorded mode transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Event time (ticks since mission start).
    pub at: Time,
    /// Operating-point index before the transition.
    pub from: usize,
    /// Operating-point index after the transition (equal to `from` for
    /// ladder moves within a point).
    pub to: usize,
    /// Why: `"degrade"`, `"readmit"`, `"escalate"`, `"recover"`, or
    /// `"pe-loss"`.
    pub reason: &'static str,
    /// The full dropped set in effect *after* the transition.
    pub dropped: Vec<AppId>,
}

/// The deterministic mode-switch controller over a materialized
/// portfolio. Pure state machine: identical event sequences produce
/// identical transition sequences, which is what makes the validation
/// campaigns replayable.
#[derive(Debug)]
pub struct RuntimeManager<'a> {
    points: &'a [MaterializedPoint],
    /// Per point: the LO-criticality ladder — droppable applications not
    /// already dropped by the point itself, cheapest delivered service
    /// first (the order they are shed under pressure).
    ladders: Vec<Vec<AppId>>,
    alive: Vec<bool>,
    current: usize,
    /// How many ladder rungs of the current point are currently shed.
    depth: usize,
    quiet_streak: u32,
    pressure_streak: u32,
    exhausted: bool,
    mode_entered: Time,
    history: Vec<Transition>,
    cfg: RuntimeConfig,
    obs: Recorder,
    telemetry: Registry,
}

impl<'a> RuntimeManager<'a> {
    /// Builds the controller. `points` must be in ladder order (service
    /// descending — [`Portfolio::extract`](mcmap_core::Portfolio::extract)
    /// order) and non-empty; the mission starts in point 0, undegraded.
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty.
    pub fn new(points: &'a [MaterializedPoint], cfg: RuntimeConfig) -> Self {
        assert!(!points.is_empty(), "a portfolio needs at least one point");
        let ladders = points
            .iter()
            .map(|p| {
                let mut rungs: Vec<(f64, AppId)> = p
                    .hsys
                    .apps()
                    .iter()
                    .filter(|a| !p.dropped.contains(&a.app))
                    .filter_map(|a| match a.criticality {
                        Criticality::Droppable { service } => Some((service, a.app)),
                        Criticality::NonDroppable { .. } => None,
                    })
                    .collect();
                rungs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.index().cmp(&b.1.index())));
                rungs.into_iter().map(|(_, id)| id).collect()
            })
            .collect();
        RuntimeManager {
            ladders,
            alive: vec![true; points.len()],
            current: 0,
            depth: 0,
            quiet_streak: 0,
            pressure_streak: 0,
            exhausted: false,
            mode_entered: Time::ZERO,
            history: Vec::new(),
            cfg,
            points,
            obs: Recorder::default(),
            telemetry: Registry::default(),
        }
    }

    /// Attaches an obs recorder (every transition emits a
    /// `runtime.switch` mark).
    #[must_use]
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a telemetry registry (`runtime.switch` counters,
    /// `runtime.degraded_apps` gauge, `runtime.time_in_mode_ticks`
    /// histogram).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Registry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Index of the current operating point.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The current operating point's materialized design.
    pub fn current_point(&self) -> &'a MaterializedPoint {
        &self.points[self.current]
    }

    /// The dropped set currently in effect: the point's own degraded set
    /// plus the shed ladder rungs, ascending id order.
    pub fn dropped_now(&self) -> Vec<AppId> {
        let mut dropped = self.points[self.current].dropped.clone();
        dropped.extend_from_slice(&self.ladders[self.current][..self.depth]);
        dropped.sort_by_key(|a| a.index());
        dropped
    }

    /// `true` once no viable operating point remains (every point uses a
    /// lost processor). The manager keeps answering, frozen in the last
    /// mode, but the mission guarantee is void.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// All transitions so far, in order.
    pub fn history(&self) -> &[Transition] {
        &self.history
    }

    /// Feeds one event at time `now`; returns the transition it caused,
    /// if any.
    pub fn on_event(&mut self, now: Time, event: RuntimeEvent) -> Option<Transition> {
        match event {
            RuntimeEvent::Fault { .. } | RuntimeEvent::LoadSpike => self.on_pressure(now),
            RuntimeEvent::Quiet => self.on_quiet(now),
            RuntimeEvent::PeLoss { pe } => self.on_pe_loss(now, pe),
        }
    }

    fn on_pressure(&mut self, now: Time) -> Option<Transition> {
        self.quiet_streak = 0;
        if self.depth < self.ladders[self.current].len() {
            self.depth += 1;
            self.pressure_streak = 0;
            return Some(self.record(now, self.current, "degrade"));
        }
        self.pressure_streak += 1;
        if self.pressure_streak < self.cfg.escalate_after {
            return None;
        }
        self.pressure_streak = 0;
        // Ladder exhausted: fall to the next (lower-service) surviving
        // point. Points are in service-descending order, so the first
        // alive index past the current one is the gentlest escalation.
        match (self.current + 1..self.points.len()).find(|&i| self.alive[i]) {
            Some(next) => {
                self.depth = 0;
                Some(self.switch(now, next, "escalate"))
            }
            None => {
                self.note_exhausted();
                None
            }
        }
    }

    fn on_quiet(&mut self, now: Time) -> Option<Transition> {
        self.pressure_streak = 0;
        self.quiet_streak += 1;
        if self.quiet_streak < self.cfg.recover_after {
            return None;
        }
        self.quiet_streak = 0;
        if self.depth > 0 {
            self.depth -= 1;
            return Some(self.record(now, self.current, "readmit"));
        }
        // Fully re-admitted in this point: climb back to the best
        // surviving point, one recovery interval per step.
        match (0..self.current).find(|&i| self.alive[i]) {
            Some(best) => {
                self.depth = 0;
                Some(self.switch(now, best, "recover"))
            }
            None => None,
        }
    }

    fn on_pe_loss(&mut self, now: Time, pe: ProcId) -> Option<Transition> {
        for (i, point) in self.points.iter().enumerate() {
            if point.used_processors().contains(&pe) {
                self.alive[i] = false;
            }
        }
        if self.alive[self.current] {
            return None;
        }
        match (0..self.points.len()).find(|&i| self.alive[i]) {
            Some(best) => {
                self.depth = 0;
                self.quiet_streak = 0;
                self.pressure_streak = 0;
                Some(self.switch(now, best, "pe-loss"))
            }
            None => {
                self.note_exhausted();
                None
            }
        }
    }

    fn switch(&mut self, now: Time, to: usize, reason: &'static str) -> Transition {
        let t = self.record(now, to, reason);
        self.current = to;
        t
    }

    fn record(&mut self, now: Time, to: usize, reason: &'static str) -> Transition {
        let from = self.current;
        let in_mode = now.saturating_sub(self.mode_entered);
        self.mode_entered = now;
        // The dropped set after this transition (`to`/`depth` already
        // reflect it for ladder moves; point switches reset depth first).
        let dropped = {
            let mut d = self.points[to].dropped.clone();
            let depth = if to == from { self.depth } else { 0 };
            d.extend_from_slice(&self.ladders[to][..depth]);
            d.sort_by_key(|a| a.index());
            d
        };
        self.obs.mark(
            "runtime.switch",
            &[
                ("from", Value::U64(from as u64)),
                ("to", Value::U64(to as u64)),
                ("reason", Value::Str(reason.to_string())),
                ("at", Value::U64(now.ticks())),
                ("degraded", Value::U64(dropped.len() as u64)),
            ],
        );
        if self.telemetry.enabled() {
            self.telemetry.counter("runtime.switch", Class::Det).inc();
            self.telemetry
                .counter_with("runtime.switch_reason", &[("reason", reason)], Class::Det)
                .inc();
            self.telemetry
                .gauge("runtime.degraded_apps", Class::Det)
                .set(dropped.len() as i64);
            self.telemetry
                .histogram("runtime.time_in_mode_ticks", Class::Det)
                .observe(in_mode.ticks());
        }
        let t = Transition {
            at: now,
            from,
            to,
            reason,
            dropped,
        };
        self.history.push(t.clone());
        t
    }

    fn note_exhausted(&mut self) {
        if !self.exhausted {
            self.exhausted = true;
            self.obs.mark("runtime.exhausted", &[]);
            if self.telemetry.enabled() {
                self.telemetry
                    .counter("runtime.exhausted", Class::Det)
                    .inc();
            }
        }
    }
}

/// Configuration of the closed-loop reaction harness.
#[derive(Debug, Clone)]
pub struct ReactionConfig {
    /// Mission length in hyperperiods.
    pub hyperperiods: u64,
    /// Base fault seed; hyperperiod `h` simulates with `seed + h`.
    pub seed: u64,
    /// Fault-probability boost (see
    /// [`RandomFaults::with_boost`](mcmap_sim::RandomFaults::with_boost)).
    pub boost: f64,
    /// Inject a permanent processor failure at the start of the given
    /// hyperperiod.
    pub pe_loss_at: Option<(u64, ProcId)>,
    /// Reaction-policy knobs.
    pub runtime: RuntimeConfig,
}

impl Default for ReactionConfig {
    fn default() -> Self {
        ReactionConfig {
            hyperperiods: 64,
            seed: 0xC0FFEE,
            boost: 1.0,
            pe_loss_at: None,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// Outcome of one closed-loop mission.
#[derive(Debug, Clone)]
pub struct ReactionReport {
    /// Every mode transition, in order.
    pub transitions: Vec<Transition>,
    /// Per faulty hyperperiod: the reaction latency from the first
    /// injected fault to the hyperperiod boundary where the manager acts
    /// (mode switches are boundary-aligned, so this is the detection →
    /// reconfiguration window).
    pub switch_latency: Vec<Time>,
    /// Hyperperiods with at least one detected fault.
    pub faulty_hyperperiods: u64,
    /// Fault-free hyperperiods.
    pub quiet_hyperperiods: u64,
    /// Response-time observations exceeding the active point's analyzed
    /// bound while within hardening coverage — must be zero; anything
    /// else refutes the analysis.
    pub bound_violations: u64,
    /// `true` when the mission ended with no viable operating point.
    pub exhausted: bool,
}

/// Drives a [`RuntimeManager`] from actual simulations: one
/// worst-case-execution hyperperiod per step with seeded random faults on
/// the *current* operating point, the simulator's critical-state entries
/// fed back as [`RuntimeEvent`]s.
///
/// `policies` are the per-processor scheduling policies (one per
/// processor of `arch`, as everywhere in the workspace).
pub fn run_reaction(
    points: &[MaterializedPoint],
    arch: &Architecture,
    policies: &[SchedPolicy],
    cfg: &ReactionConfig,
    obs: Recorder,
    telemetry: Registry,
) -> ReactionReport {
    let mut manager = RuntimeManager::new(points, cfg.runtime)
        .with_recorder(obs)
        .with_telemetry(telemetry);
    let hp = points[0]
        .hsys
        .apps()
        .iter()
        .map(|a| a.period)
        .fold(Time::from_ticks(1), mcmap_model::lcm_time);
    let mut report = ReactionReport {
        transitions: Vec::new(),
        switch_latency: Vec::new(),
        faulty_hyperperiods: 0,
        quiet_hyperperiods: 0,
        bound_violations: 0,
        exhausted: false,
    };
    let mut now = Time::ZERO;
    for h in 0..cfg.hyperperiods {
        if let Some((at, pe)) = cfg.pe_loss_at {
            if at == h {
                manager.on_event(now, RuntimeEvent::PeLoss { pe });
                if manager.exhausted() {
                    break;
                }
            }
        }
        let point = manager.current_point();
        let sim = Simulator::new(&point.hsys, arch, &point.mapping, policies.to_vec());
        let sim_cfg = SimConfig {
            exec_model: ExecModel::WorstCase,
            hyperperiods: 1,
            dropped: manager.dropped_now(),
            start_critical: false,
        };
        let mut faults =
            RandomFaults::new(&point.hsys, arch, &point.mapping, cfg.seed.wrapping_add(h))
                .with_boost(cfg.boost);
        let (r, trace) = sim.run_traced(&sim_cfg, &mut faults);

        // Bound check: only runs within the hardening coverage carry the
        // analysis promise, and only non-dropped applications have one.
        if r.unsafe_instances.iter().sum::<u64>() == 0 {
            for (i, (&observed, &bound)) in r.app_wcrt.iter().zip(&point.app_wcrt).enumerate() {
                let id = AppId::new(i);
                if bound != Time::MAX && !sim_cfg.dropped.contains(&id) && observed > bound {
                    report.bound_violations += 1;
                }
            }
        }

        let boundary = now.saturating_add(hp);
        if r.critical_entries > 0 {
            report.faulty_hyperperiods += 1;
            if let Some(&first) = trace.critical_entries.first() {
                report
                    .switch_latency
                    .push(boundary.saturating_sub(now.saturating_add(first)));
            }
            manager.on_event(
                boundary,
                RuntimeEvent::Fault {
                    entries: r.critical_entries,
                },
            );
        } else {
            report.quiet_hyperperiods += 1;
            manager.on_event(boundary, RuntimeEvent::Quiet);
        }
        now = boundary;
    }
    report.transitions = manager.history().to_vec();
    report.exhausted = manager.exhausted();
    report
}
