//! Integration tests for the portfolio → runtime → campaign loop, on a
//! real (small) DSE over the cruise-control benchmark.

use std::path::PathBuf;

use mcmap_core::{
    explore_checked, read_portfolio, write_portfolio, DseConfig, MappingProblem, ObjectiveMode,
    Portfolio,
};
use mcmap_ga::GaConfig;
use mcmap_model::{Criticality, Time};
use mcmap_runtime::{
    read_campaign_checkpoint, run_campaign, run_reaction, CampaignCheckpoint, CampaignConfig,
    PointValidation, ReactionConfig, RuntimeConfig, RuntimeEvent, RuntimeManager, Violation,
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcmap_runtime_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dse_config(seed: u64) -> DseConfig {
    let b = mcmap_benchmarks::cruise();
    DseConfig {
        ga: GaConfig {
            population: 16,
            generations: 16,
            seed,
            ..GaConfig::default()
        },
        objectives: ObjectiveMode::PowerService,
        policies: Some(b.policies.clone()),
        repair_iters: 80,
        ..DseConfig::default()
    }
}

/// Runs the small deterministic cruise DSE and extracts its portfolio.
fn cruise_portfolio() -> (mcmap_benchmarks::Benchmark, Portfolio) {
    let b = mcmap_benchmarks::cruise();
    let outcome = explore_checked(&b.apps, &b.arch, dse_config(8)).expect("explore");
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let portfolio = Portfolio::extract(&problem, &outcome.result.front);
    assert!(
        !portfolio.points.is_empty(),
        "fixture DSE produced no feasible point"
    );
    (b, portfolio)
}

#[test]
fn portfolio_round_trips_through_sealed_envelope() {
    let (b, portfolio) = cruise_portfolio();
    let dir = scratch("portfolio_roundtrip");
    let path = dir.join("portfolio.bin");
    write_portfolio(&path, &portfolio).unwrap();
    let (loaded, recovered) = read_portfolio(&path).unwrap();
    assert!(!recovered);
    assert_eq!(
        loaded, portfolio,
        "portfolio must round-trip bit-identically"
    );

    // Rewriting rotates the previous file to `.bak`; corrupting the
    // primary must fall back to it.
    write_portfolio(&path, &portfolio).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let (fallback, recovered) = read_portfolio(&path).unwrap();
    assert!(recovered, "corrupt primary must recover from .bak");
    assert_eq!(fallback, portfolio);

    // The materialized designs must all be valid under the same problem.
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = loaded.materialize(&problem).unwrap();
    assert_eq!(points.len(), portfolio.points.len());
    for p in &points {
        assert!(!p.used_processors().is_empty());
    }
}

#[test]
fn materialize_refuses_foreign_context() {
    let (b, portfolio) = cruise_portfolio();
    // A different GA seed changes the repair RNG, hence the context
    // fingerprint: the stored genomes would decode to different designs.
    let other = MappingProblem::new(&b.apps, &b.arch, dse_config(9));
    let err = portfolio.materialize(&other).unwrap_err();
    assert!(
        err.to_string().contains("context fingerprint mismatch"),
        "unexpected error: {err}"
    );
}

#[test]
fn campaign_summary_is_thread_invariant() {
    let (b, portfolio) = cruise_portfolio();
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = portfolio.materialize(&problem).unwrap();
    let run = |threads: usize| {
        let cfg = CampaignConfig {
            profiles: 40,
            threads,
            ..CampaignConfig::default()
        };
        run_campaign(&points, &b.arch, &b.policies, &cfg).unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(
        one.to_json(),
        four.to_json(),
        "summaries must be bit-identical across thread counts"
    );
    assert_eq!(one.total_violations(), 0, "{}", one.render_text());
    assert!(
        one.points.iter().any(|p| p.faulty > 0),
        "the default boost should inject faults in 40 profiles"
    );
}

#[test]
fn interrupted_campaign_resumes_into_identical_summary() {
    let (b, portfolio) = cruise_portfolio();
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = portfolio.materialize(&problem).unwrap();
    let dir = scratch("campaign_resume");

    let base_cfg = |checkpoint: Option<PathBuf>| CampaignConfig {
        profiles: 60,
        chunk: 20,
        threads: 2,
        checkpoint,
        ..CampaignConfig::default()
    };

    let baseline = run_campaign(&points, &b.arch, &b.policies, &base_cfg(None)).unwrap();
    assert!(!baseline.interrupted);

    // Interrupt deterministically after one 20-profile chunk...
    let ckpt = dir.join("campaign.bin");
    let cfg = CampaignConfig {
        stop_after_chunks: Some(1),
        ..base_cfg(Some(ckpt.clone()))
    };
    let partial = run_campaign(&points, &b.arch, &b.policies, &cfg).unwrap();
    assert!(partial.interrupted);
    assert_eq!(partial.done, 20);

    // ...then resume with a *different* thread count: the final summary
    // must match the uninterrupted baseline byte for byte.
    let cfg = CampaignConfig {
        resume: true,
        threads: 1,
        ..base_cfg(Some(ckpt))
    };
    let resumed = run_campaign(&points, &b.arch, &b.policies, &cfg).unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.resumed_from, Some(20));
    assert_eq!(
        resumed.to_json(),
        baseline.to_json(),
        "resume must converge to the uninterrupted summary"
    );
}

#[test]
fn resume_refuses_foreign_checkpoint() {
    let (b, portfolio) = cruise_portfolio();
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = portfolio.materialize(&problem).unwrap();
    let dir = scratch("campaign_fingerprint");
    let ckpt = dir.join("campaign.bin");

    let cfg = CampaignConfig {
        profiles: 40,
        chunk: 20,
        checkpoint: Some(ckpt.clone()),
        stop_after_chunks: Some(1),
        ..CampaignConfig::default()
    };
    let partial = run_campaign(&points, &b.arch, &b.policies, &cfg).unwrap();
    assert!(partial.interrupted);

    // Same checkpoint, different seed: a silent restart would blend two
    // campaigns, so it must be refused.
    let cfg = CampaignConfig {
        profiles: 40,
        chunk: 20,
        seed: 0xBAD5EED,
        checkpoint: Some(ckpt),
        resume: true,
        ..CampaignConfig::default()
    };
    let err = run_campaign(&points, &b.arch, &b.policies, &cfg).unwrap_err();
    assert!(
        err.to_string().contains("fingerprint mismatch"),
        "unexpected error: {err}"
    );
}

#[test]
fn campaign_checkpoint_round_trips_and_detects_corruption() {
    let ckpt = CampaignCheckpoint {
        fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        done: 250,
        points: vec![PointValidation {
            covered: 200,
            beyond_coverage: 50,
            faulty: 31,
            observed_max: vec![Time::from_ticks(120), Time::ZERO],
            bound: vec![Time::from_ticks(150), Time::MAX],
            violations: 1,
        }],
        violations: vec![Violation {
            point: 0,
            profile: 17,
            app: mcmap_model::AppId::new(0),
            observed: Time::from_ticks(160),
            bound: Time::from_ticks(150),
        }],
    };
    let bytes = ckpt.to_bytes();
    let path = PathBuf::from("<test>");
    let back = CampaignCheckpoint::from_bytes(&path, &bytes).unwrap();
    assert_eq!(back.fingerprint, ckpt.fingerprint);
    assert_eq!(back.done, ckpt.done);
    assert_eq!(back.points, ckpt.points);
    assert_eq!(back.violations, ckpt.violations);

    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let err = CampaignCheckpoint::from_bytes(&path, &corrupt).unwrap_err();
    assert!(err.is_corruption());

    // read_campaign_checkpoint falls back to `.bak` on primary corruption.
    let dir = scratch("ckpt_backup");
    let p = dir.join("campaign.bin");
    mcmap_resilience::atomic_write_rotating(&p, &bytes).unwrap();
    mcmap_resilience::atomic_write_rotating(&p, &bytes).unwrap();
    std::fs::write(&p, &corrupt).unwrap();
    let (recovered, from_backup) = read_campaign_checkpoint(&p).unwrap();
    assert!(from_backup);
    assert_eq!(recovered.done, ckpt.done);
}

#[test]
fn manager_walks_the_ladder_and_back() {
    let (b, portfolio) = cruise_portfolio();
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = portfolio.materialize(&problem).unwrap();
    let mut mgr = RuntimeManager::new(&points, RuntimeConfig::default());
    assert_eq!(mgr.current(), 0);
    assert_eq!(mgr.dropped_now(), points[0].dropped);

    // The point-0 ladder: droppable apps the point itself keeps.
    let ladder_len = points[0]
        .hsys
        .apps()
        .iter()
        .filter(|a| !points[0].dropped.contains(&a.app))
        .filter(|a| matches!(a.criticality, Criticality::Droppable { .. }))
        .count();

    // Pressure sheds one rung per event until the ladder is exhausted.
    let mut t = Time::from_ticks(1);
    for step in 1..=ladder_len {
        let tr = mgr
            .on_event(t, RuntimeEvent::Fault { entries: 1 })
            .expect("each pressure event sheds a rung");
        assert_eq!(tr.reason, "degrade");
        assert_eq!(mgr.dropped_now().len(), points[0].dropped.len() + step);
        t = t.saturating_add(Time::from_ticks(1));
    }

    // The next pressure event escalates to the next point (or exhausts a
    // single-point portfolio).
    let tr = mgr.on_event(t, RuntimeEvent::LoadSpike);
    if points.len() > 1 {
        let tr = tr.expect("ladder exhausted: escalate");
        assert_eq!(tr.reason, "escalate");
        assert_eq!(tr.from, 0);
        assert_eq!(mgr.current(), tr.to);
        assert!(tr.to > 0);
    } else {
        assert!(tr.is_none());
        assert!(mgr.exhausted());
        return;
    }

    // Quiet periods climb all the way back to full service, one step per
    // `recover_after` window.
    let mut guard = 0;
    while mgr.current() != 0 || mgr.dropped_now() != points[0].dropped {
        t = t.saturating_add(Time::from_ticks(1));
        mgr.on_event(t, RuntimeEvent::Quiet);
        guard += 1;
        assert!(guard < 1000, "recovery must terminate");
    }
    let reasons: Vec<_> = mgr.history().iter().map(|h| h.reason).collect();
    assert!(reasons.contains(&"recover"), "history: {reasons:?}");
}

#[test]
fn pe_loss_kills_points_using_the_processor() {
    let (b, portfolio) = cruise_portfolio();
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = portfolio.materialize(&problem).unwrap();
    let mut mgr = RuntimeManager::new(&points, RuntimeConfig::default());
    let pe = points[0].used_processors()[0];
    let tr = mgr.on_event(Time::from_ticks(1), RuntimeEvent::PeLoss { pe });
    match tr {
        Some(tr) => {
            assert_eq!(tr.reason, "pe-loss");
            assert!(
                !points[mgr.current()].used_processors().contains(&pe),
                "the manager must land on a point that avoids the dead PE"
            );
        }
        None => assert!(
            mgr.exhausted(),
            "no transition means every point used the dead PE"
        ),
    }
}

#[test]
fn reaction_mission_holds_bounds_in_every_mode() {
    let (b, portfolio) = cruise_portfolio();
    let problem = MappingProblem::new(&b.apps, &b.arch, dse_config(8));
    let points = portfolio.materialize(&problem).unwrap();
    let report = run_reaction(
        &points,
        &b.arch,
        &b.policies,
        &ReactionConfig {
            hyperperiods: 48,
            boost: 1e5,
            ..ReactionConfig::default()
        },
        mcmap_obs::Recorder::default(),
        mcmap_telemetry::Registry::default(),
    );
    assert_eq!(report.bound_violations, 0);
    assert_eq!(report.faulty_hyperperiods + report.quiet_hyperperiods, 48);
    assert!(
        !report.transitions.is_empty(),
        "a 1e5 boost must force transitions"
    );
    assert_eq!(
        report.switch_latency.len() as u64,
        report.faulty_hyperperiods
    );
}
