//! # mcmap-lint — static analysis for mixed-critical mapping inputs
//!
//! A multi-pass analyzer over the paper's problem inputs: the application
//! set, the platform architecture, an optional hardening plan, and an
//! optional GA chromosome. Every finding is a structured [`Diagnostic`]
//! with a stable `MC0xxx` code, a severity, the offending entity, and a fix
//! suggestion; [`LintReport`] renders them as text or JSON.
//!
//! ## Code namespace
//!
//! * `MC0001`–`MC0015` mirror [`ModelError`] (one code per variant, in
//!   declaration order — see [`ModelError::code`]). The linter re-detects
//!   these on *unvalidated* systems, so tooling can diagnose inputs the
//!   strict constructors reject.
//! * `MC0101`+ are lint-only: constraints that are provably unsatisfiable
//!   for **every** mapping (reliability bounds out of reach, critical paths
//!   beyond the deadline, utilization over-commitment), plus softer smells
//!   (orphan PEs, colocated replicas, hardened droppable tasks).
//!
//! ## Layering
//!
//! This crate depends only on `mcmap-model` and `mcmap-hardening`;
//! `mcmap-core` builds its DSE pre-flight on top of it and converts its
//! `Genome` type into the crate-neutral [`GenomeView`] for the genome pass.
//!
//! ## Example
//!
//! ```
//! use mcmap_lint::{inject, Linter};
//! use mcmap_model::{AppSet, Architecture, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time};
//!
//! # fn main() -> Result<(), mcmap_model::ModelError> {
//! let arch = Architecture::builder()
//!     .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
//!     .build()?;
//! let app = TaskGraph::builder("a", Time::from_ticks(100))
//!     .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
//!     .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(5))))
//!     .channel(0, 1, 8)
//!     .build()?;
//! let apps = AppSet::new(vec![app])?;
//!
//! assert!(!Linter::new(&apps, &arch).lint().has_errors());
//!
//! let broken = inject::with_cycle(&apps);
//! let report = Linter::new(&broken, &arch).lint();
//! assert!(report.has_code("MC0001"));
//! println!("{}", report.render_text());
//! # Ok(())
//! # }
//! ```

mod diag;
mod genome;
pub mod inject;
mod interference;
mod passes;

pub use diag::{all_code_docs, code_doc, CodeDoc, Diagnostic, EntityRef, LintReport, Severity};
pub use genome::{GeneView, GenomeView, HardeningView};
pub use interference::{AffectSet, GenomeEdit, InterferenceGraph};
pub use mcmap_model::ModelError;
pub use passes::{app_of_flat, kind_present, lint_system, Linter};

/// Every diagnostic code this crate can emit, with a one-line description.
/// Codes `MC0001`–`MC0015` are shared with [`ModelError::code`].
pub const ALL_CODES: &[(&str, &str)] = &[
    ("MC0001", "task graph contains a dependency cycle"),
    ("MC0002", "channel endpoint references a nonexistent task"),
    ("MC0003", "channel connects a task to itself"),
    ("MC0004", "task has no execution profile for any kind"),
    ("MC0005", "task has bcet greater than wcet"),
    ("MC0006", "task graph period is zero"),
    ("MC0007", "task graph deadline is zero"),
    ("MC0008", "reliability bound is outside (0, 1]"),
    ("MC0009", "service value is not finite and positive"),
    ("MC0010", "architecture has no processors"),
    ("MC0011", "fabric bandwidth is zero"),
    ("MC0012", "processor fault rate is negative or not finite"),
    ("MC0013", "processor power figure is negative or not finite"),
    ("MC0014", "application set is empty"),
    ("MC0015", "deadline exceeds the period"),
    (
        "MC0101",
        "reliability bound unsatisfiable under the hardening limits",
    ),
    (
        "MC0102",
        "critical path exceeds the deadline on every mapping",
    ),
    ("MC0103", "utilization over-commits the platform"),
    ("MC0104", "no task can execute on this processor"),
    ("MC0105", "task has a zero WCET profile"),
    (
        "MC0106",
        "voter placed on a nonexistent or unallocated processor",
    ),
    ("MC0107", "replicas colocated on one processor"),
    ("MC0108", "droppable application carries hardening"),
    ("MC0109", "plan or genome shape does not match the system"),
    ("MC0110", "binding or replica on an invalid processor"),
    ("MC0111", "no processor allocated"),
    ("MC0112", "hardening exceeds the configured limits"),
    (
        "MC0113",
        "task supports no processor kind present on the platform",
    ),
    (
        "MC0120",
        "applications form a fully-connected interference clique",
    ),
    (
        "MC0121",
        "hardening couples across criticality levels on a shared processor",
    ),
    ("MC0122", "application is an interference-free island"),
];

/// One-line description of a diagnostic code, if it exists.
pub fn explain(code: &str) -> Option<&'static str> {
    ALL_CODES.iter().find(|(c, _)| *c == code).map(|(_, d)| *d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_table_is_sorted_and_unique() {
        let codes: Vec<&str> = ALL_CODES.iter().map(|(c, _)| *c).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, codes, "ALL_CODES must stay sorted and unique");
    }

    #[test]
    fn model_error_codes_are_all_listed() {
        use mcmap_model::{AppId, ChannelId, ProcId, TaskId};
        let samples = [
            ModelError::CyclicGraph {
                app: AppId::new(0),
                task: TaskId::new(0),
            },
            ModelError::DanglingChannel {
                channel: ChannelId::new(0),
                task: TaskId::new(0),
            },
            ModelError::SelfLoop {
                channel: ChannelId::new(0),
            },
            ModelError::UnrunnableTask {
                task: TaskId::new(0),
            },
            ModelError::InvertedExecutionBounds {
                task: TaskId::new(0),
            },
            ModelError::ZeroPeriod,
            ModelError::ZeroDeadline,
            ModelError::InvalidFailureRate { rate: 2.0 },
            ModelError::InvalidService { service: -1.0 },
            ModelError::EmptyArchitecture,
            ModelError::ZeroBandwidth,
            ModelError::InvalidFaultRate {
                proc: ProcId::new(0),
                rate: -1.0,
            },
            ModelError::InvalidPower {
                proc: ProcId::new(0),
            },
            ModelError::EmptyAppSet,
            ModelError::DeadlineExceedsPeriod { app: AppId::new(0) },
        ];
        for e in &samples {
            assert!(
                explain(e.code()).is_some(),
                "model error code {} missing from ALL_CODES",
                e.code()
            );
        }
    }

    #[test]
    fn explain_lookup() {
        assert!(explain("MC0101").unwrap().contains("unsatisfiable"));
        assert!(explain("MC9999").is_none());
    }
}
