//! Diagnostic primitives: severity levels, entity references, diagnostics,
//! and the [`LintReport`] container with text and JSON renderers.

use core::fmt;
use mcmap_model::{AppId, ChannelId, ProcId, TaskId};

/// How serious a diagnostic is.
///
/// `Error` means the input violates an invariant the analyses rely on (or a
/// constraint that is provably unsatisfiable); exploration refuses such
/// inputs. `Warning` flags likely mistakes that do not block analysis.
/// `Hint` points out harmless oddities and optimization opportunities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Invariant violation or provably unsatisfiable constraint.
    Error,
    /// Likely mistake; analysis still possible.
    Warning,
    /// Harmless oddity or optimization opportunity.
    Hint,
}

impl Severity {
    /// Lowercase name, as used in the text and JSON renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The model entity a diagnostic points at. All fields are optional; a
/// system-wide diagnostic (e.g. an empty application set) carries none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntityRef {
    /// Offending application, if any.
    pub app: Option<AppId>,
    /// Offending task (within `app`), if any.
    pub task: Option<TaskId>,
    /// Offending channel (within `app`), if any.
    pub channel: Option<ChannelId>,
    /// Offending processor, if any.
    pub proc: Option<ProcId>,
}

impl EntityRef {
    /// A reference naming nothing (system-wide diagnostics).
    pub fn none() -> Self {
        EntityRef::default()
    }

    /// References an application.
    pub fn app(app: AppId) -> Self {
        EntityRef {
            app: Some(app),
            ..EntityRef::default()
        }
    }

    /// References a task within an application.
    pub fn task(app: AppId, task: TaskId) -> Self {
        EntityRef {
            app: Some(app),
            task: Some(task),
            ..EntityRef::default()
        }
    }

    /// References a channel within an application.
    pub fn channel(app: AppId, channel: ChannelId) -> Self {
        EntityRef {
            app: Some(app),
            channel: Some(channel),
            ..EntityRef::default()
        }
    }

    /// References a processor.
    pub fn proc(proc: ProcId) -> Self {
        EntityRef {
            proc: Some(proc),
            ..EntityRef::default()
        }
    }

    /// Adds a processor to an existing reference (builder style).
    pub fn with_proc(mut self, proc: ProcId) -> Self {
        self.proc = Some(proc);
        self
    }

    /// Returns `true` if the reference names no entity at all.
    pub fn is_empty(&self) -> bool {
        self.app.is_none() && self.task.is_none() && self.channel.is_none() && self.proc.is_none()
    }
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(a) = self.app {
            parts.push(a.to_string());
        }
        if let Some(t) = self.task {
            parts.push(t.to_string());
        }
        if let Some(c) = self.channel {
            parts.push(c.to_string());
        }
        if let Some(p) = self.proc {
            parts.push(p.to_string());
        }
        if parts.is_empty() {
            f.write_str("system")
        } else {
            f.write_str(&parts.join("/"))
        }
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable `MC0xxx` code. Codes below `MC0100` mirror
    /// [`mcmap_model::ModelError::code`]; codes `MC0101` and up are
    /// lint-only findings no model constructor rejects.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Name of the pass that produced the finding.
    pub pass: &'static str,
    /// Human-readable description of the defect.
    pub message: String,
    /// The entity the finding points at.
    pub entity: EntityRef,
    /// Optional actionable fix suggestion.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        code: &'static str,
        pass: &'static str,
        entity: EntityRef,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            pass,
            message: message.into(),
            entity,
            suggestion: None,
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        pass: &'static str,
        entity: EntityRef,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, pass, entity, message)
        }
    }

    /// Creates a hint-severity diagnostic.
    pub fn hint(
        code: &'static str,
        pass: &'static str,
        entity: EntityRef,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Hint,
            ..Diagnostic::error(code, pass, entity, message)
        }
    }

    /// Attaches a fix suggestion (builder style).
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// Converts a [`mcmap_model::ModelError`] into the equivalent diagnostic,
    /// preserving the shared `MC00xx` code. `app` supplies the application
    /// context for variants that do not carry one themselves.
    pub fn from_model_error(e: &mcmap_model::ModelError, app: Option<AppId>) -> Self {
        use mcmap_model::ModelError as E;
        let entity = match e {
            E::CyclicGraph { app, task } => EntityRef::task(*app, *task),
            E::DanglingChannel { channel, .. } | E::SelfLoop { channel } => EntityRef {
                app,
                channel: Some(*channel),
                ..EntityRef::default()
            },
            E::UnrunnableTask { task } | E::InvertedExecutionBounds { task } => EntityRef {
                app,
                task: Some(*task),
                ..EntityRef::default()
            },
            E::InvalidFaultRate { proc, .. } | E::InvalidPower { proc } => EntityRef::proc(*proc),
            E::DeadlineExceedsPeriod { app } => EntityRef::app(*app),
            E::ZeroPeriod
            | E::ZeroDeadline
            | E::InvalidFailureRate { .. }
            | E::InvalidService { .. } => EntityRef {
                app,
                ..EntityRef::default()
            },
            E::EmptyArchitecture | E::ZeroBandwidth | E::EmptyAppSet => EntityRef::none(),
        };
        Diagnostic::error(e.code(), "model", entity, e.to_string())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] ({}) {}: {}",
            self.severity, self.code, self.pass, self.entity, self.message
        )
    }
}

/// The ordered collection of diagnostics produced by one lint run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diags: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Appends every diagnostic of another report.
    pub fn extend(&mut self, other: LintReport) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics, in report order (errors first after finalization).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Iterates over the diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Returns `true` if nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Returns `true` if any diagnostic is error-severity.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at the given severity.
    pub fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }

    /// Deduplicated codes of all error-severity diagnostics, sorted.
    pub fn error_codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Deduplicated codes of all diagnostics, sorted.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diags.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Returns `true` if some diagnostic carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Stable-sorts the report: errors first, then warnings, then hints;
    /// ties broken by code. Called by the linter before returning.
    pub fn finalize(&mut self) {
        self.diags
            .sort_by(|a, b| a.severity.cmp(&b.severity).then_with(|| a.code.cmp(b.code)));
    }

    /// Renders the report as human-readable text, one line per diagnostic
    /// plus an optional `help:` line and a trailing summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
            if let Some(s) = &d.suggestion {
                out.push_str("  = help: ");
                out.push_str(s);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} hint(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Hint)
        ));
        out
    }

    /// Renders the report as a JSON object with a `diagnostics` array and
    /// per-severity totals. Hand-rolled (the build environment vendors no
    /// serialization crates); the output is stable and machine-parseable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code);
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"pass\":\"");
            out.push_str(d.pass);
            out.push_str("\",\"message\":");
            push_json_string(&mut out, &d.message);
            out.push_str(",\"app\":");
            push_opt_index(&mut out, d.entity.app.map(|x| x.index()));
            out.push_str(",\"task\":");
            push_opt_index(&mut out, d.entity.task.map(|x| x.index()));
            out.push_str(",\"channel\":");
            push_opt_index(&mut out, d.entity.channel.map(|x| x.index()));
            out.push_str(",\"proc\":");
            push_opt_index(&mut out, d.entity.proc.map(|x| x.index()));
            out.push_str(",\"suggestion\":");
            match &d.suggestion {
                Some(s) => push_json_string(&mut out, s),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"hints\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Hint)
        ));
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Full documentation for one diagnostic code: what causes it, a concrete
/// example, and how to fix it. Looked up with [`code_doc`]; rendered by the
/// CLI's `lint --explain MCxxxx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeDoc {
    /// The stable `MC0xxx` code.
    pub code: &'static str,
    /// One-line summary (identical to the `ALL_CODES` description).
    pub summary: &'static str,
    /// What input state triggers the diagnostic.
    pub cause: &'static str,
    /// A concrete example of an input that fires it.
    pub example: &'static str,
    /// How to repair the input.
    pub fix: &'static str,
}

impl CodeDoc {
    /// Renders the documentation as human-readable text.
    pub fn render_text(&self) -> String {
        format!(
            "{}: {}\n\ncause: {}\nexample: {}\nfix: {}\n",
            self.code, self.summary, self.cause, self.example, self.fix
        )
    }
}

/// Full documentation table, one entry per code in `ALL_CODES`, same order.
/// (A unit test pins the 1:1 correspondence.)
pub(crate) const CODE_DOCS: &[CodeDoc] = &[
    CodeDoc {
        code: "MC0001",
        summary: "task graph contains a dependency cycle",
        cause: "following the channels of an application leads back to an already-visited task, so no topological schedule exists",
        example: "tasks a -> b -> c with an extra channel c -> a",
        fix: "remove or reverse one channel on the cycle so the graph is a DAG",
    },
    CodeDoc {
        code: "MC0002",
        summary: "channel endpoint references a nonexistent task",
        cause: "a channel's src or dst index is >= the application's task count",
        example: "a 3-task graph with a channel from task 0 to task 7",
        fix: "point the channel at existing task indices or delete it",
    },
    CodeDoc {
        code: "MC0003",
        summary: "channel connects a task to itself",
        cause: "a channel has src == dst, which the precedence model cannot express",
        example: "a channel from task 2 to task 2",
        fix: "delete the self-loop or split the task in two",
    },
    CodeDoc {
        code: "MC0004",
        summary: "task has no execution profile for any kind",
        cause: "a task carries zero (kind, exec-bounds) entries, so it can run nowhere",
        example: "Task::new(\"t\") built without with_uniform_exec or with_exec",
        fix: "add execution bounds for at least one processor kind",
    },
    CodeDoc {
        code: "MC0005",
        summary: "task has bcet greater than wcet",
        cause: "an execution profile's best case exceeds its worst case",
        example: "ExecBounds with bcet 90 and wcet 40",
        fix: "swap or correct the bounds so bcet <= wcet",
    },
    CodeDoc {
        code: "MC0006",
        summary: "task graph period is zero",
        cause: "an application's period is 0 ticks, making utilization undefined",
        example: "TaskGraph::builder(\"a\", Time::from_ticks(0))",
        fix: "set a positive period",
    },
    CodeDoc {
        code: "MC0007",
        summary: "task graph deadline is zero",
        cause: "an application's deadline is 0 ticks, so nothing can ever meet it",
        example: "a graph with .deadline(Time::from_ticks(0))",
        fix: "set a positive deadline (it defaults to the period)",
    },
    CodeDoc {
        code: "MC0008",
        summary: "reliability bound is outside (0, 1]",
        cause: "a non-droppable application's max_failure_rate is <= 0 or > 1",
        example: "Criticality::NonDroppable { max_failure_rate: 2.0 }",
        fix: "use a probability in (0, 1], e.g. 1e-5",
    },
    CodeDoc {
        code: "MC0009",
        summary: "service value is not finite and positive",
        cause: "a droppable application's service is <= 0, NaN, or infinite",
        example: "Criticality::Droppable { service: -1.0 }",
        fix: "use a finite positive service value",
    },
    CodeDoc {
        code: "MC0010",
        summary: "architecture has no processors",
        cause: "the architecture builder was finished with zero processors",
        example: "Architecture::builder().build()",
        fix: "add at least one processor",
    },
    CodeDoc {
        code: "MC0011",
        summary: "fabric bandwidth is zero",
        cause: "the communication fabric's bandwidth is 0 bytes/tick, making channel delays infinite",
        example: "Fabric::new(0)",
        fix: "set a positive bandwidth",
    },
    CodeDoc {
        code: "MC0012",
        summary: "processor fault rate is negative or not finite",
        cause: "a processor's transient-fault rate is < 0, NaN, or infinite",
        example: "Processor::new(\"p\", kind, 5.0, 20.0, -1.0)",
        fix: "use a non-negative finite fault rate",
    },
    CodeDoc {
        code: "MC0013",
        summary: "processor power figure is negative or not finite",
        cause: "a processor's idle or busy power is < 0, NaN, or infinite",
        example: "Processor::new(\"p\", kind, -5.0, 20.0, 1e-7)",
        fix: "use non-negative finite power figures",
    },
    CodeDoc {
        code: "MC0014",
        summary: "application set is empty",
        cause: "AppSet::new was called with zero task graphs",
        example: "AppSet::new(vec![])",
        fix: "add at least one application",
    },
    CodeDoc {
        code: "MC0015",
        summary: "deadline exceeds the period",
        cause: "an application has D > T; the analyses assume constrained deadlines",
        example: "period 100 with deadline 150",
        fix: "lower the deadline to at most the period",
    },
    CodeDoc {
        code: "MC0101",
        summary: "reliability bound unsatisfiable under the hardening limits",
        cause: "even the strongest hardening the search may assign (max re-executions and replicas on the most reliable processors) cannot reach a task's failure-rate bound",
        example: "max_failure_rate 1e-12 on a platform whose every PE has fault rate 1e-3, with limits (2, 2)",
        fix: "relax the bound, raise the hardening limits, or add more reliable processors",
    },
    CodeDoc {
        code: "MC0102",
        summary: "critical path exceeds the deadline on every mapping",
        cause: "the sum of best-possible WCETs along some dependency chain already exceeds the deadline, before any interference",
        example: "a 3-task chain of WCET 50 each with deadline 100",
        fix: "shorten the chain, speed up the tasks, or extend the deadline",
    },
    CodeDoc {
        code: "MC0103",
        summary: "utilization over-commits the platform",
        cause: "total demand (sum of min-WCET / period) exceeds the number of processors, so no mapping is schedulable",
        example: "ten tasks of utilization 0.5 on a 4-PE platform",
        fix: "add processors, drop load, or lengthen periods",
    },
    CodeDoc {
        code: "MC0104",
        summary: "no task can execute on this processor",
        cause: "a processor's kind is supported by no task, so it can only ever idle",
        example: "a DSP-kind PE in a system whose tasks only profile the CPU kind",
        fix: "remove the processor or add execution profiles for its kind",
    },
    CodeDoc {
        code: "MC0105",
        summary: "task has a zero WCET profile",
        cause: "a task's worst-case execution time is 0 ticks on some kind, which usually indicates missing profiling data",
        example: "ExecBounds::exact(Time::from_ticks(0))",
        fix: "fill in a measured WCET or drop the profile",
    },
    CodeDoc {
        code: "MC0106",
        summary: "voter placed on a nonexistent or unallocated processor",
        cause: "a replicated task's voter is bound to a processor outside the architecture or with a cleared allocation bit",
        example: "voter on p7 of a 4-PE platform",
        fix: "bind the voter to an allocated processor",
    },
    CodeDoc {
        code: "MC0107",
        summary: "replicas colocated on one processor",
        cause: "two copies of the same task share a processor, so one fault can kill both — the replication buys no reliability",
        example: "primary and replica both on p1",
        fix: "spread the copies over distinct processors",
    },
    CodeDoc {
        code: "MC0108",
        summary: "droppable application carries hardening",
        cause: "a task of a droppable application is hardened; dropping already sacrifices it under faults, so the overhead is wasted",
        example: "Reexec(2) on a best-effort video decoder",
        fix: "remove the hardening or make the application non-droppable",
    },
    CodeDoc {
        code: "MC0109",
        summary: "plan or genome shape does not match the system",
        cause: "the hardening plan or chromosome has a different task, keep-bit, or alloc-bit count than the system it is checked against",
        example: "a 5-gene genome for a 7-task application set",
        fix: "regenerate the plan/genome from this system's GenomeSpace",
    },
    CodeDoc {
        code: "MC0110",
        summary: "binding or replica on an invalid processor",
        cause: "a gene binds a task, replica, or standby to a processor that does not exist, is unallocated, or whose kind the task cannot run on",
        example: "binding a CPU-only task to a DSP-kind PE",
        fix: "bind to an allocated processor of a supported kind",
    },
    CodeDoc {
        code: "MC0111",
        summary: "no processor allocated",
        cause: "every allocation bit of the chromosome is cleared, leaving nowhere to run",
        example: "alloc = [false, false, false]",
        fix: "set at least one allocation bit",
    },
    CodeDoc {
        code: "MC0112",
        summary: "hardening exceeds the configured limits",
        cause: "a gene assigns more re-executions or replicas than the search limits allow",
        example: "Reexec(5) under max_reexec = 2",
        fix: "clamp the gene or raise the limits",
    },
    CodeDoc {
        code: "MC0113",
        summary: "task supports no processor kind present on the platform",
        cause: "a task only profiles kinds that no processor of the architecture has",
        example: "a GPU-only kernel on a CPU-only platform",
        fix: "add a processor of a supported kind or profile the task for the present kinds",
    },
    CodeDoc {
        code: "MC0120",
        summary: "applications form a fully-connected interference clique",
        cause: "every pair of applications shares at least one processor, so any genome edit forces re-analysis of the whole system and incremental reuse never triggers",
        example: "three applications all bound to the same two PEs",
        fix: "spread applications over disjoint processors where the deadlines allow it",
    },
    CodeDoc {
        code: "MC0121",
        summary: "hardening couples across criticality levels on a shared processor",
        cause: "a hardened non-droppable task places a copy or voter on a processor that also hosts a droppable application, so the hardening overhead delays best-effort work and dropping decisions feed back into critical response times",
        example: "a re-executed control task sharing its PE with a droppable video app",
        fix: "place the hardened task's copies and voter on processors without droppable load",
    },
    CodeDoc {
        code: "MC0122",
        summary: "application is an interference-free island",
        cause: "an application shares no processor with any other, so edits to it re-analyze only itself",
        example: "one application alone on its own PE",
        fix: "no action needed; this is the ideal shape for incremental re-analysis",
    },
];

/// Full documentation for a diagnostic code, if it exists.
///
/// # Examples
///
/// ```
/// let doc = mcmap_lint::code_doc("MC0120").unwrap();
/// assert!(doc.cause.contains("shares"));
/// assert!(mcmap_lint::code_doc("MC9999").is_none());
/// ```
pub fn code_doc(code: &str) -> Option<&'static CodeDoc> {
    CODE_DOCS.iter().find(|d| d.code == code)
}

/// The full documentation table, one entry per registered diagnostic code,
/// in code order. Backs the CLI's bare `lint --explain` listing.
///
/// # Examples
///
/// ```
/// let docs = mcmap_lint::all_code_docs();
/// assert!(docs.iter().any(|d| d.code == "MC0001"));
/// assert!(docs.windows(2).all(|w| w[0].code < w[1].code));
/// ```
pub fn all_code_docs() -> &'static [CodeDoc] {
    CODE_DOCS
}

fn push_opt_index(out: &mut String, v: Option<usize>) {
    match v {
        Some(i) => out.push_str(&i.to_string()),
        None => out.push_str("null"),
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(Diagnostic::hint(
            "MC0104",
            "platform-fit",
            EntityRef::proc(ProcId::new(2)),
            "no task can run on this processor",
        ));
        r.push(
            Diagnostic::error(
                "MC0001",
                "graph-structure",
                EntityRef::task(AppId::new(0), TaskId::new(3)),
                "task graph contains a cycle",
            )
            .with_suggestion("remove a back edge"),
        );
        r.push(Diagnostic::warning(
            "MC0105",
            "exec-bounds",
            EntityRef::task(AppId::new(1), TaskId::new(0)),
            "wcet is zero",
        ));
        r.finalize();
        r
    }

    #[test]
    fn finalize_orders_errors_first() {
        let r = sample();
        let sevs: Vec<Severity> = r.iter().map(|d| d.severity).collect();
        assert_eq!(
            sevs,
            vec![Severity::Error, Severity::Warning, Severity::Hint]
        );
    }

    #[test]
    fn counting_and_codes() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.error_codes(), vec!["MC0001"]);
        assert_eq!(r.codes(), vec!["MC0001", "MC0104", "MC0105"]);
        assert!(r.has_code("MC0104"));
        assert!(!r.has_code("MC0002"));
    }

    #[test]
    fn text_rendering_contains_all_parts() {
        let text = sample().render_text();
        assert!(text.contains("error[MC0001] (graph-structure) a0/v3:"));
        assert!(text.contains("= help: remove a back edge"));
        assert!(text.contains("1 error(s), 1 warning(s), 1 hint(s)"));
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.ends_with("\"errors\":1,\"warnings\":1,\"hints\":1}"));
        assert!(json.contains("\"code\":\"MC0001\""));
        assert!(json.contains("\"app\":0,\"task\":3,\"channel\":null,\"proc\":null"));
        assert!(json.contains("\"suggestion\":\"remove a back edge\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn entity_display_forms() {
        assert_eq!(EntityRef::none().to_string(), "system");
        assert_eq!(
            EntityRef::task(AppId::new(1), TaskId::new(2)).to_string(),
            "a1/v2"
        );
        assert_eq!(
            EntityRef::app(AppId::new(0))
                .with_proc(ProcId::new(3))
                .to_string(),
            "a0/p3"
        );
    }

    #[test]
    fn code_docs_match_all_codes_one_to_one() {
        assert_eq!(CODE_DOCS.len(), crate::ALL_CODES.len());
        for (doc, (code, summary)) in CODE_DOCS.iter().zip(crate::ALL_CODES) {
            assert_eq!(doc.code, *code, "CODE_DOCS out of sync with ALL_CODES");
            assert_eq!(doc.summary, *summary, "summary drifted for {}", code);
            assert!(!doc.cause.is_empty() && !doc.example.is_empty() && !doc.fix.is_empty());
        }
    }

    #[test]
    fn code_doc_lookup_and_render() {
        let doc = code_doc("MC0001").unwrap();
        let text = doc.render_text();
        assert!(text.starts_with("MC0001: task graph contains a dependency cycle"));
        assert!(text.contains("cause: "));
        assert!(text.contains("example: "));
        assert!(text.contains("fix: "));
        assert!(code_doc("MC0999").is_none());
    }

    #[test]
    fn model_error_conversion_keeps_code() {
        let e = mcmap_model::ModelError::ZeroPeriod;
        let d = Diagnostic::from_model_error(&e, Some(AppId::new(2)));
        assert_eq!(d.code, "MC0006");
        assert_eq!(d.code, e.code());
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.entity.app, Some(AppId::new(2)));
    }
}
