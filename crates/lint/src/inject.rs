//! Defect injection: derives deliberately broken variants of a valid system.
//!
//! Used by the CLI's `lint --inject …` flag and by the test-suite to verify
//! that every diagnostic actually fires. Each helper clones an application
//! set, plants exactly one class of defect, and rebuilds it through the
//! unvalidated constructors so the malformed system can exist in memory.

use mcmap_model::{AppSet, Criticality, ExecBounds, TaskGraph, TaskGraphBuilder, Time};

/// Rebuilds one task graph into a fresh builder (tasks and channels copied).
fn rebuild(app: &TaskGraph) -> TaskGraphBuilder {
    let mut b = TaskGraph::builder(app.name(), app.period())
        .criticality(app.criticality())
        .deadline(app.deadline());
    for (_, t) in app.tasks() {
        b = b.task(t.clone());
    }
    for (_, c) in app.channels() {
        b = b.channel(c.src.index(), c.dst.index(), c.bytes);
    }
    b
}

/// Rebuilds the whole set, applying `f` to the application at `target`.
fn map_app(
    apps: &AppSet,
    target: usize,
    f: impl Fn(TaskGraphBuilder) -> TaskGraphBuilder,
) -> AppSet {
    let rebuilt = apps
        .apps()
        .map(|(a, app)| {
            let b = rebuild(app);
            let b = if a.index() == target { f(b) } else { b };
            b.build_unvalidated()
        })
        .collect();
    AppSet::new_unvalidated(rebuilt)
}

/// Injects a dependency cycle (diagnostic `MC0001`) by adding a back edge
/// from the last task to the first in the first application with at least
/// two tasks. Returns the set unchanged if no application qualifies.
pub fn with_cycle(apps: &AppSet) -> AppSet {
    let Some(target) = apps
        .apps()
        .find(|(_, app)| app.num_tasks() >= 2)
        .map(|(a, _)| a.index())
    else {
        return apps.clone();
    };
    let last = apps.app(mcmap_model::AppId::new(target)).num_tasks() - 1;
    map_app(apps, target, |b| b.channel(last, 0, 1))
}

/// Injects an unsatisfiable reliability bound (diagnostic `MC0101`) by
/// tightening the first non-droppable application's bound to `1e-300` — a
/// value the model accepts (it lies in `(0, 1]`) but that no hardening can
/// reach on faulty hardware. Falls back to the first application if none is
/// non-droppable.
pub fn with_unsatisfiable_reliability(apps: &AppSet) -> AppSet {
    let target = apps
        .nondroppable_apps()
        .next()
        .map(|a| a.index())
        .unwrap_or(0);
    if apps.num_apps() == 0 {
        return apps.clone();
    }
    map_app(apps, target, |b| {
        b.criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-300,
        })
    })
}

/// Injects inverted execution bounds (diagnostic `MC0005`) into the first
/// task of the first application: on its first supported kind, `bcet` is
/// set strictly above `wcet`.
pub fn with_inverted_bounds(apps: &AppSet) -> AppSet {
    if apps.num_apps() == 0 {
        return apps.clone();
    }
    let app0 = apps.app(mcmap_model::AppId::new(0));
    if app0.num_tasks() == 0 {
        return apps.clone();
    }
    let task0 = app0.task(mcmap_model::TaskId::new(0));
    let Some(kind) = task0.supported_kinds().next() else {
        return apps.clone();
    };
    let old = task0.exec_on(kind).expect("supported kind has bounds");
    let inverted = ExecBounds::new(
        Time::from_ticks(old.wcet.ticks().saturating_add(10)),
        old.wcet,
    );
    let rebuilt = apps
        .apps()
        .map(|(a, app)| {
            let mut b = TaskGraph::builder(app.name(), app.period())
                .criticality(app.criticality())
                .deadline(app.deadline());
            for (t, task) in app.tasks() {
                let task = if a.index() == 0 && t.index() == 0 {
                    task.clone().with_exec(kind, inverted)
                } else {
                    task.clone()
                };
                b = b.task(task);
            }
            for (_, c) in app.channels() {
                b = b.channel(c.src.index(), c.dst.index(), c.bytes);
            }
            b.build_unvalidated()
        })
        .collect();
    AppSet::new_unvalidated(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linter;
    use mcmap_model::{Architecture, ProcKind, Processor, Task};

    fn arch() -> Architecture {
        Architecture::builder()
            .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
            .build()
            .unwrap()
    }

    fn apps() -> AppSet {
        let g = TaskGraph::builder("a", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-3,
            })
            .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .channel(0, 1, 4)
            .build()
            .unwrap();
        AppSet::new(vec![g]).unwrap()
    }

    #[test]
    fn baseline_is_clean() {
        let (apps, arch) = (apps(), arch());
        assert!(!Linter::new(&apps, &arch).lint().has_errors());
    }

    #[test]
    fn injected_cycle_fires_mc0001() {
        let (apps, arch) = (with_cycle(&apps()), arch());
        let report = Linter::new(&apps, &arch).lint();
        assert!(report.has_code("MC0001"), "{}", report.render_text());
    }

    #[test]
    fn injected_relbound_fires_mc0101() {
        let (apps, arch) = (with_unsatisfiable_reliability(&apps()), arch());
        let report = Linter::new(&apps, &arch).lint();
        assert!(report.has_code("MC0101"), "{}", report.render_text());
    }

    #[test]
    fn injected_inversion_fires_mc0005() {
        let (apps, arch) = (with_inverted_bounds(&apps()), arch());
        let report = Linter::new(&apps, &arch).lint();
        assert!(report.has_code("MC0005"), "{}", report.render_text());
    }

    #[test]
    fn injections_preserve_shape() {
        let base = apps();
        for mutant in [
            with_cycle(&base),
            with_unsatisfiable_reliability(&base),
            with_inverted_bounds(&base),
        ] {
            assert_eq!(mutant.num_apps(), base.num_apps());
            assert_eq!(mutant.num_tasks(), base.num_tasks());
        }
    }
}
