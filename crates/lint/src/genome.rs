//! Crate-neutral view of a GA chromosome.
//!
//! `mcmap-lint` sits below `mcmap-core` in the dependency graph, so it cannot
//! name the core crate's `Genome` type directly. Instead the genome-shape
//! pass consumes this plain-data mirror; `mcmap-core` converts its genomes
//! into a [`GenomeView`] before linting.

use mcmap_model::ProcId;

/// Mirror of the core crate's per-task hardening gene.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum HardeningView {
    /// No hardening.
    #[default]
    None,
    /// Re-execution with up to `k` retries.
    Reexec(u8),
    /// Active replication: extra copies plus a voter placement.
    Active {
        /// Processors hosting the additional always-on copies.
        replicas: Vec<ProcId>,
        /// Processor hosting the voter.
        voter: ProcId,
    },
    /// Passive replication: always-on copies, standbys, and a voter.
    Passive {
        /// Processors hosting the additional always-on copies.
        actives: Vec<ProcId>,
        /// Processors hosting the on-demand standby copies.
        standbys: Vec<ProcId>,
        /// Processor hosting the voter.
        voter: ProcId,
    },
}

impl HardeningView {
    /// Every processor this gene references besides the primary binding:
    /// replicas, standbys, and the voter.
    pub fn referenced_procs(&self) -> Vec<ProcId> {
        match self {
            HardeningView::None | HardeningView::Reexec(_) => Vec::new(),
            HardeningView::Active { replicas, voter } => {
                let mut v = replicas.clone();
                v.push(*voter);
                v
            }
            HardeningView::Passive {
                actives,
                standbys,
                voter,
            } => {
                let mut v = actives.clone();
                v.extend_from_slice(standbys);
                v.push(*voter);
                v
            }
        }
    }

    /// The voter placement, if replicated.
    pub fn voter(&self) -> Option<ProcId> {
        match self {
            HardeningView::Active { voter, .. } | HardeningView::Passive { voter, .. } => {
                Some(*voter)
            }
            _ => None,
        }
    }

    /// Number of extra replica slots (actives plus standbys, primary
    /// excluded).
    pub fn extra_copies(&self) -> usize {
        match self {
            HardeningView::None | HardeningView::Reexec(_) => 0,
            HardeningView::Active { replicas, .. } => replicas.len(),
            HardeningView::Passive {
                actives, standbys, ..
            } => actives.len() + standbys.len(),
        }
    }

    /// The re-execution budget carried by this gene.
    pub fn reexecutions(&self) -> u8 {
        match self {
            HardeningView::Reexec(k) => *k,
            _ => 0,
        }
    }
}

/// Mirror of the core crate's per-task gene: primary binding plus hardening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneView {
    /// Processor hosting the primary copy.
    pub binding: ProcId,
    /// Hardening decision.
    pub hardening: HardeningView,
}

/// Mirror of the core crate's chromosome (Fig. 4 of the paper): PE
/// allocation bits, keep bits for droppable applications, and one gene per
/// task in flat-index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenomeView {
    /// One allocation bit per processor.
    pub alloc: Vec<bool>,
    /// One keep bit per droppable application.
    pub keep: Vec<bool>,
    /// One gene per task, in the owning `AppSet`'s flat order.
    pub genes: Vec<GeneView>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_procs_cover_replicas_and_voter() {
        let h = HardeningView::Passive {
            actives: vec![ProcId::new(1)],
            standbys: vec![ProcId::new(2)],
            voter: ProcId::new(3),
        };
        assert_eq!(
            h.referenced_procs(),
            vec![ProcId::new(1), ProcId::new(2), ProcId::new(3)]
        );
        assert_eq!(h.voter(), Some(ProcId::new(3)));
        assert_eq!(h.extra_copies(), 2);
        assert_eq!(HardeningView::Reexec(2).reexecutions(), 2);
        assert_eq!(HardeningView::None.referenced_procs(), Vec::new());
        assert_eq!(HardeningView::None.voter(), None);
    }
}
