//! The analysis passes and the [`Linter`] driver.
//!
//! Each pass walks one aspect of the system and appends [`Diagnostic`]s to a
//! shared [`LintReport`]. Codes `MC0001`–`MC0015` mirror the
//! [`mcmap_model::ModelError`] variants (same numbering, see
//! [`ModelError::code`](mcmap_model::ModelError::code)); codes `MC0101` and
//! up are lint-only findings that no model constructor rejects — violated
//! constraints that are *provably unsatisfiable* or *provably violated* for
//! every possible mapping, plus softer smells.

use crate::diag::{Diagnostic, EntityRef, LintReport};
use crate::genome::{GenomeView, HardeningView};
use mcmap_hardening::{majority_failure_prob, HardeningPlan, Replication};
use mcmap_model::{AppId, AppSet, Architecture, Criticality, ProcId, ProcKind, TaskGraph, TaskId};

/// The static analyzer: borrows a system and produces a [`LintReport`].
///
/// # Examples
///
/// ```
/// use mcmap_lint::Linter;
/// use mcmap_model::{AppSet, Architecture, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time};
///
/// # fn main() -> Result<(), mcmap_model::ModelError> {
/// let arch = Architecture::builder()
///     .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
///     .build()?;
/// let app = TaskGraph::builder("a", Time::from_ticks(100))
///     .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
///     .build()?;
/// let apps = AppSet::new(vec![app])?;
/// let report = Linter::new(&apps, &arch).lint();
/// assert!(!report.has_errors());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Linter<'a> {
    apps: &'a AppSet,
    arch: &'a Architecture,
    /// Largest re-execution budget the hardening search may assign.
    max_reexec: u8,
    /// Largest number of extra replicas the hardening search may assign.
    max_replicas: u8,
}

impl<'a> Linter<'a> {
    /// Creates a linter with the default hardening limits (re-execution
    /// budget 2, replica budget 2 — the `GenomeSpace` defaults).
    pub fn new(apps: &'a AppSet, arch: &'a Architecture) -> Self {
        Linter {
            apps,
            arch,
            max_reexec: 2,
            max_replicas: 2,
        }
    }

    /// Overrides the hardening limits used by the reliability and
    /// hardening-spec passes.
    pub fn with_limits(mut self, max_reexec: u8, max_replicas: u8) -> Self {
        self.max_reexec = max_reexec;
        self.max_replicas = max_replicas;
        self
    }

    /// Runs every model- and platform-level pass.
    pub fn lint(&self) -> LintReport {
        self.lint_full(None, None)
    }

    /// Runs the model passes plus the hardening-spec pass over `plan`.
    pub fn lint_plan(&self, plan: &HardeningPlan) -> LintReport {
        self.lint_full(Some(plan), None)
    }

    /// Runs the model passes plus the genome-shape pass over `genome`.
    pub fn lint_genome(&self, genome: &GenomeView) -> LintReport {
        self.lint_full(None, Some(genome))
    }

    /// Runs every pass, optionally including the hardening-spec and
    /// genome-shape passes. Diagnostics are sorted errors-first.
    pub fn lint_full(
        &self,
        plan: Option<&HardeningPlan>,
        genome: Option<&GenomeView>,
    ) -> LintReport {
        let mut r = LintReport::new();
        let cyclic = self.pass_graph_structure(&mut r);
        self.pass_criticality(&mut r);
        self.pass_exec_bounds(&mut r);
        self.pass_platform(&mut r);
        self.pass_platform_fit(&mut r);
        self.pass_utilization(&mut r);
        self.pass_deadline(&mut r, &cyclic);
        self.pass_reliability(&mut r);
        if let Some(plan) = plan {
            self.pass_hardening_spec(&mut r, plan);
        }
        if let Some(genome) = genome {
            self.pass_genome(&mut r, genome);
            self.pass_interference(&mut r, genome);
        }
        r.finalize();
        r
    }

    /// The interference/coupling pass (MC0120/MC0121/MC0122): builds the
    /// interference graph of the candidate and reports pathological
    /// coupling. Skipped silently on shape mismatch (the genome pass
    /// reports that as MC0109).
    fn pass_interference(&self, r: &mut LintReport, genome: &GenomeView) {
        if let Some(ig) =
            crate::interference::InterferenceGraph::build(self.apps, self.arch, genome)
        {
            ig.diagnose(self.apps, genome, r);
        }
    }

    /// The processor kinds present on the platform, as a dense bitmap.
    fn present_kinds(&self) -> Vec<bool> {
        let mut present = vec![false; self.arch.num_kinds()];
        for (_, p) in self.arch.processors() {
            present[p.kind.index()] = true;
        }
        present
    }

    /// The smallest WCET of a task over the kinds actually present on the
    /// platform; falls back to the minimum over all supported kinds when the
    /// task is unmappable (that case is reported separately as MC0113).
    fn min_wcet_ticks(&self, t: &mcmap_model::Task, present: &[bool]) -> u64 {
        let on_platform = t
            .supported_kinds()
            .filter(|k| present.get(k.index()).copied().unwrap_or(false))
            .filter_map(|k| t.exec_on(k))
            .map(|b| b.wcet.ticks())
            .min();
        on_platform
            .or_else(|| {
                t.supported_kinds()
                    .filter_map(|k| t.exec_on(k))
                    .map(|b| b.wcet.ticks())
                    .min()
            })
            .unwrap_or(0)
    }

    // --- pass 1: graph structure (MC0001/2/3/6/7/14/15) -------------------

    /// Validates the graph skeleton of every application. Returns one
    /// `is_cyclic` flag per application for downstream passes.
    fn pass_graph_structure(&self, r: &mut LintReport) -> Vec<bool> {
        const PASS: &str = "graph-structure";
        if self.apps.num_apps() == 0 {
            r.push(
                Diagnostic::error(
                    "MC0014",
                    PASS,
                    EntityRef::none(),
                    "application set is empty",
                )
                .with_suggestion("add at least one task graph to the set"),
            );
        }
        let mut cyclic = vec![false; self.apps.num_apps()];
        for (a, app) in self.apps.apps() {
            if app.period().is_zero() {
                r.push(
                    Diagnostic::error(
                        "MC0006",
                        PASS,
                        EntityRef::app(a),
                        format!("application '{}' has a zero period", app.name()),
                    )
                    .with_suggestion("set a positive period"),
                );
            }
            if app.deadline().is_zero() {
                r.push(
                    Diagnostic::error(
                        "MC0007",
                        PASS,
                        EntityRef::app(a),
                        format!("application '{}' has a zero deadline", app.name()),
                    )
                    .with_suggestion("set a positive deadline (defaults to the period)"),
                );
            }
            if app.deadline() > app.period() {
                r.push(
                    Diagnostic::error(
                        "MC0015",
                        PASS,
                        EntityRef::app(a),
                        format!(
                            "application '{}' has deadline {} beyond its period {}",
                            app.name(),
                            app.deadline(),
                            app.period()
                        ),
                    )
                    .with_suggestion("the analyses assume constrained deadlines (D ≤ T)"),
                );
            }
            for (c, ch) in app.channels() {
                let n = app.num_tasks();
                let dangling = [ch.src, ch.dst].into_iter().find(|end| end.index() >= n);
                if let Some(end) = dangling {
                    r.push(
                        Diagnostic::error(
                            "MC0002",
                            PASS,
                            EntityRef::channel(a, c),
                            format!("channel {c} references nonexistent task {end}"),
                        )
                        .with_suggestion(format!(
                            "task indices must be below {n}; remove or retarget the channel"
                        )),
                    );
                } else if ch.src == ch.dst {
                    r.push(
                        Diagnostic::error(
                            "MC0003",
                            PASS,
                            EntityRef::channel(a, c),
                            format!("channel {c} connects task {} to itself", ch.src),
                        )
                        .with_suggestion("self-dependencies are implicit; remove the channel"),
                    );
                }
            }
            if let Some(task) = find_cycle(app) {
                cyclic[a.index()] = true;
                r.push(
                    Diagnostic::error(
                        "MC0001",
                        PASS,
                        EntityRef::task(a, task),
                        format!(
                            "application '{}' contains a dependency cycle through {task}",
                            app.name()
                        ),
                    )
                    .with_suggestion("break the cycle by removing one of its back edges"),
                );
            }
        }
        cyclic
    }

    // --- pass 2: criticality annotations (MC0008/9) -----------------------

    fn pass_criticality(&self, r: &mut LintReport) {
        const PASS: &str = "criticality";
        for (a, app) in self.apps.apps() {
            match app.criticality() {
                Criticality::NonDroppable { max_failure_rate } => {
                    if !(max_failure_rate > 0.0 && max_failure_rate <= 1.0) {
                        r.push(
                            Diagnostic::error(
                                "MC0008",
                                PASS,
                                EntityRef::app(a),
                                format!(
                                    "reliability bound {max_failure_rate} of '{}' is outside (0, 1]",
                                    app.name()
                                ),
                            )
                            .with_suggestion(
                                "failure-rate bounds are probabilities per hyperperiod",
                            ),
                        );
                    }
                }
                Criticality::Droppable { service } => {
                    if !(service.is_finite() && service > 0.0) {
                        r.push(
                            Diagnostic::error(
                                "MC0009",
                                PASS,
                                EntityRef::app(a),
                                format!(
                                    "service value {service} of '{}' is not finite and positive",
                                    app.name()
                                ),
                            )
                            .with_suggestion(
                                "droppable applications need a positive service value",
                            ),
                        );
                    }
                }
            }
        }
    }

    // --- pass 3: execution bounds (MC0004/5/105) --------------------------

    fn pass_exec_bounds(&self, r: &mut LintReport) {
        const PASS: &str = "exec-bounds";
        for (a, app) in self.apps.apps() {
            for (t, task) in app.tasks() {
                if task.supported_kinds().next().is_none() {
                    r.push(
                        Diagnostic::error(
                            "MC0004",
                            PASS,
                            EntityRef::task(a, t),
                            format!("task '{}' has no execution profile for any kind", task.name),
                        )
                        .with_suggestion("add at least one (kind, [bcet, wcet]) profile"),
                    );
                    continue;
                }
                let mut zero_wcet = false;
                for k in task.supported_kinds() {
                    let b = task.exec_on(k).expect("supported kind has bounds");
                    if b.bcet > b.wcet {
                        r.push(
                            Diagnostic::error(
                                "MC0005",
                                PASS,
                                EntityRef::task(a, t),
                                format!(
                                    "task '{}' has inverted bounds on kind {}: bcet {} > wcet {}",
                                    task.name,
                                    k.index(),
                                    b.bcet,
                                    b.wcet
                                ),
                            )
                            .with_suggestion("swap the bounds or fix the profile data"),
                        );
                    }
                    zero_wcet |= b.wcet.is_zero();
                }
                if zero_wcet {
                    r.push(
                        Diagnostic::warning(
                            "MC0105",
                            PASS,
                            EntityRef::task(a, t),
                            format!(
                                "task '{}' has a zero WCET profile; it is invisible to the \
                                 schedulability and reliability analyses",
                                task.name
                            ),
                        )
                        .with_suggestion("use a positive WCET unless the task is a placeholder"),
                    );
                }
            }
        }
    }

    // --- pass 4: platform sanity (MC0010/11/12/13) ------------------------

    fn pass_platform(&self, r: &mut LintReport) {
        const PASS: &str = "platform";
        if self.arch.num_processors() == 0 {
            r.push(
                Diagnostic::error(
                    "MC0010",
                    PASS,
                    EntityRef::none(),
                    "architecture has no processors",
                )
                .with_suggestion("add at least one processing element"),
            );
        }
        if self.arch.fabric().bandwidth == 0 {
            r.push(
                Diagnostic::error(
                    "MC0011",
                    PASS,
                    EntityRef::none(),
                    "communication fabric bandwidth is zero",
                )
                .with_suggestion("set a positive bandwidth (bytes per tick)"),
            );
        }
        for (p, proc) in self.arch.processors() {
            if !(proc.fault_rate.is_finite() && proc.fault_rate >= 0.0) {
                r.push(
                    Diagnostic::error(
                        "MC0012",
                        PASS,
                        EntityRef::proc(p),
                        format!(
                            "processor '{}' has invalid fault rate {}",
                            proc.name, proc.fault_rate
                        ),
                    )
                    .with_suggestion("fault rates are expected faults per tick, λ ≥ 0"),
                );
            }
            for (label, value) in [("static", proc.stat_power), ("dynamic", proc.dyn_power)] {
                if !(value.is_finite() && value >= 0.0) {
                    r.push(
                        Diagnostic::error(
                            "MC0013",
                            PASS,
                            EntityRef::proc(p),
                            format!(
                                "processor '{}' has invalid {label} power {value}",
                                proc.name
                            ),
                        )
                        .with_suggestion("power figures must be finite and non-negative"),
                    );
                }
            }
        }
    }

    // --- pass 5: platform fit (MC0113/104) --------------------------------

    fn pass_platform_fit(&self, r: &mut LintReport) {
        const PASS: &str = "platform-fit";
        let present = self.present_kinds();
        for (a, app) in self.apps.apps() {
            for (t, task) in app.tasks() {
                let mappable = task
                    .supported_kinds()
                    .any(|k| present.get(k.index()).copied().unwrap_or(false));
                if !mappable && task.supported_kinds().next().is_some() {
                    let kinds: Vec<String> = task
                        .supported_kinds()
                        .map(|k| k.index().to_string())
                        .collect();
                    r.push(
                        Diagnostic::error(
                            "MC0113",
                            PASS,
                            EntityRef::task(a, t),
                            format!(
                                "task '{}' only runs on kind(s) {{{}}} but the platform \
                                 provides none of them",
                                task.name,
                                kinds.join(", ")
                            ),
                        )
                        .with_suggestion(
                            "add a processor of a supported kind or extend the task's profiles",
                        ),
                    );
                }
            }
        }
        // Orphan PEs: no task anywhere can execute on this processor's kind.
        for (p, proc) in self.arch.processors() {
            let used = self
                .apps
                .task_refs()
                .iter()
                .any(|&tr| self.apps.task(tr).runs_on(proc.kind));
            if !used {
                r.push(
                    Diagnostic::hint(
                        "MC0104",
                        PASS,
                        EntityRef::proc(p),
                        format!(
                            "no task can execute on processor '{}' (kind {}); it only \
                             contributes static power",
                            proc.name,
                            proc.kind.index()
                        ),
                    )
                    .with_suggestion("remove the processor or add tasks that can use it"),
                );
            }
        }
    }

    // --- pass 6: utilization (MC0103) -------------------------------------

    fn pass_utilization(&self, r: &mut LintReport) {
        const PASS: &str = "utilization";
        let procs = self.arch.num_processors();
        if procs == 0 {
            return; // reported as MC0010
        }
        let present = self.present_kinds();
        let mut util = 0.0f64;
        for (_, app) in self.apps.apps() {
            if app.period().is_zero() {
                return; // reported as MC0006; utilization is undefined
            }
            for (_, task) in app.tasks() {
                util += self.min_wcet_ticks(task, &present) as f64 / app.period().as_f64();
            }
        }
        let capacity = procs as f64;
        if util > capacity {
            r.push(
                Diagnostic::error(
                    "MC0103",
                    PASS,
                    EntityRef::none(),
                    format!(
                        "total optimistic utilization {util:.2} exceeds the platform \
                         capacity of {procs} processor(s); no mapping can be schedulable"
                    ),
                )
                .with_suggestion("add processors, relax periods, or drop applications"),
            );
        } else if util > 0.95 * capacity {
            r.push(
                Diagnostic::warning(
                    "MC0103",
                    PASS,
                    EntityRef::none(),
                    format!(
                        "total optimistic utilization {util:.2} is above 95 % of the \
                         platform capacity ({procs} processor(s)); hardening overheads \
                         will likely make the system unschedulable"
                    ),
                )
                .with_suggestion("leave headroom for re-execution and replication overheads"),
            );
        }
    }

    // --- pass 7: deadline reachability (MC0102) ---------------------------

    /// Flags applications whose critical path — with every task on its
    /// fastest available kind and all communication free — already misses
    /// the deadline. This is a certificate of infeasibility: every real
    /// mapping is at least this slow.
    fn pass_deadline(&self, r: &mut LintReport, cyclic: &[bool]) {
        const PASS: &str = "deadline";
        let present = self.present_kinds();
        for (a, app) in self.apps.apps() {
            if cyclic.get(a.index()).copied().unwrap_or(false) || app.deadline().is_zero() {
                continue; // structure errors already reported
            }
            let n = app.num_tasks();
            let mut dist = vec![0u64; n];
            let mut best = 0u64;
            for &t in app.topological_order() {
                let wcet = self.min_wcet_ticks(app.task(t), &present);
                let longest_pred = app
                    .predecessors(t)
                    .filter(|p| p.index() < n && *p != t)
                    .map(|p| dist[p.index()])
                    .max()
                    .unwrap_or(0);
                dist[t.index()] = longest_pred.saturating_add(wcet);
                best = best.max(dist[t.index()]);
            }
            if best > app.deadline().ticks() {
                r.push(
                    Diagnostic::error(
                        "MC0102",
                        PASS,
                        EntityRef::app(a),
                        format!(
                            "the critical path of '{}' needs at least {best} ticks even \
                             with every task on its fastest kind and free communication, \
                             but the deadline is {}",
                            app.name(),
                            app.deadline()
                        ),
                    )
                    .with_suggestion("relax the deadline or shorten the task chain"),
                );
            }
        }
    }

    // --- pass 8: reliability satisfiability (MC0101) ----------------------

    /// Flags non-droppable applications whose reliability bound cannot be
    /// met even by the *best possible* hardening within the configured
    /// limits: every task on its most reliable processor, the full
    /// re-execution budget or the full replica budget applied, faults
    /// assumed independent, and voters assumed perfect. The real failure
    /// probability of any concrete design is at least the bound computed
    /// here, so exceeding the application's target is a certificate of
    /// unsatisfiability.
    fn pass_reliability(&self, r: &mut LintReport) {
        const PASS: &str = "reliability";
        if self.arch.num_processors() == 0 {
            return; // reported as MC0010
        }
        for (a, app) in self.apps.apps() {
            let Criticality::NonDroppable { max_failure_rate } = app.criticality() else {
                continue;
            };
            if !(max_failure_rate > 0.0 && max_failure_rate <= 1.0) {
                continue; // reported as MC0008
            }
            let mut log_success = 0.0f64; // Σ ln(1 − best_v)
            let mut impossible = false;
            for (_, task) in app.tasks() {
                let Some(best) = self.best_task_failure_prob(task) else {
                    continue; // unmappable tasks are reported as MC0113
                };
                if best >= 1.0 {
                    impossible = true;
                    break;
                }
                log_success += (1.0 - best).ln();
            }
            let app_failure_lower_bound = if impossible {
                1.0
            } else {
                1.0 - log_success.exp()
            };
            if app_failure_lower_bound > max_failure_rate {
                r.push(
                    Diagnostic::error(
                        "MC0101",
                        PASS,
                        EntityRef::app(a),
                        format!(
                            "the reliability bound {max_failure_rate:e} of '{}' is \
                             unsatisfiable: even the strongest hardening within the \
                             limits (≤{} re-executions, ≤{} replicas) leaves a failure \
                             probability of at least {app_failure_lower_bound:e}",
                            app.name(),
                            self.max_reexec,
                            self.max_replicas
                        ),
                    )
                    .with_suggestion(
                        "relax the bound, use more reliable processors, or raise the \
                         hardening limits",
                    ),
                );
            }
        }
    }

    /// The smallest achievable failure probability of one task: most
    /// reliable processor, then the better of maximal re-execution and
    /// maximal majority-voted replication. `None` if no processor can run
    /// the task.
    fn best_task_failure_prob(&self, task: &mcmap_model::Task) -> Option<f64> {
        let p_min = self
            .arch
            .processors()
            .filter_map(|(_, proc)| {
                task.exec_on(proc.kind)
                    .map(|b| proc.fault_probability(b.wcet).clamp(0.0, 1.0))
            })
            .fold(f64::INFINITY, f64::min);
        if !p_min.is_finite() {
            return None;
        }
        let reexec = p_min.powi(i32::from(self.max_reexec) + 1);
        let copies = 1 + usize::from(self.max_replicas);
        let replicated = if copies >= 2 {
            majority_failure_prob(&vec![p_min; copies])
        } else {
            p_min
        };
        Some(reexec.min(replicated).min(p_min))
    }

    // --- pass 9: hardening spec (MC0106/107/108/109/110/112) --------------

    fn pass_hardening_spec(&self, r: &mut LintReport, plan: &HardeningPlan) {
        const PASS: &str = "hardening-spec";
        if plan.len() != self.apps.num_tasks() {
            r.push(
                Diagnostic::error(
                    "MC0109",
                    PASS,
                    EntityRef::none(),
                    format!(
                        "hardening plan covers {} task(s) but the application set has {}",
                        plan.len(),
                        self.apps.num_tasks()
                    ),
                )
                .with_suggestion("build the plan from the same AppSet it is applied to"),
            );
            return;
        }
        let procs = self.arch.num_processors();
        for (flat, h) in plan.iter() {
            let tr = self.apps.task_refs()[flat];
            let entity = EntityRef::task(tr.app, tr.task);
            if u16::from(h.reexecutions) > u16::from(self.max_reexec)
                || h.replication.active_copies() + h.replication.standby_copies()
                    > 1 + usize::from(self.max_replicas)
            {
                r.push(
                    Diagnostic::error(
                        "MC0112",
                        PASS,
                        entity,
                        format!(
                            "hardening of task {tr} exceeds the configured limits \
                             (≤{} re-executions, ≤{} replicas)",
                            self.max_reexec, self.max_replicas
                        ),
                    )
                    .with_suggestion("raise the limits or weaken the plan"),
                );
            }
            let refs: Vec<ProcId> = match &h.replication {
                Replication::None => Vec::new(),
                Replication::Active { replicas, voter } => {
                    let mut v = replicas.clone();
                    v.push(*voter);
                    v
                }
                Replication::Passive {
                    actives,
                    standbys,
                    voter,
                } => {
                    let mut v = actives.clone();
                    v.extend_from_slice(standbys);
                    v.push(*voter);
                    v
                }
            };
            for p in &refs {
                if p.index() >= procs {
                    r.push(
                        Diagnostic::error(
                            "MC0110",
                            PASS,
                            entity.with_proc(*p),
                            format!(
                                "hardening of task {tr} references processor {p} but the \
                                 platform has only {procs}"
                            ),
                        )
                        .with_suggestion("replicas and voters must name existing processors"),
                    );
                }
            }
            // Colocated replicas defeat the purpose of spatial redundancy.
            let mut bodies: Vec<ProcId> = match &h.replication {
                Replication::None => Vec::new(),
                Replication::Active { replicas, .. } => replicas.clone(),
                Replication::Passive {
                    actives, standbys, ..
                } => {
                    let mut v = actives.clone();
                    v.extend_from_slice(standbys);
                    v
                }
            };
            bodies.sort_unstable_by_key(|p| p.index());
            let before = bodies.len();
            bodies.dedup();
            if bodies.len() < before {
                r.push(
                    Diagnostic::warning(
                        "MC0107",
                        PASS,
                        entity,
                        format!(
                            "task {tr} places several replicas on the same processor; a \
                             single fault can take out multiple copies"
                        ),
                    )
                    .with_suggestion("spread replicas across distinct processors"),
                );
            }
            if h.is_hardened() && self.apps.app(tr.app).criticality().is_droppable() {
                r.push(
                    Diagnostic::hint(
                        "MC0108",
                        PASS,
                        entity,
                        format!(
                            "task {tr} of droppable application '{}' is hardened; droppable \
                             applications carry no reliability bound, so this only costs \
                             time and power",
                            self.apps.app(tr.app).name()
                        ),
                    )
                    .with_suggestion("reserve hardening for non-droppable applications"),
                );
            }
        }
    }

    // --- pass 10: genome shape (MC0106/109/110/111/112) -------------------

    fn pass_genome(&self, r: &mut LintReport, g: &GenomeView) {
        const PASS: &str = "genome-shape";
        let procs = self.arch.num_processors();
        let droppable = self.apps.droppable_apps().count();
        let mut shape_ok = true;
        for (what, got, want) in [
            ("allocation bits", g.alloc.len(), procs),
            ("keep bits", g.keep.len(), droppable),
            ("task genes", g.genes.len(), self.apps.num_tasks()),
        ] {
            if got != want {
                shape_ok = false;
                r.push(
                    Diagnostic::error(
                        "MC0109",
                        PASS,
                        EntityRef::none(),
                        format!("genome has {got} {what} but the system needs {want}"),
                    )
                    .with_suggestion("regenerate the genome from this system's GenomeSpace"),
                );
            }
        }
        if !shape_ok {
            return; // per-gene checks would index out of range
        }
        if !g.alloc.iter().any(|&b| b) {
            r.push(
                Diagnostic::error(
                    "MC0111",
                    PASS,
                    EntityRef::none(),
                    "no processor is allocated; nothing can execute",
                )
                .with_suggestion("allocate at least one processor (repair does this)"),
            );
        }
        let allocated = |p: ProcId| p.index() < procs && g.alloc[p.index()];
        for (flat, gene) in g.genes.iter().enumerate() {
            let tr = self.apps.task_refs()[flat];
            let task = self.apps.task(tr);
            let entity = EntityRef::task(tr.app, tr.task);
            let check_body = |r: &mut LintReport, role: &str, p: ProcId| {
                if p.index() >= procs {
                    r.push(
                        Diagnostic::error(
                            "MC0110",
                            PASS,
                            entity.with_proc(p),
                            format!(
                                "{role} of task {tr} names processor {p} but the platform \
                                 has only {procs}"
                            ),
                        )
                        .with_suggestion("bindings must name existing processors"),
                    );
                } else if !g.alloc[p.index()] {
                    r.push(
                        Diagnostic::error(
                            "MC0110",
                            PASS,
                            entity.with_proc(p),
                            format!("{role} of task {tr} sits on unallocated processor {p}"),
                        )
                        .with_suggestion("allocate the processor or rebind (repair does this)"),
                    );
                } else if !task.runs_on(self.arch.processor(p).kind) {
                    r.push(
                        Diagnostic::error(
                            "MC0110",
                            PASS,
                            entity.with_proc(p),
                            format!(
                                "{role} of task {tr} sits on processor {p} of kind {}, \
                                 which the task has no execution profile for",
                                self.arch.processor(p).kind.index()
                            ),
                        )
                        .with_suggestion("bind the task to a kind-compatible processor"),
                    );
                }
            };
            check_body(r, "primary binding", gene.binding);
            match &gene.hardening {
                HardeningView::None => {}
                HardeningView::Reexec(k) => {
                    if *k > self.max_reexec {
                        r.push(
                            Diagnostic::error(
                                "MC0112",
                                PASS,
                                entity,
                                format!(
                                    "task {tr} uses {k} re-executions but the space allows \
                                     at most {}",
                                    self.max_reexec
                                ),
                            )
                            .with_suggestion("clamp the gene to the configured budget"),
                        );
                    }
                }
                h @ (HardeningView::Active { .. } | HardeningView::Passive { .. }) => {
                    if h.extra_copies() > usize::from(self.max_replicas) {
                        r.push(
                            Diagnostic::error(
                                "MC0112",
                                PASS,
                                entity,
                                format!(
                                    "task {tr} uses {} extra replicas but the space allows \
                                     at most {}",
                                    h.extra_copies(),
                                    self.max_replicas
                                ),
                            )
                            .with_suggestion("clamp the gene to the configured budget"),
                        );
                    }
                    for p in h.referenced_procs() {
                        if Some(p) == h.voter() {
                            continue; // the voter is checked separately below
                        }
                        check_body(r, "replica", p);
                    }
                    if let Some(voter) = h.voter() {
                        if !allocated(voter) {
                            r.push(
                                Diagnostic::error(
                                    "MC0106",
                                    PASS,
                                    entity.with_proc(voter),
                                    format!(
                                        "voter of task {tr} sits on {} processor {voter}",
                                        if voter.index() >= procs {
                                            "nonexistent"
                                        } else {
                                            "unallocated"
                                        }
                                    ),
                                )
                                .with_suggestion(
                                    "place the voter on an allocated processor (repair does this)",
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Convenience wrapper: lints a system with the default limits.
pub fn lint_system(apps: &AppSet, arch: &Architecture) -> LintReport {
    Linter::new(apps, arch).lint()
}

/// Cycle detection over the in-range, non-self-loop channels of one graph
/// (Kahn's algorithm). Returns a task on a cycle, if any. Works on
/// unvalidated graphs, whose stored topological order is only best-effort.
fn find_cycle(app: &TaskGraph) -> Option<TaskId> {
    let n = app.num_tasks();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (_, c) in app.channels() {
        if c.src.index() >= n || c.dst.index() >= n || c.src == c.dst {
            continue;
        }
        indeg[c.dst.index()] += 1;
        adj[c.src.index()].push(c.dst.index());
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut emitted = 0usize;
    while let Some(u) = queue.pop() {
        emitted += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if emitted == n {
        None
    } else {
        (0..n).find(|&i| indeg[i] > 0).map(TaskId::new)
    }
}

/// Returns `true` if the processor kind exists on the platform (used by
/// documentation examples and downstream crates).
pub fn kind_present(arch: &Architecture, kind: ProcKind) -> bool {
    arch.processors().any(|(_, p)| p.kind == kind)
}

/// Looks up the application id of a flat task index (helper shared by the
/// report-producing integrations).
pub fn app_of_flat(apps: &AppSet, flat: usize) -> Option<AppId> {
    apps.task_refs().get(flat).map(|r| r.app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GeneView;
    use mcmap_model::{ExecBounds, Processor, Task, Time};

    fn arch(n: usize, rate: f64) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, rate))
            .build()
            .unwrap()
    }

    fn simple_apps() -> AppSet {
        let g = TaskGraph::builder("a", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-4,
            })
            .task(Task::new("t0").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .task(Task::new("t1").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .channel(0, 1, 8)
            .build()
            .unwrap();
        AppSet::new(vec![g]).unwrap()
    }

    #[test]
    fn valid_system_is_clean() {
        let apps = simple_apps();
        let arch = arch(2, 1e-7);
        let report = Linter::new(&apps, &arch).lint();
        assert!(!report.has_errors(), "unexpected: {}", report.render_text());
    }

    #[test]
    fn cycle_is_reported() {
        let g = TaskGraph::builder("c", Time::from_ticks(100))
            .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(1))))
            .channel(0, 1, 1)
            .channel(1, 0, 1)
            .build_unvalidated();
        let apps = AppSet::new_unvalidated(vec![g]);
        let report = Linter::new(&apps, &arch(1, 0.0)).lint();
        assert!(report.has_code("MC0001"), "{}", report.render_text());
    }

    #[test]
    fn unreachable_deadline_is_reported() {
        // Chain of two 60-tick tasks, deadline 100 < 120.
        let g = TaskGraph::builder("d", Time::from_ticks(100))
            .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(60))))
            .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(60))))
            .channel(0, 1, 1)
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let report = Linter::new(&apps, &arch(4, 0.0)).lint();
        assert!(report.has_code("MC0102"), "{}", report.render_text());
        // MC0103 may or may not fire; MC0102 must.
    }

    #[test]
    fn unsatisfiable_reliability_is_reported() {
        let g = TaskGraph::builder("r", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-300,
            })
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let report = Linter::new(&apps, &arch(2, 1e-5)).lint();
        assert!(report.has_code("MC0101"), "{}", report.render_text());
    }

    #[test]
    fn satisfiable_reliability_is_not_flagged() {
        // p ≈ 1e-3 per run; triplication gives ~3e-6 ≤ 1e-4.
        let g = TaskGraph::builder("r", Time::from_ticks(1_000))
            .criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-4,
            })
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let report = Linter::new(&apps, &arch(3, 1e-5)).lint();
        assert!(!report.has_code("MC0101"), "{}", report.render_text());
    }

    #[test]
    fn overcommitted_utilization_is_an_error() {
        let g = TaskGraph::builder("u", Time::from_ticks(100))
            .task(Task::new("x").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(90))))
            .task(Task::new("y").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(90))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let report = Linter::new(&apps, &arch(1, 0.0)).lint();
        assert!(report.has_code("MC0103"), "{}", report.render_text());
        assert!(report.has_errors());
    }

    #[test]
    fn orphan_pe_is_a_hint() {
        let arch = Architecture::builder()
            .processor(Processor::new("p0", ProcKind::new(0), 1.0, 1.0, 0.0))
            .processor(Processor::new("odd", ProcKind::new(1), 1.0, 1.0, 0.0))
            .build()
            .unwrap();
        let g = TaskGraph::builder("a", Time::from_ticks(100))
            .task(
                Task::new("t").with_exec(ProcKind::new(0), ExecBounds::exact(Time::from_ticks(1))),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let report = Linter::new(&apps, &arch).lint();
        assert!(report.has_code("MC0104"));
        assert!(!report.has_errors());
    }

    #[test]
    fn unmappable_task_is_an_error() {
        let arch = arch(2, 0.0); // only kind 0
        let g = TaskGraph::builder("a", Time::from_ticks(100))
            .task(
                Task::new("t").with_exec(ProcKind::new(1), ExecBounds::exact(Time::from_ticks(1))),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let report = Linter::new(&apps, &arch).lint();
        assert!(report.has_code("MC0113"), "{}", report.render_text());
    }

    #[test]
    fn hardening_spec_findings() {
        use mcmap_hardening::TaskHardening;
        let apps = simple_apps();
        let arch = arch(2, 1e-7);
        let mut plan = HardeningPlan::unhardened(&apps);
        // Colocated replicas + out-of-range voter + over-budget copies.
        plan.set_by_flat_index(
            0,
            TaskHardening::active(
                vec![ProcId::new(1), ProcId::new(1), ProcId::new(1)],
                ProcId::new(9),
            ),
        );
        let report = Linter::new(&apps, &arch).lint_plan(&plan);
        assert!(report.has_code("MC0107"), "{}", report.render_text());
        assert!(report.has_code("MC0110"));
        assert!(report.has_code("MC0112"));
    }

    #[test]
    fn plan_shape_mismatch() {
        let apps = simple_apps();
        let arch = arch(2, 1e-7);
        let plan = HardeningPlan::from_entries(vec![]);
        let report = Linter::new(&apps, &arch).lint_plan(&plan);
        assert_eq!(report.error_codes(), vec!["MC0109"]);
    }

    #[test]
    fn genome_pass_catches_everything() {
        let apps = simple_apps();
        let arch = arch(2, 1e-7);
        let g = GenomeView {
            alloc: vec![true, false],
            keep: vec![],
            genes: vec![
                GeneView {
                    binding: ProcId::new(1), // unallocated
                    hardening: HardeningView::Active {
                        replicas: vec![ProcId::new(5)], // out of range
                        voter: ProcId::new(1),          // unallocated voter
                    },
                },
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::Reexec(9), // over budget
                },
            ],
        };
        let report = Linter::new(&apps, &arch).lint_genome(&g);
        for code in ["MC0110", "MC0106", "MC0112"] {
            assert!(
                report.has_code(code),
                "missing {code}: {}",
                report.render_text()
            );
        }
    }

    #[test]
    fn genome_shape_mismatch_short_circuits() {
        let apps = simple_apps();
        let arch = arch(2, 1e-7);
        let g = GenomeView {
            alloc: vec![true],
            keep: vec![true],
            genes: vec![],
        };
        let report = Linter::new(&apps, &arch).lint_genome(&g);
        assert_eq!(report.error_codes(), vec!["MC0109"]);
        assert_eq!(report.count(crate::Severity::Error), 3);
    }

    #[test]
    fn empty_genome_allocation_is_an_error() {
        let apps = simple_apps();
        let arch = arch(2, 1e-7);
        let g = GenomeView {
            alloc: vec![false, false],
            keep: vec![],
            genes: vec![
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::None,
                },
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::None,
                },
            ],
        };
        let report = Linter::new(&apps, &arch).lint_genome(&g);
        assert!(report.has_code("MC0111"));
    }

    #[test]
    fn helpers_behave() {
        let apps = simple_apps();
        let a = arch(1, 0.0);
        assert!(kind_present(&a, ProcKind::new(0)));
        assert!(!kind_present(&a, ProcKind::new(3)));
        assert_eq!(app_of_flat(&apps, 0), Some(AppId::new(0)));
        assert_eq!(app_of_flat(&apps, 99), None);
    }
}
