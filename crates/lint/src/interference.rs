//! Static interference/dependence analysis over a mapped candidate.
//!
//! Given a chromosome ([`GenomeView`]) for a system, this pass builds the
//! **interference graph**: one node per application, one edge per pair of
//! applications that place work on a shared processor (primary bindings,
//! replicas, standbys, and voters all count — a preempted voter delays the
//! hardened task just like a preempted primary). On top of the graph it
//! computes, via a monotone closure, the sound **may-affect set** of every
//! class of genome edit: the set of applications whose WCRT analysis could
//! possibly change when that edit is applied. Everything outside the closure
//! is provably unaffected, which is what powers the delta-analysis reuse in
//! `mcmap-core`.
//!
//! ## Soundness model
//!
//! The WCRT backend couples tasks only through shared-processor preemption
//! (the fabric models contention-free constant channel delays), and the
//! mixed-criticality scenario fold couples applications only through the
//! per-scenario execution-bound vectors. Hence:
//!
//! * An edit to a task's gene (binding or hardening) may change the bounds
//!   and placement of its own application, which may shift busy periods on
//!   every processor that application touches, which may cascade to any
//!   application sharing those processors, transitively. The closure over
//!   shared-PE edges from the owning application is therefore a sound
//!   over-approximation.
//! * A drop-bit flip changes the owning application's task rows in **every**
//!   scenario vector, and cascades identically through shared PEs.
//! * An allocation-bit flip never changes the WCRT analysis (the analysis
//!   reads the mapping, not the allocation vector); it only re-weights the
//!   power objective. Its analysis-affect set is empty.
//!
//! The closure `F(S) = S ∪ neighbors(S)` is monotone on the subset lattice
//! (`S ⊆ T ⇒ F(S) ⊆ F(T)`), so iterating it from the seed terminates at the
//! least fixed point — the connected component(s) containing the seed.
//!
//! The analysis is *advisory by itself*: the core crate verifies every reuse
//! decision against decoded-artifact equality, so a bug here can cost
//! precision but never correctness.

use crate::diag::{Diagnostic, EntityRef, LintReport};
use crate::genome::{GenomeView, HardeningView};
use mcmap_model::{AppId, AppSet, Architecture, ProcId};

/// Name of the lint pass that surfaces interference diagnostics.
const PASS: &str = "interference";

/// One class of genome edit, used to query [`InterferenceGraph::affect`].
///
/// `MappingGene` and `HardeningDegree` both identify the task by its flat
/// index in the owning `AppSet`; `DropBit` names the droppable application
/// whose keep bit flips; `AllocBit` names the processor whose allocation
/// bit flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenomeEdit {
    /// The task's primary binding changed.
    MappingGene {
        /// Flat task index in the owning `AppSet`.
        flat: usize,
    },
    /// The task's hardening gene (technique, degree, or placement) changed.
    HardeningDegree {
        /// Flat task index in the owning `AppSet`.
        flat: usize,
    },
    /// The keep bit of a droppable application flipped.
    DropBit {
        /// The droppable application whose keep bit flipped.
        app: AppId,
    },
    /// A processor allocation bit flipped.
    AllocBit {
        /// The processor whose allocation bit flipped.
        proc: ProcId,
    },
}

/// The may-affect set of one genome edit: which applications' analyses may
/// change, and whether the change can reach the scenario fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffectSet {
    /// Applications whose WCRT analysis may change, sorted by id.
    pub apps: Vec<AppId>,
    /// `true` when every mixed-criticality scenario may be affected (any
    /// edit that changes an execution-bound row is visible in every
    /// scenario vector containing that row); `false` when no scenario is
    /// affected (power-only edits).
    pub all_scenarios: bool,
}

impl AffectSet {
    /// The number of (app, scenario-class) pairs in the set, collapsed to
    /// the per-app granularity the DSE counters use.
    pub fn size(&self) -> usize {
        if self.all_scenarios {
            self.apps.len()
        } else {
            0
        }
    }
}

/// The interference graph of one decoded candidate.
///
/// Built with [`InterferenceGraph::build`]; query with
/// [`affect`](InterferenceGraph::affect) /
/// [`closure`](InterferenceGraph::closure), render with
/// [`render_text`](InterferenceGraph::render_text),
/// [`to_json`](InterferenceGraph::to_json), or
/// [`to_dot`](InterferenceGraph::to_dot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceGraph {
    num_procs: usize,
    /// Per-app placement set: every processor referenced by any gene of the
    /// app (binding + replicas + standbys + voter), sorted and deduplicated.
    placement: Vec<Vec<ProcId>>,
    /// Per-app adjacency (apps sharing at least one processor), sorted.
    adj: Vec<Vec<usize>>,
    /// Per-app droppable flag.
    droppable: Vec<bool>,
    /// Per-app "carries hardening" flag.
    hardened: Vec<bool>,
}

impl InterferenceGraph {
    /// Builds the interference graph of `genome` over `apps`/`arch`.
    ///
    /// Returns `None` when the genome's shape does not match the system
    /// (wrong gene, keep, or alloc count) — the genome-shape pass reports
    /// that as MC0109.
    pub fn build(apps: &AppSet, arch: &Architecture, genome: &GenomeView) -> Option<Self> {
        let num_apps = apps.num_apps();
        let num_procs = arch.num_processors();
        let droppable: Vec<bool> = apps
            .apps()
            .map(|(_, g)| g.criticality().is_droppable())
            .collect();
        let num_droppable = droppable.iter().filter(|&&d| d).count();
        if genome.genes.len() != apps.num_tasks()
            || genome.alloc.len() != num_procs
            || genome.keep.len() != num_droppable
        {
            return None;
        }

        let mut placement: Vec<Vec<ProcId>> = vec![Vec::new(); num_apps];
        let mut hardened = vec![false; num_apps];
        for (flat, gene) in genome.genes.iter().enumerate() {
            let a = apps.task_refs()[flat].app.index();
            placement[a].push(gene.binding);
            placement[a].extend(gene.hardening.referenced_procs());
            if gene.hardening != HardeningView::None {
                hardened[a] = true;
            }
        }
        for p in &mut placement {
            p.sort_unstable();
            p.dedup();
        }

        // apps-per-processor index, then pairwise adjacency from it. Genes
        // may reference nonexistent processors on malformed genomes (the
        // genome pass reports those as MC0110); such placements still count
        // as shared when two apps name the same phantom processor.
        let mut apps_on: Vec<Vec<usize>> = vec![Vec::new(); num_procs];
        let mut phantom: Vec<(ProcId, Vec<usize>)> = Vec::new();
        for (a, procs) in placement.iter().enumerate() {
            for p in procs {
                if p.index() < num_procs {
                    apps_on[p.index()].push(a);
                } else {
                    match phantom.iter_mut().find(|(q, _)| q == p) {
                        Some((_, v)) => v.push(a),
                        None => phantom.push((*p, vec![a])),
                    }
                }
            }
        }
        apps_on.extend(phantom.into_iter().map(|(_, v)| v));
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_apps];
        for colocated in &apps_on {
            for &a in colocated {
                for &b in colocated {
                    if a != b {
                        adj[a].push(b);
                    }
                }
            }
        }
        for n in &mut adj {
            n.sort_unstable();
            n.dedup();
        }

        Some(InterferenceGraph {
            num_procs,
            placement,
            adj,
            droppable,
            hardened,
        })
    }

    /// Number of applications (graph nodes).
    pub fn num_apps(&self) -> usize {
        self.placement.len()
    }

    /// The placement set of one application: every processor referenced by
    /// any of its genes, sorted.
    pub fn placements(&self, app: AppId) -> &[ProcId] {
        &self.placement[app.index()]
    }

    /// Returns `true` when the two applications share at least one
    /// processor (an interference edge).
    pub fn interferes(&self, a: AppId, b: AppId) -> bool {
        a != b && self.adj[a.index()].binary_search(&b.index()).is_ok()
    }

    /// The monotone closure of `seeds` under shared-PE interference: the
    /// least fixed point of `F(S) = S ∪ neighbors(S)`, i.e. every
    /// application reachable from a seed through shared processors. Sorted.
    pub fn closure(&self, seeds: &[AppId]) -> Vec<AppId> {
        let mut in_set = vec![false; self.num_apps()];
        let mut work: Vec<usize> = Vec::new();
        for s in seeds {
            if !in_set[s.index()] {
                in_set[s.index()] = true;
                work.push(s.index());
            }
        }
        while let Some(a) = work.pop() {
            for &b in &self.adj[a] {
                if !in_set[b] {
                    in_set[b] = true;
                    work.push(b);
                }
            }
        }
        (0..self.num_apps())
            .filter(|&a| in_set[a])
            .map(AppId::new)
            .collect()
    }

    /// The sound may-affect set of one genome edit (see the module docs for
    /// the soundness argument). `apps` maps flat task indices to owners.
    pub fn affect(&self, apps: &AppSet, edit: GenomeEdit) -> AffectSet {
        match edit {
            GenomeEdit::MappingGene { flat } | GenomeEdit::HardeningDegree { flat } => {
                let owner = apps.task_refs()[flat].app;
                AffectSet {
                    apps: self.closure(&[owner]),
                    all_scenarios: true,
                }
            }
            GenomeEdit::DropBit { app } => AffectSet {
                apps: self.closure(&[app]),
                all_scenarios: true,
            },
            GenomeEdit::AllocBit { .. } => AffectSet {
                apps: Vec::new(),
                all_scenarios: false,
            },
        }
    }

    /// All interference edges as `(a, b, shared processors)` with `a < b`.
    pub fn edges(&self) -> Vec<(AppId, AppId, Vec<ProcId>)> {
        let mut edges = Vec::new();
        for a in 0..self.num_apps() {
            for &b in &self.adj[a] {
                if a < b {
                    let shared: Vec<ProcId> = self.placement[a]
                        .iter()
                        .filter(|p| self.placement[b].binary_search(p).is_ok())
                        .copied()
                        .collect();
                    edges.push((AppId::new(a), AppId::new(b), shared));
                }
            }
        }
        edges
    }

    /// Appends the MC012x coupling diagnostics to `r`:
    ///
    /// * `MC0120` (warning): three or more applications form a
    ///   fully-connected interference clique — every edit to any of them
    ///   forces re-analysis of all of them, defeating incremental reuse.
    /// * `MC0121` (warning): a hardened non-droppable task shares a
    ///   processor with a droppable application — the hardening overhead
    ///   couples criticality levels, so dropping decisions and critical-app
    ///   response times can no longer be reasoned about independently.
    /// * `MC0122` (hint): an application shares no processor with any
    ///   other — an interference-free island that re-analyzes alone.
    pub fn diagnose(&self, apps: &AppSet, genome: &GenomeView, r: &mut LintReport) {
        let n = self.num_apps();
        // MC0120: the whole app set forms a clique (pairwise shared PEs).
        if n >= 3 {
            let clique = (0..n).all(|a| self.adj[a].len() == n - 1);
            if clique {
                r.push(
                    Diagnostic::warning(
                        "MC0120",
                        PASS,
                        EntityRef::none(),
                        format!(
                            "all {n} applications form a fully-connected interference \
                             clique: every pair shares a processor"
                        ),
                    )
                    .with_suggestion(
                        "spread applications over disjoint processors so edits \
                         re-analyze less of the system",
                    ),
                );
            }
        }
        // MC0121: hardening on a critical task couples criticality levels.
        for (flat, gene) in genome.genes.iter().enumerate() {
            let tr = apps.task_refs()[flat];
            if self.droppable[tr.app.index()] || gene.hardening == HardeningView::None {
                continue;
            }
            let mut procs = vec![gene.binding];
            procs.extend(gene.hardening.referenced_procs());
            procs.sort_unstable();
            procs.dedup();
            let coupled = procs.iter().find_map(|p| {
                (0..n)
                    .find(|&b| self.droppable[b] && self.placement[b].binary_search(p).is_ok())
                    .map(|b| (*p, b))
            });
            if let Some((p, b)) = coupled {
                r.push(
                    Diagnostic::warning(
                        "MC0121",
                        PASS,
                        EntityRef::task(tr.app, tr.task).with_proc(p),
                        format!(
                            "hardened critical task shares {p} with droppable \
                             application a{b}: hardening couples across criticality levels",
                        ),
                    )
                    .with_suggestion(
                        "place the hardened task's copies and voter on processors \
                         without droppable load",
                    ),
                );
            }
        }
        // MC0122: interference-free islands.
        if n >= 2 {
            for a in 0..n {
                if self.adj[a].is_empty() && !self.placement[a].is_empty() {
                    r.push(
                        Diagnostic::hint(
                            "MC0122",
                            PASS,
                            EntityRef::app(AppId::new(a)),
                            "application shares no processor with any other: an \
                             interference-free island",
                        )
                        .with_suggestion(
                            "edits to this application re-analyze only itself; no action \
                             needed",
                        ),
                    );
                }
            }
        }
    }

    /// Human-readable report: per-app placements, interference edges, and
    /// the per-app closure sizes.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "interference graph: {} app(s), {} processor(s), {} edge(s)\n",
            self.num_apps(),
            self.num_procs,
            self.edges().len()
        ));
        for a in 0..self.num_apps() {
            let procs: Vec<String> = self.placement[a].iter().map(|p| p.to_string()).collect();
            let closure = self.closure(&[AppId::new(a)]);
            out.push_str(&format!(
                "  a{}{}{}: on [{}], closure {} app(s)\n",
                a,
                if self.droppable[a] {
                    " (droppable)"
                } else {
                    ""
                },
                if self.hardened[a] { " (hardened)" } else { "" },
                procs.join(", "),
                closure.len()
            ));
        }
        for (a, b, shared) in self.edges() {
            let procs: Vec<String> = shared.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("  {a} -- {b} via [{}]\n", procs.join(", ")));
        }
        out
    }

    /// Machine-readable JSON report (hand-rolled; the build environment
    /// vendors no serialization crates).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"apps\":[");
        for a in 0..self.num_apps() {
            if a > 0 {
                out.push(',');
            }
            let procs: Vec<String> = self.placement[a]
                .iter()
                .map(|p| p.index().to_string())
                .collect();
            out.push_str(&format!(
                "{{\"app\":{},\"droppable\":{},\"hardened\":{},\"procs\":[{}],\"closure\":{}}}",
                a,
                self.droppable[a],
                self.hardened[a],
                procs.join(","),
                self.closure(&[AppId::new(a)]).len()
            ));
        }
        out.push_str("],\"edges\":[");
        for (i, (a, b, shared)) in self.edges().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let procs: Vec<String> = shared.iter().map(|p| p.index().to_string()).collect();
            out.push_str(&format!(
                "{{\"a\":{},\"b\":{},\"procs\":[{}]}}",
                a.index(),
                b.index(),
                procs.join(",")
            ));
        }
        out.push_str("]}");
        out
    }

    /// Graphviz `dot` rendering of the interference graph.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph interference {\n");
        for a in 0..self.num_apps() {
            let shape = if self.droppable[a] { "ellipse" } else { "box" };
            let style = if self.hardened[a] { ",style=bold" } else { "" };
            out.push_str(&format!("  a{a} [shape={shape}{style}];\n"));
        }
        for (a, b, shared) in self.edges() {
            let procs: Vec<String> = shared.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!(
                "  a{} -- a{} [label=\"{}\"];\n",
                a.index(),
                b.index(),
                procs.join(",")
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GeneView;
    use mcmap_model::{
        AppSet, Criticality, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time,
    };

    fn arch(n: usize) -> Architecture {
        Architecture::builder()
            .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
            .build()
            .unwrap()
    }

    fn app(name: &str, tasks: usize, droppable: bool) -> TaskGraph {
        let mut b = TaskGraph::builder(name, Time::from_ticks(1000));
        b = if droppable {
            b.criticality(Criticality::Droppable { service: 1.0 })
        } else {
            b.criticality(Criticality::NonDroppable {
                max_failure_rate: 1e-4,
            })
        };
        for i in 0..tasks {
            b = b.task(
                Task::new(format!("t{i}"))
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))),
            );
        }
        b.build().unwrap()
    }

    fn gene(p: usize) -> GeneView {
        GeneView {
            binding: ProcId::new(p),
            hardening: HardeningView::None,
        }
    }

    /// Three single-task apps on 3 PEs; a0,a1 share p0; a2 alone on p2.
    fn split_system() -> (AppSet, Architecture, GenomeView) {
        let apps = AppSet::new_unvalidated(vec![
            app("a", 1, false),
            app("b", 1, true),
            app("c", 1, false),
        ]);
        let g = GenomeView {
            alloc: vec![true; 3],
            keep: vec![true],
            genes: vec![gene(0), gene(0), gene(2)],
        };
        (apps, arch(3), g)
    }

    #[test]
    fn placement_and_edges() {
        let (apps, arch, g) = split_system();
        let ig = InterferenceGraph::build(&apps, &arch, &g).unwrap();
        assert_eq!(ig.placements(AppId::new(0)), &[ProcId::new(0)]);
        assert!(ig.interferes(AppId::new(0), AppId::new(1)));
        assert!(!ig.interferes(AppId::new(0), AppId::new(2)));
        assert!(!ig.interferes(AppId::new(0), AppId::new(0)));
        let edges = ig.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].2, vec![ProcId::new(0)]);
    }

    #[test]
    fn hardening_procs_extend_the_placement() {
        let apps = AppSet::new_unvalidated(vec![app("a", 1, false), app("b", 1, false)]);
        let a = arch(3);
        let g = GenomeView {
            alloc: vec![true; 3],
            keep: vec![],
            genes: vec![
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::Active {
                        replicas: vec![ProcId::new(1)],
                        voter: ProcId::new(2),
                    },
                },
                gene(2),
            ],
        };
        let ig = InterferenceGraph::build(&apps, &a, &g).unwrap();
        assert_eq!(
            ig.placements(AppId::new(0)),
            &[ProcId::new(0), ProcId::new(1), ProcId::new(2)]
        );
        // The voter on p2 couples a0 with a1's binding.
        assert!(ig.interferes(AppId::new(0), AppId::new(1)));
    }

    #[test]
    fn closure_is_the_reachable_component() {
        let (apps, arch, g) = split_system();
        let ig = InterferenceGraph::build(&apps, &arch, &g).unwrap();
        assert_eq!(
            ig.closure(&[AppId::new(0)]),
            vec![AppId::new(0), AppId::new(1)]
        );
        assert_eq!(ig.closure(&[AppId::new(2)]), vec![AppId::new(2)]);
        // Monotone: a bigger seed yields a superset.
        let big = ig.closure(&[AppId::new(0), AppId::new(2)]);
        assert_eq!(big.len(), 3);
    }

    #[test]
    fn affect_sets_per_edit_class() {
        let (apps, arch, g) = split_system();
        let ig = InterferenceGraph::build(&apps, &arch, &g).unwrap();
        let m = ig.affect(&apps, GenomeEdit::MappingGene { flat: 0 });
        assert_eq!(m.apps, vec![AppId::new(0), AppId::new(1)]);
        assert!(m.all_scenarios);
        assert_eq!(m.size(), 2);
        let h = ig.affect(&apps, GenomeEdit::HardeningDegree { flat: 2 });
        assert_eq!(h.apps, vec![AppId::new(2)]);
        let d = ig.affect(&apps, GenomeEdit::DropBit { app: AppId::new(1) });
        assert_eq!(d.apps, vec![AppId::new(0), AppId::new(1)]);
        let p = ig.affect(
            &apps,
            GenomeEdit::AllocBit {
                proc: ProcId::new(1),
            },
        );
        assert!(p.apps.is_empty());
        assert!(!p.all_scenarios);
        assert_eq!(p.size(), 0);
    }

    #[test]
    fn shape_mismatch_yields_none() {
        let (apps, arch, mut g) = split_system();
        g.genes.pop();
        assert!(InterferenceGraph::build(&apps, &arch, &g).is_none());
    }

    #[test]
    fn clique_diagnostic_fires_on_full_coupling() {
        let apps = AppSet::new_unvalidated(vec![
            app("a", 1, false),
            app("b", 1, false),
            app("c", 1, false),
        ]);
        let a = arch(2);
        let g = GenomeView {
            alloc: vec![true, true],
            keep: vec![],
            genes: vec![gene(0), gene(0), gene(0)],
        };
        let ig = InterferenceGraph::build(&apps, &a, &g).unwrap();
        let mut r = LintReport::new();
        ig.diagnose(&apps, &g, &mut r);
        r.finalize();
        assert!(r.has_code("MC0120"));
        assert!(!r.has_errors());
    }

    #[test]
    fn cross_criticality_hardening_diagnostic() {
        let apps = AppSet::new_unvalidated(vec![app("hi", 1, false), app("lo", 1, true)]);
        let a = arch(3);
        let g = GenomeView {
            alloc: vec![true; 3],
            keep: vec![true],
            genes: vec![
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::Reexec(1),
                },
                gene(0),
            ],
        };
        let ig = InterferenceGraph::build(&apps, &a, &g).unwrap();
        let mut r = LintReport::new();
        ig.diagnose(&apps, &g, &mut r);
        assert!(r.has_code("MC0121"));
        // Moving the droppable app away removes the coupling.
        let g2 = GenomeView {
            genes: vec![g.genes[0].clone(), gene(1)],
            ..g.clone()
        };
        let ig2 = InterferenceGraph::build(&apps, &a, &g2).unwrap();
        let mut r2 = LintReport::new();
        ig2.diagnose(&apps, &g2, &mut r2);
        assert!(!r2.has_code("MC0121"));
        assert!(r2.has_code("MC0122"));
    }

    #[test]
    fn renders_are_wellformed() {
        let (apps, arch, g) = split_system();
        let ig = InterferenceGraph::build(&apps, &arch, &g).unwrap();
        let text = ig.render_text();
        assert!(text.contains("interference graph: 3 app(s)"));
        assert!(text.contains("a0 -- a1"));
        let json = ig.to_json();
        assert!(json.starts_with("{\"apps\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let dot = ig.to_dot();
        assert!(dot.starts_with("graph interference {"));
        assert!(dot.contains("a0 -- a1"));
        assert!(dot.ends_with("}\n"));
    }
}
