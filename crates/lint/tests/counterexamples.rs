//! Integration suite for the analyzer: the shipped benchmarks lint clean,
//! and every diagnostic code in [`mcmap_lint::ALL_CODES`] has a mutated
//! counterexample that triggers it through the public API.

use mcmap_benchmarks::{all_benchmarks, cruise, synth1, synth2};
use mcmap_hardening::{HardeningPlan, TaskHardening};
use mcmap_lint::{
    inject, lint_system, GeneView, GenomeView, HardeningView, LintReport, Linter, Severity,
    ALL_CODES,
};
use mcmap_model::{
    AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor, Task,
    TaskGraph, Time,
};
use proptest::prelude::*;

// --- fixtures -------------------------------------------------------------

fn arch(n: usize, rate: f64) -> Architecture {
    Architecture::builder()
        .homogeneous(n, Processor::new("p", ProcKind::new(0), 5.0, 20.0, rate))
        .build()
        .unwrap()
}

/// A clean one-app system: two chained tasks, comfortable deadline.
fn base_apps() -> AppSet {
    let g = TaskGraph::builder("a", Time::from_ticks(1_000))
        .criticality(Criticality::NonDroppable {
            max_failure_rate: 1e-4,
        })
        .task(Task::new("t0").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
        .task(Task::new("t1").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
        .channel(0, 1, 8)
        .build()
        .unwrap();
    AppSet::new(vec![g]).unwrap()
}

fn one_app(g: TaskGraph) -> AppSet {
    AppSet::new_unvalidated(vec![g])
}

fn task(wcet: u64) -> Task {
    Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(wcet)))
}

/// Builds the mutated counterexample for one diagnostic code and lints it.
/// One arm per code keeps the mapping auditable; the meta-test below checks
/// the match stays in sync with [`ALL_CODES`].
fn trigger(code: &str) -> LintReport {
    let a2 = arch(2, 1e-7);
    match code {
        // -- model-mirror codes (MC0001..MC0015) --------------------------
        "MC0001" => lint_system(&inject::with_cycle(&base_apps()), &a2),
        "MC0002" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(task(1))
                .channel(0, 7, 4)
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0003" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(task(1))
                .channel(0, 0, 4)
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0004" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(Task::new("bare"))
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0005" => lint_system(&inject::with_inverted_bounds(&base_apps()), &a2),
        "MC0006" => {
            let g = TaskGraph::builder("x", Time::ZERO)
                .task(task(1))
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0007" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .deadline(Time::ZERO)
                .task(task(1))
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0008" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .criticality(Criticality::NonDroppable {
                    max_failure_rate: 0.0,
                })
                .task(task(1))
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0009" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .criticality(Criticality::Droppable { service: -1.0 })
                .task(task(1))
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }
        "MC0010" => lint_system(&base_apps(), &Architecture::builder().build_unvalidated()),
        "MC0011" => {
            let broken = Architecture::builder()
                .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-7))
                .fabric(Fabric::new(0))
                .build_unvalidated();
            lint_system(&base_apps(), &broken)
        }
        "MC0012" => {
            let broken = Architecture::builder()
                .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, -1.0))
                .build_unvalidated();
            lint_system(&base_apps(), &broken)
        }
        "MC0013" => {
            let broken = Architecture::builder()
                .homogeneous(
                    2,
                    Processor::new("p", ProcKind::new(0), f64::NAN, 20.0, 1e-7),
                )
                .build_unvalidated();
            lint_system(&base_apps(), &broken)
        }
        "MC0014" => lint_system(&AppSet::new_unvalidated(vec![]), &a2),
        "MC0015" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .deadline(Time::from_ticks(200))
                .task(task(1))
                .build_unvalidated();
            lint_system(&one_app(g), &a2)
        }

        // -- lint-only codes (MC0101..) ------------------------------------
        // A fault rate high enough that the best achievable failure
        // probability stays above f64 rounding (1 − p must differ from 1).
        "MC0101" => lint_system(
            &inject::with_unsatisfiable_reliability(&base_apps()),
            &arch(2, 1e-4),
        ),
        "MC0102" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(task(60))
                .task(task(60))
                .channel(0, 1, 1)
                .build()
                .unwrap();
            lint_system(&one_app(g), &arch(4, 0.0))
        }
        "MC0103" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(task(90))
                .task(task(90))
                .build()
                .unwrap();
            lint_system(&one_app(g), &arch(1, 0.0))
        }
        "MC0104" => {
            let lopsided = Architecture::builder()
                .processor(Processor::new("p0", ProcKind::new(0), 1.0, 1.0, 0.0))
                .processor(Processor::new("odd", ProcKind::new(1), 1.0, 1.0, 0.0))
                .build()
                .unwrap();
            lint_system(&base_apps(), &lopsided)
        }
        "MC0105" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(task(0))
                .build()
                .unwrap();
            lint_system(&one_app(g), &a2)
        }
        "MC0106" => Linter::new(&base_apps(), &a2).lint_genome(&GenomeView {
            alloc: vec![true, false],
            keep: vec![],
            genes: vec![
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::Active {
                        replicas: vec![ProcId::new(0)],
                        voter: ProcId::new(1), // unallocated voter
                    },
                },
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::None,
                },
            ],
        }),
        "MC0107" => {
            let mut plan = HardeningPlan::unhardened(&base_apps());
            plan.set_by_flat_index(
                0,
                TaskHardening::active(vec![ProcId::new(1), ProcId::new(1)], ProcId::new(0)),
            );
            Linter::new(&base_apps(), &a2).lint_plan(&plan)
        }
        "MC0108" => {
            let g = TaskGraph::builder("x", Time::from_ticks(1_000))
                .criticality(Criticality::Droppable { service: 3.0 })
                .task(task(10))
                .build()
                .unwrap();
            let apps = AppSet::new(vec![g]).unwrap();
            let mut plan = HardeningPlan::unhardened(&apps);
            plan.set_by_flat_index(0, TaskHardening::reexecution(1));
            Linter::new(&apps, &a2).lint_plan(&plan)
        }
        "MC0109" => Linter::new(&base_apps(), &a2).lint_plan(&HardeningPlan::from_entries(vec![])),
        "MC0110" => {
            let mut plan = HardeningPlan::unhardened(&base_apps());
            plan.set_by_flat_index(
                0,
                TaskHardening::active(vec![ProcId::new(9)], ProcId::new(0)),
            );
            Linter::new(&base_apps(), &a2).lint_plan(&plan)
        }
        "MC0111" => Linter::new(&base_apps(), &a2).lint_genome(&GenomeView {
            alloc: vec![false, false],
            keep: vec![],
            genes: vec![
                GeneView {
                    binding: ProcId::new(0),
                    hardening: HardeningView::None,
                },
                GeneView {
                    binding: ProcId::new(1),
                    hardening: HardeningView::None,
                },
            ],
        }),
        "MC0112" => {
            let mut plan = HardeningPlan::unhardened(&base_apps());
            plan.set_by_flat_index(0, TaskHardening::reexecution(3));
            Linter::new(&base_apps(), &a2)
                .with_limits(2, 2)
                .lint_plan(&plan)
        }
        "MC0113" => {
            let g = TaskGraph::builder("x", Time::from_ticks(100))
                .task(
                    Task::new("gpu-only")
                        .with_exec(ProcKind::new(5), ExecBounds::exact(Time::from_ticks(1))),
                )
                .build()
                .unwrap();
            lint_system(&one_app(g), &a2)
        }
        // -- interference codes (MC0120..) ---------------------------------
        "MC0120" => {
            // Three apps all bound to p0: every pair shares a PE.
            let apps = AppSet::new_unvalidated(vec![
                clean_app("x", false),
                clean_app("y", false),
                clean_app("z", false),
            ]);
            Linter::new(&apps, &a2).lint_genome(&GenomeView {
                alloc: vec![true, true],
                keep: vec![],
                genes: vec![bound(0), bound(0), bound(0)],
            })
        }
        "MC0121" => {
            // A re-executed critical task sharing p0 with a droppable app.
            let apps = AppSet::new_unvalidated(vec![clean_app("hi", false), clean_app("lo", true)]);
            Linter::new(&apps, &a2).lint_genome(&GenomeView {
                alloc: vec![true, true],
                keep: vec![true],
                genes: vec![
                    GeneView {
                        binding: ProcId::new(0),
                        hardening: HardeningView::Reexec(1),
                    },
                    bound(0),
                ],
            })
        }
        "MC0122" => {
            // Two apps on disjoint PEs: each is an interference-free island.
            let apps = AppSet::new_unvalidated(vec![clean_app("x", false), clean_app("y", false)]);
            Linter::new(&apps, &a2).lint_genome(&GenomeView {
                alloc: vec![true, true],
                keep: vec![],
                genes: vec![bound(0), bound(1)],
            })
        }
        other => panic!("no counterexample for {other}; extend trigger()"),
    }
}

/// A clean single-task application with an explicit criticality, for the
/// interference counterexamples.
fn clean_app(name: &str, droppable: bool) -> TaskGraph {
    let crit = if droppable {
        Criticality::Droppable { service: 1.0 }
    } else {
        Criticality::NonDroppable {
            max_failure_rate: 1e-4,
        }
    };
    TaskGraph::builder(name, Time::from_ticks(1_000))
        .criticality(crit)
        .task(task(10))
        .build()
        .unwrap()
}

/// An unhardened gene bound to processor `p`.
fn bound(p: usize) -> GeneView {
    GeneView {
        binding: ProcId::new(p),
        hardening: HardeningView::None,
    }
}

fn assert_fires(code: &str) {
    let report = trigger(code);
    assert!(
        report.has_code(code),
        "{code} did not fire; report:\n{}",
        report.render_text()
    );
}

// --- one mutated counterexample test per diagnostic code ------------------

#[test]
fn mc0001_cyclic_graph() {
    assert_fires("MC0001");
}
#[test]
fn mc0002_dangling_channel() {
    assert_fires("MC0002");
}
#[test]
fn mc0003_self_loop() {
    assert_fires("MC0003");
}
#[test]
fn mc0004_unrunnable_task() {
    assert_fires("MC0004");
}
#[test]
fn mc0005_inverted_bounds() {
    assert_fires("MC0005");
}
#[test]
fn mc0006_zero_period() {
    assert_fires("MC0006");
}
#[test]
fn mc0007_zero_deadline() {
    assert_fires("MC0007");
}
#[test]
fn mc0008_invalid_failure_rate() {
    assert_fires("MC0008");
}
#[test]
fn mc0009_invalid_service() {
    assert_fires("MC0009");
}
#[test]
fn mc0010_empty_architecture() {
    assert_fires("MC0010");
}
#[test]
fn mc0011_zero_bandwidth() {
    assert_fires("MC0011");
}
#[test]
fn mc0012_invalid_fault_rate() {
    assert_fires("MC0012");
}
#[test]
fn mc0013_invalid_power() {
    assert_fires("MC0013");
}
#[test]
fn mc0014_empty_app_set() {
    assert_fires("MC0014");
}
#[test]
fn mc0015_deadline_exceeds_period() {
    assert_fires("MC0015");
}
#[test]
fn mc0101_unsatisfiable_reliability() {
    assert_fires("MC0101");
}
#[test]
fn mc0102_unreachable_deadline() {
    assert_fires("MC0102");
}
#[test]
fn mc0103_utilization_overcommit() {
    assert_fires("MC0103");
}
#[test]
fn mc0104_orphan_pe_is_a_hint() {
    let report = trigger("MC0104");
    assert!(report.has_code("MC0104"));
    assert!(!report.has_errors(), "MC0104 must stay below error level");
}
#[test]
fn mc0105_zero_wcet_is_a_warning() {
    let report = trigger("MC0105");
    assert!(report.has_code("MC0105"));
    assert!(report.count(Severity::Warning) >= 1);
}
#[test]
fn mc0106_voter_placement() {
    assert_fires("MC0106");
}
#[test]
fn mc0107_replica_colocation() {
    assert_fires("MC0107");
}
#[test]
fn mc0108_hardened_droppable_is_a_hint() {
    let report = trigger("MC0108");
    assert!(report.has_code("MC0108"));
    assert!(!report.has_errors());
}
#[test]
fn mc0109_shape_mismatch() {
    assert_fires("MC0109");
}
#[test]
fn mc0110_binding_invalid() {
    assert_fires("MC0110");
}
#[test]
fn mc0111_no_allocated_pe() {
    assert_fires("MC0111");
}
#[test]
fn mc0112_hardening_exceeds_spec() {
    assert_fires("MC0112");
}
#[test]
fn mc0113_unmappable_task() {
    assert_fires("MC0113");
}
#[test]
fn mc0120_interference_clique_is_a_warning() {
    let report = trigger("MC0120");
    assert!(report.has_code("MC0120"));
    assert!(!report.has_errors(), "MC0120 must stay below error level");
}
#[test]
fn mc0121_cross_criticality_hardening_is_a_warning() {
    let report = trigger("MC0121");
    assert!(report.has_code("MC0121"));
    assert!(!report.has_errors(), "MC0121 must stay below error level");
}
#[test]
fn mc0122_interference_island_is_a_hint() {
    let report = trigger("MC0122");
    assert!(report.has_code("MC0122"));
    assert!(!report.has_errors());
    assert!(report.count(Severity::Hint) >= 2, "both apps are islands");
}

/// The per-code tests above and [`ALL_CODES`] must cover the same set: a
/// new diagnostic without a counterexample fails here.
#[test]
fn every_advertised_code_has_a_counterexample() {
    for (code, _) in ALL_CODES {
        let report = trigger(code);
        assert!(
            report.has_code(code),
            "{code} is advertised in ALL_CODES but its counterexample does not fire"
        );
    }
}

// --- the shipped benchmarks lint clean ------------------------------------

#[test]
fn shipped_benchmarks_lint_clean() {
    for b in all_benchmarks(42) {
        let report = lint_system(&b.apps, &b.arch);
        assert!(
            !report.has_errors(),
            "{} must lint clean:\n{}",
            b.name,
            report.render_text()
        );
    }
}

#[test]
fn injections_only_add_the_planted_defect() {
    let b = cruise();
    let clean = lint_system(&b.apps, &b.arch);
    assert!(!clean.has_errors());
    for (mutated, code) in [
        (inject::with_cycle(&b.apps), "MC0001"),
        (inject::with_unsatisfiable_reliability(&b.apps), "MC0101"),
        (inject::with_inverted_bounds(&b.apps), "MC0005"),
    ] {
        let report = lint_system(&mutated, &b.arch);
        assert!(report.has_errors());
        assert!(
            report.error_codes().contains(&code),
            "expected {code}:\n{}",
            report.render_text()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Valid-by-construction synthetic benchmarks never produce error-level
    /// structural diagnostics, whatever the generator seed.
    #[test]
    fn random_synthetic_benchmarks_lint_clean(seed in 0u64..1_000_000) {
        for b in [synth1(seed), synth2(seed)] {
            let report = lint_system(&b.apps, &b.arch);
            prop_assert!(
                !report.has_errors(),
                "{} (seed {seed}):\n{}",
                b.name,
                report.render_text()
            );
        }
    }

    /// The JSON rendering stays well-formed for arbitrary mutated systems:
    /// balanced braces and all three counters present.
    #[test]
    fn json_rendering_is_well_formed(seed in 0u64..1_000_000) {
        let b = synth1(seed);
        let mutated = inject::with_cycle(&b.apps);
        let json = lint_system(&mutated, &b.arch).to_json();
        prop_assert!(json.starts_with('{') && json.ends_with('}'));
        prop_assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        prop_assert!(json.contains("\"errors\":"));
        prop_assert!(json.contains("\"warnings\":"));
        prop_assert!(json.contains("\"hints\":"));
    }
}
