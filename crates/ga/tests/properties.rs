//! Property-based tests for the evolutionary framework.

use mcmap_ga::{
    constrained_dominates, crowding_distance, dominates, environmental_selection,
    non_dominated_sort, nsga2_selection, pareto_front, spea2_fitness, Evaluation, Individual,
};
use proptest::prelude::*;

fn eval_strategy() -> impl Strategy<Value = Evaluation> {
    (
        prop::collection::vec(0.0f64..100.0, 2),
        any::<bool>(),
        0.01f64..10.0,
    )
        .prop_map(|(objectives, feasible, penalty)| {
            if feasible {
                Evaluation::feasible(objectives)
            } else {
                Evaluation::infeasible(objectives, penalty)
            }
        })
}

fn pool_strategy() -> impl Strategy<Value = Vec<Individual<usize>>> {
    prop::collection::vec(eval_strategy(), 2..40).prop_map(|evals| {
        evals
            .into_iter()
            .enumerate()
            .map(|(i, e)| Individual::new(i, e))
            .collect()
    })
}

proptest! {
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in prop::collection::vec(0.0f64..10.0, 3),
        b in prop::collection::vec(0.0f64..10.0, 3),
    ) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn constrained_dominance_is_antisymmetric(a in eval_strategy(), b in eval_strategy()) {
        prop_assert!(
            !(constrained_dominates(&a, &b) && constrained_dominates(&b, &a))
        );
        prop_assert!(!constrained_dominates(&a, &a));
    }

    #[test]
    fn pareto_front_members_are_mutually_nondominated(pool in pool_strategy()) {
        let front = pareto_front(&pool);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                prop_assert!(!constrained_dominates(&a.eval, &b.eval)
                    || a.eval == b.eval);
            }
        }
        // Everything outside the front is dominated by someone inside it…
        for ind in &pool {
            let on_front = front.iter().any(|f| f.eval == ind.eval);
            if !on_front {
                prop_assert!(pool
                    .iter()
                    .any(|o| constrained_dominates(&o.eval, &ind.eval)));
            }
        }
    }

    #[test]
    fn spea2_fitness_separates_nondominated(pool in pool_strategy()) {
        let evals: Vec<Evaluation> = pool.iter().map(|i| i.eval.clone()).collect();
        let fit = spea2_fitness(&evals);
        for (i, e) in evals.iter().enumerate() {
            let nondominated = !evals
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && constrained_dominates(o, e));
            if nondominated {
                prop_assert!(fit.fitness[i] < 1.0, "nondominated must have F < 1");
                prop_assert_eq!(fit.raw[i], 0.0);
            } else {
                prop_assert!(fit.fitness[i] >= 1.0, "dominated must have F ≥ 1");
            }
        }
    }

    #[test]
    fn selections_respect_capacity(pool in pool_strategy(), cap in 1usize..30) {
        let cap = cap.min(pool.len());
        let spea = environmental_selection(&pool, cap);
        let nsga = nsga2_selection(&pool, cap);
        prop_assert_eq!(spea.len(), cap);
        prop_assert_eq!(nsga.len(), cap);
        // Both keep only members of the pool.
        for sel in spea.iter().chain(&nsga) {
            prop_assert!(pool.iter().any(|p| p.genotype == sel.genotype));
        }
    }

    #[test]
    fn nondominated_sort_partitions_and_orders(pool in pool_strategy()) {
        let evals: Vec<Evaluation> = pool.iter().map(|i| i.eval.clone()).collect();
        let fronts = non_dominated_sort(&evals);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, evals.len());
        // No one in front k is dominated by anyone in front k or later.
        for (k, front) in fronts.iter().enumerate() {
            for &i in front {
                for later in &fronts[k..] {
                    for &j in later {
                        prop_assert!(
                            i == j || !constrained_dominates(&evals[j], &evals[i]),
                            "front {k} member dominated by a same-or-later front member"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn crowding_distances_are_nonnegative(pool in pool_strategy()) {
        let evals: Vec<Evaluation> = pool.iter().map(|i| i.eval.clone()).collect();
        let fronts = non_dominated_sort(&evals);
        for front in &fronts {
            for d in crowding_distance(&evals, front) {
                prop_assert!(d >= 0.0);
            }
        }
    }
}
