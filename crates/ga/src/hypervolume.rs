//! Quality indicators for bi-objective fronts.

use crate::{Evaluation, Individual};

/// 2-D hypervolume of a minimization front with respect to a reference
/// point: the area dominated by the front and bounded by `reference`.
///
/// Points not strictly dominating the reference contribute nothing;
/// infeasible individuals are ignored.
///
/// # Panics
///
/// Panics if any feasible individual has a number of objectives other than
/// two.
///
/// # Examples
///
/// ```
/// use mcmap_ga::{hypervolume_2d, Evaluation, Individual};
/// let front = vec![
///     Individual::new((), Evaluation::feasible(vec![1.0, 3.0])),
///     Individual::new((), Evaluation::feasible(vec![3.0, 1.0])),
/// ];
/// // Reference (4, 4): area = (4−1)(4−3) + (4−3)(4−1) − overlap (1×1)… computed
/// // by the left-to-right sweep: 3·1 + 1·(4−1−? ) → 3 + 3 = 6? The sweep gives 5.
/// let hv = hypervolume_2d(&front, [4.0, 4.0]);
/// assert!((hv - 5.0).abs() < 1e-12);
/// ```
pub fn hypervolume_2d<G>(front: &[Individual<G>], reference: [f64; 2]) -> f64 {
    let mut points: Vec<[f64; 2]> = front
        .iter()
        .filter(|i| i.eval.feasible)
        .map(|i| {
            assert_eq!(
                i.eval.objectives.len(),
                2,
                "hypervolume_2d requires bi-objective evaluations"
            );
            [i.eval.objectives[0], i.eval.objectives[1]]
        })
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    points.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("objectives are finite"));

    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in points {
        if p[1] < prev_y {
            hv += (reference[0] - p[0]) * (prev_y - p[1]);
            prev_y = p[1];
        }
    }
    hv
}

/// Normalized spread of a bi-objective front: the sum of the per-dimension
/// extents, each divided by the reference extent. 0 for fronts with fewer
/// than two feasible points.
pub fn front_extent<G>(front: &[Individual<G>]) -> f64 {
    let pts: Vec<&Evaluation> = front
        .iter()
        .filter(|i| i.eval.feasible)
        .map(|i| &i.eval)
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let dims = pts[0].objectives.len();
    (0..dims)
        .map(|d| {
            let lo = pts
                .iter()
                .map(|e| e.objectives[d])
                .fold(f64::INFINITY, f64::min);
            let hi = pts
                .iter()
                .map(|e| e.objectives[d])
                .fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(x: f64, y: f64) -> Individual<()> {
        Individual::new((), Evaluation::feasible(vec![x, y]))
    }

    #[test]
    fn single_point_volume_is_its_box() {
        let hv = hypervolume_2d(&[ind(1.0, 2.0)], [4.0, 4.0]);
        assert!((hv - (3.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn staircase_accumulates() {
        let hv = hypervolume_2d(&[ind(1.0, 3.0), ind(2.0, 2.0), ind(3.0, 1.0)], [4.0, 4.0]);
        // Sweep: (4−1)(4−3)=3, (4−2)(3−2)=2, (4−3)(2−1)=1 → 6.
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let alone = hypervolume_2d(&[ind(1.0, 1.0)], [4.0, 4.0]);
        let with_dominated = hypervolume_2d(&[ind(1.0, 1.0), ind(2.0, 2.0)], [4.0, 4.0]);
        assert!((alone - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn points_beyond_reference_are_ignored() {
        let hv = hypervolume_2d(&[ind(5.0, 5.0)], [4.0, 4.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn infeasible_are_ignored() {
        let front = vec![Individual::new(
            (),
            Evaluation::infeasible(vec![0.0, 0.0], 1.0),
        )];
        assert_eq!(hypervolume_2d(&front, [4.0, 4.0]), 0.0);
    }

    #[test]
    fn extent_measures_spread() {
        assert_eq!(front_extent::<()>(&[]), 0.0);
        assert_eq!(front_extent(&[ind(1.0, 1.0)]), 0.0);
        let e = front_extent(&[ind(0.0, 4.0), ind(4.0, 0.0)]);
        assert!((e - 8.0).abs() < 1e-12);
    }
}
