//! The generational optimization loop.

use crate::{
    constrained_dominates, environmental_selection, nsga2_selection, pareto_front, Evaluation,
    Individual, Problem,
};
use mcmap_obs::{Recorder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which environmental-selection scheme maintains the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selector {
    /// SPEA-II (strength Pareto, k-NN density) — the paper's selector.
    #[default]
    Spea2,
    /// NSGA-II (non-dominated sort, crowding distance) — ablation selector.
    Nsga2,
}

/// Configuration of one optimization run.
///
/// The paper sets population, parents, and offspring all to 100 and runs
/// 5 000 generations; [`GaConfig::default`] uses the same population with a
/// smaller generation budget suitable for tests (override for experiments).
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Population (= archive = offspring) size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability that an offspring is produced by crossover (otherwise it
    /// clones one parent).
    pub crossover_rate: f64,
    /// Probability that an offspring is mutated.
    pub mutation_rate: f64,
    /// RNG seed: runs with equal seeds and configs are identical.
    pub seed: u64,
    /// Selection scheme.
    pub selector: Selector,
    /// Evaluation threads (1 = serial). Evaluations are independent (§4 of
    /// the paper evaluates in parallel as well).
    pub threads: usize,
    /// Observability handle. The default (disabled) recorder makes every
    /// emission a no-op; an enabled one receives one `ga.generation` span
    /// per generation (including the initial population) carrying the
    /// [`GenerationStats`] fields plus hypervolume and archive churn.
    /// Purely an instrumentation knob: results are identical either way.
    pub obs: Recorder,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 100,
            generations: 50,
            crossover_rate: 0.9,
            mutation_rate: 0.4,
            seed: 0x5EED,
            selector: Selector::Spea2,
            threads: 1,
            obs: Recorder::default(),
        }
    }
}

/// Per-generation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Minimum of each objective among feasible archive members
    /// (`f64::INFINITY` when none are feasible).
    pub best: Vec<f64>,
    /// Number of feasible archive members.
    pub feasible: usize,
    /// Size of the non-dominated subset of the archive.
    pub front_size: usize,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct GaResult<G> {
    /// Non-dominated subset of the final archive.
    pub front: Vec<Individual<G>>,
    /// The full final archive.
    pub archive: Vec<Individual<G>>,
    /// Per-generation statistics, including the initial population.
    pub history: Vec<GenerationStats>,
    /// Total number of fitness evaluations performed (this run only — a
    /// resumed run counts from its [`DriverState`] baseline).
    pub evaluations: usize,
    /// Whether an observer stopped the run before its generation budget
    /// was spent. The front/archive are those of the last completed
    /// generation; resuming from the final [`DriverState`] continues the
    /// run bit-identically.
    pub interrupted: bool,
}

/// The complete, self-contained state of the generational loop at a
/// generation boundary. Restoring it with [`optimize_resumable`] continues
/// the run *bit-identically* to one that was never stopped: the raw RNG
/// words resume the exact variation stream, and the telemetry carry-overs
/// (hypervolume reference, previous archive evaluations) keep the emitted
/// per-generation fields byte-stable across the boundary.
#[derive(Debug, Clone)]
pub struct DriverState<G> {
    /// Index of the last completed generation (0 = initial population).
    pub generation: usize,
    /// Raw xoshiro256++ words of the variation RNG, captured *after* this
    /// generation's variation.
    pub rng_state: [u64; 4],
    /// Fitness evaluations performed so far.
    pub evaluations: usize,
    /// The environmental-selection archive after this generation.
    pub archive: Vec<Individual<G>>,
    /// Per-generation statistics so far, including generation 0.
    pub history: Vec<GenerationStats>,
    /// The hypervolume reference point, once fixed (telemetry carry-over).
    pub hv_reference: Option<(f64, f64)>,
    /// The previous archive's evaluations for churn tracking (telemetry
    /// carry-over; empty when the run is unobserved).
    pub prev_evals: Vec<Evaluation>,
}

/// A borrowed view of the driver state at a generation boundary, handed to
/// the [`GenerationObserver`] after every completed generation. Borrowing
/// keeps the hook zero-cost for unobserved runs; an observer that wants to
/// persist the state clones it via [`GenerationSnapshot::to_state`].
#[derive(Debug)]
pub struct GenerationSnapshot<'a, G> {
    /// Index of the generation that just completed.
    pub generation: usize,
    /// Fitness evaluations performed so far.
    pub evaluations: usize,
    /// The archive after this generation's environmental selection.
    pub archive: &'a [Individual<G>],
    /// Per-generation statistics so far.
    pub history: &'a [GenerationStats],
    /// Raw RNG words as of this boundary.
    pub rng_state: [u64; 4],
    /// Telemetry carry-over: the fixed hypervolume reference, if any.
    pub hv_reference: Option<(f64, f64)>,
    /// Telemetry carry-over: this archive's evaluations (empty when
    /// unobserved).
    pub prev_evals: &'a [Evaluation],
}

impl<G: Clone> GenerationSnapshot<'_, G> {
    /// Clones the borrowed view into an owned, persistable [`DriverState`].
    pub fn to_state(&self) -> DriverState<G> {
        DriverState {
            generation: self.generation,
            rng_state: self.rng_state,
            evaluations: self.evaluations,
            archive: self.archive.to_vec(),
            history: self.history.to_vec(),
            hv_reference: self.hv_reference,
            prev_evals: self.prev_evals.to_vec(),
        }
    }
}

/// What the loop should do after an observer callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopControl {
    /// Keep iterating.
    #[default]
    Continue,
    /// Stop cleanly at this generation boundary; the result is marked
    /// [`GaResult::interrupted`] if the generation budget was not spent.
    Stop,
}

/// A hook fired at every generation boundary (including generation 0, the
/// initial population). Checkpointing, progress reporting, and cooperative
/// cancellation all hang off this trait.
pub trait GenerationObserver<G> {
    /// Called after each completed generation; returning
    /// [`LoopControl::Stop`] ends the run at this boundary.
    fn after_generation(&mut self, snapshot: &GenerationSnapshot<'_, G>) -> LoopControl;
}

/// The do-nothing observer used by [`optimize`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Unobserved;

impl<G> GenerationObserver<G> for Unobserved {
    fn after_generation(&mut self, _snapshot: &GenerationSnapshot<'_, G>) -> LoopControl {
        LoopControl::Continue
    }
}

/// Runs the generational loop: random initial population, binary-tournament
/// mating from the archive, crossover + mutation, environmental selection
/// over archive ∪ offspring.
///
/// Deterministic for a fixed `(problem, config)` pair: variation is driven
/// by one seeded RNG and evaluation is a pure function, so the thread count
/// does not affect the result.
///
/// # Examples
///
/// Minimizing `(x−3)²` over integer genotypes:
///
/// ```
/// use mcmap_ga::{optimize, Evaluation, GaConfig, Problem};
/// use rand::{Rng, RngCore};
///
/// struct Square;
/// impl Problem for Square {
///     type Genotype = i64;
///     fn random(&self, rng: &mut dyn RngCore) -> i64 { (rng.next_u32() % 100) as i64 }
///     fn crossover(&self, a: &i64, b: &i64, _: &mut dyn RngCore) -> i64 { (a + b) / 2 }
///     fn mutate(&self, g: &mut i64, rng: &mut dyn RngCore) {
///         *g += (rng.next_u32() % 7) as i64 - 3;
///     }
///     fn evaluate(&self, g: &i64) -> Evaluation {
///         Evaluation::feasible(vec![((g - 3) * (g - 3)) as f64])
///     }
///     fn num_objectives(&self) -> usize { 1 }
/// }
///
/// let result = optimize(&Square, &GaConfig { population: 20, generations: 30,
///     ..GaConfig::default() });
/// assert_eq!(result.front[0].genotype, 3);
/// ```
pub fn optimize<P: Problem>(problem: &P, cfg: &GaConfig) -> GaResult<P::Genotype> {
    optimize_resumable(problem, cfg, None, &mut Unobserved)
}

/// The resumable generational loop behind [`optimize`].
///
/// With `resume = Some(state)` the run skips initialization and continues
/// from the captured generation boundary; with an observer, the loop hands
/// out a [`GenerationSnapshot`] after every generation (including
/// generation 0) and honors [`LoopControl::Stop`]. The invariant the
/// checkpoint/restore machinery is built on: for any `k`, running to
/// generation `k`, persisting the snapshot, and resuming from it yields a
/// final archive, front, history, and telemetry stream bit-identical to
/// the uninterrupted run.
pub fn optimize_resumable<P: Problem>(
    problem: &P,
    cfg: &GaConfig,
    resume: Option<DriverState<P::Genotype>>,
    observer: &mut dyn GenerationObserver<P::Genotype>,
) -> GaResult<P::Genotype> {
    let mut telemetry = GenTelemetry::new(&cfg.obs);
    let mut stopped_at: Option<usize> = None;

    let (mut rng, mut archive, mut history, mut evaluations, start_gen) = match resume {
        Some(st) => {
            telemetry.reference = st.hv_reference;
            telemetry.prev_evals = st.prev_evals;
            (
                StdRng::from_state(st.rng_state),
                st.archive,
                st.history,
                st.evaluations,
                st.generation + 1,
            )
        }
        None => {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut evaluations = 0usize;

            // Initial population.
            let span = cfg
                .obs
                .span("ga.generation", &[("generation", Value::from(0u64))]);
            let genotypes: Vec<P::Genotype> = (0..cfg.population.max(2))
                .map(|_| problem.random(&mut rng))
                .collect();
            let evals = problem.evaluate_batch(&genotypes, cfg.threads);
            evaluations += evals.len();
            let batch_size = evals.len();
            let pop: Vec<Individual<P::Genotype>> = genotypes
                .into_iter()
                .zip(evals)
                .map(|(g, e)| Individual::new(g, e))
                .collect();

            let archive = select(&pop, cfg);
            let history = vec![stats(0, &archive)];
            telemetry.close_generation(span, history.last().unwrap(), batch_size, &archive);
            if observe(
                observer,
                0,
                &rng,
                &archive,
                &history,
                evaluations,
                &telemetry,
            ) == LoopControl::Stop
            {
                stopped_at = Some(0);
            }
            (rng, archive, history, evaluations, 1)
        }
    };

    if stopped_at.is_none() {
        for gen in start_gen..=cfg.generations {
            let span = cfg
                .obs
                .span("ga.generation", &[("generation", Value::from(gen))]);
            // Variation: binary tournaments over the archive. The first
            // tournament pick is each child's designated parent — the
            // archive member the child is a (crossover half + mutation)
            // delta of — handed to the problem as an incremental-reuse
            // hint. Hints never change results (see
            // [`Problem::evaluate_batch_with_parents`]).
            let mut parent_idx: Vec<usize> = Vec::with_capacity(cfg.population);
            let offspring_genotypes: Vec<P::Genotype> = (0..cfg.population)
                .map(|_| {
                    let a = tournament(&archive, &mut rng);
                    let b = tournament(&archive, &mut rng);
                    let mut child = if rng.gen_bool(cfg.crossover_rate) {
                        problem.crossover(&archive[a].genotype, &archive[b].genotype, &mut rng)
                    } else {
                        archive[a].genotype.clone()
                    };
                    if rng.gen_bool(cfg.mutation_rate) {
                        problem.mutate(&mut child, &mut rng);
                    }
                    parent_idx.push(a);
                    child
                })
                .collect();
            let parents: Vec<Option<&P::Genotype>> = parent_idx
                .iter()
                .map(|&a| Some(&archive[a].genotype))
                .collect();
            let evals =
                problem.evaluate_batch_with_parents(&offspring_genotypes, &parents, cfg.threads);
            evaluations += evals.len();
            let batch_size = evals.len();

            let mut pool = archive;
            pool.extend(
                offspring_genotypes
                    .into_iter()
                    .zip(evals)
                    .map(|(g, e)| Individual::new(g, e)),
            );
            archive = select(&pool, cfg);
            history.push(stats(gen, &archive));
            telemetry.close_generation(span, history.last().unwrap(), batch_size, &archive);
            if observe(
                observer,
                gen,
                &rng,
                &archive,
                &history,
                evaluations,
                &telemetry,
            ) == LoopControl::Stop
            {
                stopped_at = Some(gen);
                break;
            }
        }
    }

    let front = pareto_front(&archive);
    GaResult {
        front,
        archive,
        history,
        evaluations,
        interrupted: stopped_at.is_some_and(|g| g < cfg.generations),
    }
}

/// Assembles the boundary snapshot and fires the observer.
#[allow(clippy::too_many_arguments)]
fn observe<G>(
    observer: &mut dyn GenerationObserver<G>,
    generation: usize,
    rng: &StdRng,
    archive: &[Individual<G>],
    history: &[GenerationStats],
    evaluations: usize,
    telemetry: &GenTelemetry,
) -> LoopControl {
    observer.after_generation(&GenerationSnapshot {
        generation,
        evaluations,
        archive,
        history,
        rng_state: rng.state(),
        hv_reference: telemetry.reference,
        prev_evals: &telemetry.prev_evals,
    })
}

/// Per-generation telemetry state: the fixed hypervolume reference point
/// and the previous archive's evaluations for churn tracking. All inputs
/// are deterministic archive contents, so the emitted fields are
/// replay-stable.
struct GenTelemetry {
    enabled: bool,
    /// Reference point fixed at the first generation with ≥ 1 feasible
    /// two-objective member, so hypervolume is comparable across
    /// generations of one run.
    reference: Option<(f64, f64)>,
    prev_evals: Vec<Evaluation>,
}

impl GenTelemetry {
    fn new(obs: &Recorder) -> Self {
        GenTelemetry {
            enabled: obs.enabled(),
            reference: None,
            prev_evals: Vec::new(),
        }
    }

    /// Attaches the generation's statistics to its span and closes it.
    fn close_generation<G>(
        &mut self,
        mut span: mcmap_obs::SpanGuard,
        st: &GenerationStats,
        batch_size: usize,
        archive: &[Individual<G>],
    ) {
        if !self.enabled {
            return;
        }
        span.field("generation", st.generation);
        span.field("evaluations", batch_size);
        span.field("feasible", st.feasible);
        span.field("front_size", st.front_size);
        // Static key table: event keys are `&'static str` (allocation-free
        // emission), and no objective mode has more than a handful of axes.
        const BEST: [&str; 4] = ["best_0", "best_1", "best_2", "best_3"];
        for (i, &b) in st.best.iter().enumerate().take(BEST.len()) {
            // Infinite bests (no feasible member yet) stay out of the
            // trace: they would poison the profile's counter sums.
            if b.is_finite() {
                span.field(BEST[i], b);
            }
        }

        let feasible_points: Vec<(f64, f64)> = archive
            .iter()
            .filter(|i| i.eval.feasible && i.eval.objectives.len() == 2)
            .map(|i| (i.eval.objectives[0], i.eval.objectives[1]))
            .collect();
        if self.reference.is_none() && !feasible_points.is_empty() {
            // Nadir of the first feasible front, padded 10 %, so later
            // (better) fronts stay inside the reference box.
            let worst0 = feasible_points.iter().map(|p| p.0).fold(f64::MIN, f64::max);
            let worst1 = feasible_points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
            self.reference = Some((
                worst0.abs().mul_add(0.1, worst0),
                worst1.abs().mul_add(0.1, worst1),
            ));
        }
        if let Some((r0, r1)) = self.reference {
            let front: Vec<Individual<()>> = feasible_points
                .iter()
                .map(|&(a, b)| Individual::new((), Evaluation::feasible(vec![a, b])))
                .collect();
            span.field("hypervolume", crate::hypervolume_2d(&front, [r0, r1]));
        }

        let churn = archive_churn(&self.prev_evals, archive);
        span.field("churn", churn);
        self.prev_evals = archive.iter().map(|i| i.eval.clone()).collect();
        span.end();
    }
}

/// Archive churn between generations: members added plus members removed,
/// compared as an evaluation *multiset* (genotypes are not comparable in
/// general; equal objective vectors are interchangeable for convergence
/// tracking).
fn archive_churn<G>(prev: &[Evaluation], archive: &[Individual<G>]) -> usize {
    let mut remaining: Vec<&Evaluation> = prev.iter().collect();
    let mut added = 0usize;
    for ind in archive {
        if let Some(pos) = remaining.iter().position(|e| **e == ind.eval) {
            remaining.swap_remove(pos);
        } else {
            added += 1;
        }
    }
    added + remaining.len()
}

fn select<G: Clone>(pool: &[Individual<G>], cfg: &GaConfig) -> Vec<Individual<G>> {
    match cfg.selector {
        Selector::Spea2 => environmental_selection(pool, cfg.population),
        Selector::Nsga2 => nsga2_selection(pool, cfg.population),
    }
}

/// Binary tournament: the constrained-dominating candidate wins; ties go to
/// the first pick.
fn tournament<G>(archive: &[Individual<G>], rng: &mut StdRng) -> usize {
    debug_assert!(!archive.is_empty());
    let a = rng.gen_range(0..archive.len());
    let b = rng.gen_range(0..archive.len());
    if constrained_dominates(&archive[b].eval, &archive[a].eval) {
        b
    } else {
        a
    }
}

fn stats<G>(generation: usize, archive: &[Individual<G>]) -> GenerationStats {
    let dims = archive.first().map_or(0, |i| i.eval.objectives.len());
    let mut best = vec![f64::INFINITY; dims];
    let mut feasible = 0usize;
    for ind in archive {
        if ind.eval.feasible {
            feasible += 1;
            for (b, &v) in best.iter_mut().zip(&ind.eval.objectives) {
                *b = b.min(v);
            }
        }
    }
    let front_size = archive
        .iter()
        .filter(|a| {
            !archive
                .iter()
                .any(|b| constrained_dominates(&b.eval, &a.eval))
        })
        .count();
    GenerationStats {
        generation,
        best,
        feasible,
        front_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluation;
    use rand::RngCore;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Bi-objective toy: minimize (x, 10−x) over x ∈ [0, 10] — the whole
    /// range is Pareto-optimal.
    struct Tradeoff;
    impl Problem for Tradeoff {
        type Genotype = u8;
        fn random(&self, rng: &mut dyn RngCore) -> u8 {
            (rng.next_u32() % 11) as u8
        }
        fn crossover(&self, a: &u8, b: &u8, _: &mut dyn RngCore) -> u8 {
            ((*a as u16 + *b as u16) / 2) as u8
        }
        fn mutate(&self, g: &mut u8, rng: &mut dyn RngCore) {
            *g = (rng.next_u32() % 11) as u8;
        }
        fn evaluate(&self, g: &u8) -> Evaluation {
            Evaluation::feasible(vec![*g as f64, 10.0 - *g as f64])
        }
        fn num_objectives(&self) -> usize {
            2
        }
    }

    /// Constrained: x must be ≥ 5, minimize x.
    struct Constrained;
    impl Problem for Constrained {
        type Genotype = u8;
        fn random(&self, rng: &mut dyn RngCore) -> u8 {
            (rng.next_u32() % 20) as u8
        }
        fn crossover(&self, a: &u8, _b: &u8, _: &mut dyn RngCore) -> u8 {
            *a
        }
        fn mutate(&self, g: &mut u8, rng: &mut dyn RngCore) {
            *g = (rng.next_u32() % 20) as u8;
        }
        fn evaluate(&self, g: &u8) -> Evaluation {
            if *g >= 5 {
                Evaluation::feasible(vec![*g as f64])
            } else {
                Evaluation::infeasible(vec![*g as f64], (5 - *g) as f64)
            }
        }
        fn num_objectives(&self) -> usize {
            1
        }
    }

    #[test]
    fn discovers_the_full_tradeoff_front() {
        let r = optimize(
            &Tradeoff,
            &GaConfig {
                population: 30,
                generations: 40,
                ..Default::default()
            },
        );
        // Every value 0..=10 is Pareto-optimal; the archive should cover
        // most of them, certainly the extremes.
        let xs: Vec<u8> = r.front.iter().map(|i| i.genotype).collect();
        assert!(xs.contains(&0));
        assert!(xs.contains(&10));
        assert!(r.front.len() >= 5);
        assert_eq!(r.evaluations, 30 + 30 * 40);
    }

    #[test]
    fn constrained_search_lands_on_the_boundary() {
        let r = optimize(
            &Constrained,
            &GaConfig {
                population: 16,
                generations: 30,
                ..Default::default()
            },
        );
        // Duplicates of the optimum may coexist on the front (equal
        // objective vectors do not dominate each other).
        assert!(r.front.iter().all(|i| i.genotype == 5));
        assert!(r.front.iter().all(|i| i.eval.feasible));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = GaConfig {
            population: 10,
            generations: 10,
            seed: 99,
            ..Default::default()
        };
        let a = optimize(&Tradeoff, &cfg);
        let b = optimize(&Tradeoff, &cfg);
        let xa: Vec<u8> = a.archive.iter().map(|i| i.genotype).collect();
        let xb: Vec<u8> = b.archive.iter().map(|i| i.genotype).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = GaConfig {
            population: 12,
            generations: 8,
            seed: 7,
            ..Default::default()
        };
        let serial = optimize(&Tradeoff, &base);
        let parallel = optimize(&Tradeoff, &GaConfig { threads: 4, ..base });
        let xs: Vec<u8> = serial.archive.iter().map(|i| i.genotype).collect();
        let xp: Vec<u8> = parallel.archive.iter().map(|i| i.genotype).collect();
        assert_eq!(xs, xp);
    }

    #[test]
    fn nsga2_selector_also_converges() {
        let r = optimize(
            &Constrained,
            &GaConfig {
                population: 16,
                generations: 30,
                selector: Selector::Nsga2,
                ..Default::default()
            },
        );
        assert_eq!(r.front[0].genotype, 5);
    }

    #[test]
    fn history_tracks_improvement() {
        let r = optimize(
            &Constrained,
            &GaConfig {
                population: 16,
                generations: 25,
                ..Default::default()
            },
        );
        assert_eq!(r.history.len(), 26);
        let first = r.history.first().unwrap().best[0];
        let last = r.history.last().unwrap().best[0];
        assert!(last <= first);
        assert_eq!(r.history.last().unwrap().generation, 25);
    }

    #[test]
    fn evaluation_runs_once_per_candidate() {
        struct Counting(AtomicUsize);
        impl Problem for Counting {
            type Genotype = u8;
            fn random(&self, _: &mut dyn RngCore) -> u8 {
                0
            }
            fn crossover(&self, a: &u8, _: &u8, _: &mut dyn RngCore) -> u8 {
                *a
            }
            fn mutate(&self, _: &mut u8, _: &mut dyn RngCore) {}
            fn evaluate(&self, _: &u8) -> Evaluation {
                self.0.fetch_add(1, Ordering::Relaxed);
                Evaluation::feasible(vec![0.0])
            }
            fn num_objectives(&self) -> usize {
                1
            }
        }
        let p = Counting(AtomicUsize::new(0));
        let r = optimize(
            &p,
            &GaConfig {
                population: 5,
                generations: 3,
                ..Default::default()
            },
        );
        assert_eq!(p.0.load(Ordering::Relaxed), r.evaluations);
        assert_eq!(r.evaluations, 5 + 5 * 3);
    }

    /// Captures every boundary state and stops after a chosen generation.
    struct StopAt {
        stop_after: usize,
        states: Vec<DriverState<u8>>,
    }
    impl GenerationObserver<u8> for StopAt {
        fn after_generation(&mut self, snap: &GenerationSnapshot<'_, u8>) -> LoopControl {
            self.states.push(snap.to_state());
            if snap.generation >= self.stop_after {
                LoopControl::Stop
            } else {
                LoopControl::Continue
            }
        }
    }

    #[test]
    fn observer_fires_at_every_boundary_including_gen_zero() {
        let cfg = GaConfig {
            population: 8,
            generations: 5,
            seed: 11,
            ..Default::default()
        };
        let mut obs = StopAt {
            stop_after: usize::MAX,
            states: Vec::new(),
        };
        let r = optimize_resumable(&Tradeoff, &cfg, None, &mut obs);
        assert!(!r.interrupted);
        let gens: Vec<usize> = obs.states.iter().map(|s| s.generation).collect();
        assert_eq!(gens, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(obs.states.last().unwrap().evaluations, r.evaluations);
    }

    #[test]
    fn resume_from_any_boundary_is_bit_identical() {
        let cfg = GaConfig {
            population: 12,
            generations: 9,
            seed: 4242,
            ..Default::default()
        };
        let reference = optimize(&Tradeoff, &cfg);
        let ref_xs: Vec<u8> = reference.archive.iter().map(|i| i.genotype).collect();

        for stop_after in [0usize, 1, 4, 8, 9] {
            let mut first = StopAt {
                stop_after,
                states: Vec::new(),
            };
            let part1 = optimize_resumable(&Tradeoff, &cfg, None, &mut first);
            assert_eq!(part1.interrupted, stop_after < cfg.generations);
            let state = first.states.last().unwrap().clone();
            assert_eq!(state.generation, stop_after);

            let part2 = optimize_resumable(&Tradeoff, &cfg, Some(state), &mut Unobserved);
            assert!(!part2.interrupted);
            let xs: Vec<u8> = part2.archive.iter().map(|i| i.genotype).collect();
            assert_eq!(xs, ref_xs, "stop at {stop_after} diverged");
            assert_eq!(part2.history, reference.history);
            assert_eq!(part2.evaluations, reference.evaluations);
            for (a, b) in part2.front.iter().zip(&reference.front) {
                assert_eq!(a.genotype, b.genotype);
                assert_eq!(a.eval, b.eval);
            }
        }
    }

    #[test]
    fn interrupted_result_reflects_the_last_completed_generation() {
        let cfg = GaConfig {
            population: 10,
            generations: 20,
            seed: 5,
            ..Default::default()
        };
        let mut obs = StopAt {
            stop_after: 3,
            states: Vec::new(),
        };
        let r = optimize_resumable(&Constrained, &cfg, None, &mut obs);
        assert!(r.interrupted);
        assert_eq!(r.history.len(), 4, "generations 0..=3");
        assert_eq!(r.evaluations, 10 + 10 * 3);
        assert!(!r.front.is_empty());
    }

    #[test]
    fn driver_routes_evaluation_through_the_batch_hook() {
        /// Counts batch calls and serves evaluations itself, proving the
        /// driver never falls back to per-genotype evaluation.
        struct Batched(AtomicUsize);
        impl Problem for Batched {
            type Genotype = u8;
            fn random(&self, rng: &mut dyn RngCore) -> u8 {
                (rng.next_u32() % 11) as u8
            }
            fn crossover(&self, a: &u8, _: &u8, _: &mut dyn RngCore) -> u8 {
                *a
            }
            fn mutate(&self, _: &mut u8, _: &mut dyn RngCore) {}
            fn evaluate(&self, _: &u8) -> Evaluation {
                panic!("the driver must call evaluate_batch, not evaluate");
            }
            fn evaluate_batch(&self, genotypes: &[u8], _threads: usize) -> Vec<Evaluation> {
                self.0.fetch_add(1, Ordering::Relaxed);
                genotypes
                    .iter()
                    .map(|g| Evaluation::feasible(vec![*g as f64]))
                    .collect()
            }
            fn num_objectives(&self) -> usize {
                1
            }
        }
        let p = Batched(AtomicUsize::new(0));
        let r = optimize(
            &p,
            &GaConfig {
                population: 6,
                generations: 4,
                ..Default::default()
            },
        );
        // One batch for the initial population + one per generation.
        assert_eq!(p.0.load(Ordering::Relaxed), 5);
        assert_eq!(r.evaluations, 6 + 6 * 4);
    }
}
