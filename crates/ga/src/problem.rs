//! The optimization-problem abstraction.

use rand::RngCore;

/// The outcome of evaluating one candidate solution.
///
/// All objectives are **minimized**; maximization objectives must be negated
/// by the problem. Infeasible candidates carry a `penalty` (> 0) used for
/// constrained dominance: any feasible candidate beats any infeasible one,
/// and among infeasible candidates the smaller penalty wins.
///
/// # Examples
///
/// ```
/// use mcmap_ga::Evaluation;
/// let ok = Evaluation::feasible(vec![1.0, 2.0]);
/// let bad = Evaluation::infeasible(vec![0.0, 0.0], 3.5);
/// assert!(ok.feasible);
/// assert_eq!(bad.penalty, 3.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Objective values, all minimized.
    pub objectives: Vec<f64>,
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// Constraint-violation magnitude (0 for feasible candidates).
    pub penalty: f64,
}

impl Evaluation {
    /// A feasible evaluation.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Evaluation {
            objectives,
            feasible: true,
            penalty: 0.0,
        }
    }

    /// An infeasible evaluation with the given violation magnitude.
    pub fn infeasible(objectives: Vec<f64>, penalty: f64) -> Self {
        Evaluation {
            objectives,
            feasible: false,
            penalty,
        }
    }
}

/// A multi-objective optimization problem over an arbitrary genotype.
///
/// The framework owns the population mechanics (selection, archives,
/// elitism); the problem supplies genotype construction, variation
/// operators, and evaluation. Evaluation must be a pure function of the
/// genotype (`&self`) so that the driver may evaluate candidates in
/// parallel — use interior mutability with atomics for statistics.
pub trait Problem: Sync {
    /// The genotype this problem optimizes.
    type Genotype: Clone + Send + Sync;

    /// Samples a random genotype.
    fn random(&self, rng: &mut dyn RngCore) -> Self::Genotype;

    /// Recombines two parents into one offspring.
    fn crossover(
        &self,
        a: &Self::Genotype,
        b: &Self::Genotype,
        rng: &mut dyn RngCore,
    ) -> Self::Genotype;

    /// Mutates a genotype in place.
    fn mutate(&self, g: &mut Self::Genotype, rng: &mut dyn RngCore);

    /// Evaluates a genotype.
    fn evaluate(&self, g: &Self::Genotype) -> Evaluation;

    /// Evaluates a whole population, returning one [`Evaluation`] per
    /// genotype **in input order**.
    ///
    /// This is the driver's batch hook: [`optimize`](crate::optimize) calls
    /// it once per generation with the configured thread count, so problems
    /// can plug in their own evaluation engine (memoization, custom pools —
    /// see `mcmap-eval`). Because evaluation is required to be a pure
    /// function of the genotype, any override must keep the result
    /// independent of `threads`; the default implementation spreads the
    /// batch over scoped `std::thread` workers and gathers by index, which
    /// guarantees exactly that.
    fn evaluate_batch(&self, genotypes: &[Self::Genotype], threads: usize) -> Vec<Evaluation> {
        if threads <= 1 || genotypes.len() < 2 {
            return genotypes.iter().map(|g| self.evaluate(g)).collect();
        }
        let chunk = genotypes.len().div_ceil(threads);
        let mut results: Vec<Option<Evaluation>> = vec![None; genotypes.len()];
        std::thread::scope(|scope| {
            for (slot_chunk, geno_chunk) in results.chunks_mut(chunk).zip(genotypes.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, g) in slot_chunk.iter_mut().zip(geno_chunk) {
                        *slot = Some(self.evaluate(g));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|e| e.expect("every slot evaluated"))
            .collect()
    }

    /// Evaluates a whole population with a *designated parent* per genotype
    /// — the archive member the child was derived from by variation (the
    /// first tournament pick), or `None` for de-novo candidates.
    ///
    /// The parent is a **hint, never an input**: results must be bit-equal
    /// to [`Problem::evaluate_batch`] on the same genotypes for every
    /// parent vector, including all-`None`. Problems with an incremental
    /// fast path (see `mcmap-core`'s genome-delta analysis) override this
    /// to reuse the parent's already-computed artifacts where provably
    /// unchanged; the default implementation ignores the hint and
    /// delegates, so existing problems are unaffected.
    ///
    /// `parents.len()` must equal `genotypes.len()`.
    fn evaluate_batch_with_parents(
        &self,
        genotypes: &[Self::Genotype],
        parents: &[Option<&Self::Genotype>],
        threads: usize,
    ) -> Vec<Evaluation> {
        debug_assert_eq!(genotypes.len(), parents.len());
        let _ = parents;
        self.evaluate_batch(genotypes, threads)
    }

    /// Number of objective dimensions produced by [`Problem::evaluate`].
    fn num_objectives(&self) -> usize;
}

/// A genotype together with its evaluation.
#[derive(Debug, Clone)]
pub struct Individual<G> {
    /// The candidate solution.
    pub genotype: G,
    /// Its evaluation.
    pub eval: Evaluation,
}

impl<G> Individual<G> {
    /// Pairs a genotype with its evaluation.
    pub fn new(genotype: G, eval: Evaluation) -> Self {
        Individual { genotype, eval }
    }
}

/// Constrained Pareto dominance (Deb): feasible beats infeasible; two
/// infeasible candidates compare by penalty; two feasible candidates compare
/// by Pareto dominance over the objective vector.
///
/// Returns `true` when `a` dominates `b`.
///
/// # Examples
///
/// ```
/// use mcmap_ga::{constrained_dominates, Evaluation};
/// let a = Evaluation::feasible(vec![1.0, 1.0]);
/// let b = Evaluation::feasible(vec![2.0, 1.0]);
/// assert!(constrained_dominates(&a, &b));
/// assert!(!constrained_dominates(&b, &a));
/// ```
pub fn constrained_dominates(a: &Evaluation, b: &Evaluation) -> bool {
    match (a.feasible, b.feasible) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.penalty < b.penalty,
        (true, true) => dominates(&a.objectives, &b.objectives),
    }
}

/// Plain Pareto dominance over minimized objective vectors: `a` is no worse
/// in every dimension and strictly better in at least one.
///
/// # Panics
///
/// Panics (in debug builds) if the vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the non-dominated subset (the Pareto front) of a set of
/// individuals under constrained dominance. Duplicates (equal objective
/// vectors) are all kept.
pub fn pareto_front<G: Clone>(individuals: &[Individual<G>]) -> Vec<Individual<G>> {
    individuals
        .iter()
        .filter(|a| {
            !individuals
                .iter()
                .any(|b| constrained_dominates(&b.eval, &a.eval))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict gain
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn constrained_dominance_prefers_feasible() {
        let f = Evaluation::feasible(vec![100.0]);
        let i = Evaluation::infeasible(vec![0.0], 1.0);
        assert!(constrained_dominates(&f, &i));
        assert!(!constrained_dominates(&i, &f));
    }

    #[test]
    fn infeasible_compare_by_penalty() {
        let a = Evaluation::infeasible(vec![0.0], 1.0);
        let b = Evaluation::infeasible(vec![0.0], 2.0);
        assert!(constrained_dominates(&a, &b));
        assert!(!constrained_dominates(&b, &a));
        assert!(!constrained_dominates(&a, &a));
    }

    #[test]
    fn pareto_front_extraction() {
        let inds: Vec<Individual<u32>> = vec![
            Individual::new(0, Evaluation::feasible(vec![1.0, 4.0])),
            Individual::new(1, Evaluation::feasible(vec![2.0, 2.0])),
            Individual::new(2, Evaluation::feasible(vec![4.0, 1.0])),
            Individual::new(3, Evaluation::feasible(vec![3.0, 3.0])), // dominated by 1
            Individual::new(4, Evaluation::infeasible(vec![0.0, 0.0], 1.0)),
        ];
        let front = pareto_front(&inds);
        let ids: Vec<u32> = front.iter().map(|i| i.genotype).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn pareto_front_of_infeasible_only_keeps_least_violating() {
        let inds: Vec<Individual<u32>> = vec![
            Individual::new(0, Evaluation::infeasible(vec![0.0], 5.0)),
            Individual::new(1, Evaluation::infeasible(vec![0.0], 2.0)),
        ];
        let front = pareto_front(&inds);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].genotype, 1);
    }
}
