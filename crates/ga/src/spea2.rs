//! SPEA-II environmental selection (Zitzler, Laumanns, Thiele 2001), the
//! population selector used by the paper's DSE (§4, [19]).

use crate::{constrained_dominates, Evaluation, Individual};

/// SPEA-II fitness values for one pooled population (population ∪ archive).
///
/// Smaller is better; values `< 1` identify non-dominated individuals.
#[derive(Debug, Clone, PartialEq)]
pub struct Spea2Fitness {
    /// Final fitness `F(i) = R(i) + D(i)`.
    pub fitness: Vec<f64>,
    /// Raw dominance fitness `R(i)` (0 for non-dominated individuals).
    pub raw: Vec<f64>,
}

/// Computes SPEA-II fitness for a pooled set of evaluations.
///
/// * strength `S(i)` = number of individuals `i` dominates;
/// * raw fitness `R(i)` = Σ `S(j)` over all `j` dominating `i`;
/// * density `D(i) = 1 / (σᵢᵏ + 2)` with `σᵢᵏ` the distance to the `k`-th
///   nearest neighbour in normalized objective space, `k = ⌊√N⌋`.
pub fn spea2_fitness(evals: &[Evaluation]) -> Spea2Fitness {
    let n = evals.len();
    if n == 0 {
        return Spea2Fitness {
            fitness: Vec::new(),
            raw: Vec::new(),
        };
    }
    // Strength.
    let mut strength = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && constrained_dominates(&evals[i], &evals[j]) {
                strength[i] += 1;
            }
        }
    }
    // Raw fitness.
    let mut raw = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && constrained_dominates(&evals[j], &evals[i]) {
                raw[i] += strength[j] as f64;
            }
        }
    }
    // Density over normalized objective distances.
    let dist = normalized_distances(evals);
    let k = (n as f64).sqrt().floor() as usize;
    let k = k.clamp(1, n.saturating_sub(1).max(1));
    let mut fitness = vec![0.0f64; n];
    for i in 0..n {
        let mut row: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| dist[i][j]).collect();
        row.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        let sigma = row.get(k - 1).copied().unwrap_or(0.0);
        fitness[i] = raw[i] + 1.0 / (sigma + 2.0);
    }
    Spea2Fitness { fitness, raw }
}

/// Pairwise Euclidean distances in min-max-normalized objective space.
fn normalized_distances(evals: &[Evaluation]) -> Vec<Vec<f64>> {
    let n = evals.len();
    let dims = evals.first().map_or(0, |e| e.objectives.len());
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for e in evals {
        for (d, &v) in e.objectives.iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    let span: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| if h > l { h - l } else { 1.0 })
        .collect();
    let mut dist = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d2: f64 = (0..dims)
                .map(|d| {
                    let x = (evals[i].objectives[d] - evals[j].objectives[d]) / span[d];
                    x * x
                })
                .sum();
            let d = d2.sqrt();
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    dist
}

/// SPEA-II environmental selection: picks `capacity` indices from the pooled
/// set.
///
/// Non-dominated individuals (`F < 1`) are kept; if they exceed the
/// capacity, the most crowded ones are truncated (iteratively removing the
/// individual with the smallest nearest-neighbour distance); if they fall
/// short, the best dominated individuals fill the remainder.
pub fn environmental_selection<G: Clone>(
    pool: &[Individual<G>],
    capacity: usize,
) -> Vec<Individual<G>> {
    let evals: Vec<Evaluation> = pool.iter().map(|i| i.eval.clone()).collect();
    let fit = spea2_fitness(&evals);
    let mut nondominated: Vec<usize> = (0..pool.len()).filter(|&i| fit.fitness[i] < 1.0).collect();

    if nondominated.len() > capacity {
        // SPEA-II truncation: iteratively remove the individual whose
        // sorted distance vector to the surviving neighbours is
        // lexicographically smallest — ties on the nearest neighbour are
        // broken by the second-nearest and so on, which preserves the
        // extreme points of evenly spaced fronts.
        let dist = normalized_distances(&evals);
        while nondominated.len() > capacity {
            let mut worst = 0usize;
            let mut worst_key: Option<Vec<f64>> = None;
            for (pos, &i) in nondominated.iter().enumerate() {
                let mut row: Vec<f64> = nondominated
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| dist[i][j])
                    .collect();
                row.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
                let smaller = match &worst_key {
                    None => true,
                    Some(best) => row
                        .iter()
                        .zip(best.iter())
                        .find_map(|(a, b)| {
                            if a < b {
                                Some(true)
                            } else if a > b {
                                Some(false)
                            } else {
                                None
                            }
                        })
                        .unwrap_or(false),
                };
                if smaller {
                    worst_key = Some(row);
                    worst = pos;
                }
            }
            nondominated.swap_remove(worst);
        }
        return nondominated.iter().map(|&i| pool[i].clone()).collect();
    }

    // Fill with the best dominated individuals.
    let mut rest: Vec<usize> = (0..pool.len()).filter(|&i| fit.fitness[i] >= 1.0).collect();
    rest.sort_by(|&a, &b| {
        fit.fitness[a]
            .partial_cmp(&fit.fitness[b])
            .expect("fitness is finite")
    });
    nondominated.extend(
        rest.into_iter()
            .take(capacity - nondominated.len().min(capacity)),
    );
    nondominated.truncate(capacity);
    nondominated.iter().map(|&i| pool[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluation;

    fn ind(objs: Vec<f64>) -> Individual<usize> {
        Individual::new(0, Evaluation::feasible(objs))
    }

    #[test]
    fn nondominated_have_fitness_below_one() {
        let evals = vec![
            Evaluation::feasible(vec![1.0, 4.0]),
            Evaluation::feasible(vec![4.0, 1.0]),
            Evaluation::feasible(vec![3.0, 3.0]),
            Evaluation::feasible(vec![5.0, 5.0]), // dominated by all? by (3,3) and others
        ];
        let fit = spea2_fitness(&evals);
        assert!(fit.fitness[0] < 1.0);
        assert!(fit.fitness[1] < 1.0);
        assert!(fit.fitness[2] < 1.0);
        assert!(fit.fitness[3] >= 1.0);
        assert_eq!(fit.raw[0], 0.0);
        assert!(fit.raw[3] > 0.0);
    }

    #[test]
    fn raw_fitness_accumulates_dominator_strength() {
        // Chain: a dominates b dominates c.
        let evals = vec![
            Evaluation::feasible(vec![1.0]),
            Evaluation::feasible(vec![2.0]),
            Evaluation::feasible(vec![3.0]),
        ];
        let fit = spea2_fitness(&evals);
        // S(a)=2, S(b)=1. R(c) = S(a)+S(b) = 3; R(b) = S(a) = 2.
        assert_eq!(fit.raw, vec![0.0, 2.0, 3.0]);
    }

    #[test]
    fn selection_keeps_nondominated_up_to_capacity() {
        let pool = vec![
            ind(vec![1.0, 4.0]),
            ind(vec![2.0, 2.0]),
            ind(vec![4.0, 1.0]),
            ind(vec![5.0, 5.0]),
        ];
        let sel = environmental_selection(&pool, 3);
        assert_eq!(sel.len(), 3);
        let objs: Vec<&[f64]> = sel.iter().map(|i| i.eval.objectives.as_slice()).collect();
        assert!(!objs.contains(&[5.0, 5.0].as_slice()));
    }

    #[test]
    fn selection_fills_with_best_dominated() {
        let pool = vec![
            ind(vec![1.0, 1.0]),
            ind(vec![2.0, 2.0]),
            ind(vec![9.0, 9.0]),
        ];
        let sel = environmental_selection(&pool, 2);
        assert_eq!(sel.len(), 2);
        // (1,1) non-dominated, (2,2) is the better dominated filler.
        assert!(sel.iter().any(|i| i.eval.objectives == vec![1.0, 1.0]));
        assert!(sel.iter().any(|i| i.eval.objectives == vec![2.0, 2.0]));
    }

    #[test]
    fn truncation_preserves_spread() {
        // Five points on a front; capacity 3 should keep the extremes.
        let pool = vec![
            ind(vec![0.0, 4.0]),
            ind(vec![1.0, 3.0]),
            ind(vec![2.0, 2.0]),
            ind(vec![3.0, 1.0]),
            ind(vec![4.0, 0.0]),
        ];
        let sel = environmental_selection(&pool, 3);
        assert_eq!(sel.len(), 3);
        let objs: Vec<Vec<f64>> = sel.iter().map(|i| i.eval.objectives.clone()).collect();
        assert!(objs.contains(&vec![0.0, 4.0]));
        assert!(objs.contains(&vec![4.0, 0.0]));
    }

    #[test]
    fn empty_pool_is_fine() {
        let fit = spea2_fitness(&[]);
        assert!(fit.fitness.is_empty());
        let sel: Vec<Individual<usize>> = environmental_selection(&[], 5);
        assert!(sel.is_empty());
    }
}
