//! # mcmap-ga
//!
//! A from-scratch multi-objective evolutionary optimization framework — the
//! library's stand-in for the Opt4J engine \[18\] with the SPEA-II selector
//! \[19\] used by the paper's design-space exploration (§4).
//!
//! * [`Problem`] — genotype construction, variation operators, evaluation;
//! * [`optimize`] — the generational loop (binary-tournament mating,
//!   crossover/mutation, environmental selection) with optional parallel
//!   evaluation;
//! * [`Selector::Spea2`] — strength-Pareto fitness with k-NN density and
//!   truncation (the paper's configuration);
//! * [`Selector::Nsga2`] — non-dominated sorting with crowding distance,
//!   for ablation;
//! * constrained dominance (feasible ≻ infeasible, then penalty) so repair
//!   heuristics and penalties compose cleanly;
//! * [`hypervolume_2d`] / [`pareto_front`] quality indicators.
//!
//! # Examples
//!
//! See [`optimize`] for a complete single-objective example and the
//! `mcmap-core` crate for the full mapping problem.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod hypervolume;
mod nsga2;
mod problem;
mod spea2;

pub use driver::{
    optimize, optimize_resumable, DriverState, GaConfig, GaResult, GenerationObserver,
    GenerationSnapshot, GenerationStats, LoopControl, Selector, Unobserved,
};
pub use hypervolume::{front_extent, hypervolume_2d};
pub use nsga2::{crowding_distance, non_dominated_sort, nsga2_selection};
pub use problem::{
    constrained_dominates, dominates, pareto_front, Evaluation, Individual, Problem,
};
pub use spea2::{environmental_selection, spea2_fitness, Spea2Fitness};
