//! NSGA-II selection (Deb et al., 2002), provided as an alternative
//! population selector for ablation against SPEA-II.

use crate::{constrained_dominates, Evaluation, Individual};

/// Fast non-dominated sorting: returns fronts of indices, best first.
pub fn non_dominated_sort(evals: &[Evaluation]) -> Vec<Vec<usize>> {
    let n = evals.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if constrained_dominates(&evals[i], &evals[j]) {
                dominated_by[i].push(j);
            } else if constrained_dominates(&evals[j], &evals[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance of each member of one front (larger = less crowded;
/// boundary points get `f64::INFINITY`).
pub fn crowding_distance(evals: &[Evaluation], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    let mut dist = vec![0.0f64; m];
    if m == 0 {
        return dist;
    }
    let dims = evals[front[0]].objectives.len();
    for d in 0..dims {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            evals[front[a]].objectives[d]
                .partial_cmp(&evals[front[b]].objectives[d])
                .expect("objectives are finite")
        });
        let lo = evals[front[order[0]]].objectives[d];
        let hi = evals[front[order[m - 1]]].objectives[d];
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        let span = if hi > lo { hi - lo } else { 1.0 };
        for w in 1..m.saturating_sub(1) {
            let prev = evals[front[order[w - 1]]].objectives[d];
            let next = evals[front[order[w + 1]]].objectives[d];
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// NSGA-II environmental selection: rank by fronts, break the last partial
/// front by crowding distance.
pub fn nsga2_selection<G: Clone>(pool: &[Individual<G>], capacity: usize) -> Vec<Individual<G>> {
    let evals: Vec<Evaluation> = pool.iter().map(|i| i.eval.clone()).collect();
    let fronts = non_dominated_sort(&evals);
    let mut selected: Vec<usize> = Vec::with_capacity(capacity);
    for front in fronts {
        if selected.len() + front.len() <= capacity {
            selected.extend_from_slice(&front);
            if selected.len() == capacity {
                break;
            }
        } else {
            let need = capacity - selected.len();
            let dist = crowding_distance(&evals, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                dist[b]
                    .partial_cmp(&dist[a])
                    .expect("crowding is comparable")
            });
            selected.extend(order.into_iter().take(need).map(|k| front[k]));
            break;
        }
    }
    selected.into_iter().map(|i| pool[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(objs: Vec<f64>) -> Evaluation {
        Evaluation::feasible(objs)
    }

    #[test]
    fn sorting_layers_fronts() {
        let evals = vec![
            ev(vec![1.0, 4.0]), // front 0
            ev(vec![4.0, 1.0]), // front 0
            ev(vec![2.0, 5.0]), // front 1 (dominated by 0)
            ev(vec![5.0, 5.0]), // front 2 (dominated by 2 and others)
        ];
        let fronts = non_dominated_sort(&evals);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2]);
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn infeasible_sink_to_later_fronts() {
        let evals = vec![
            ev(vec![9.0]),
            Evaluation::infeasible(vec![0.0], 1.0),
            Evaluation::infeasible(vec![0.0], 2.0),
        ];
        let fronts = non_dominated_sort(&evals);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn crowding_rewards_boundary_points() {
        let evals = vec![ev(vec![0.0, 4.0]), ev(vec![2.0, 2.0]), ev(vec![4.0, 0.0])];
        let front = vec![0, 1, 2];
        let d = crowding_distance(&evals, &front);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1].is_finite());
    }

    #[test]
    fn selection_respects_capacity_and_rank() {
        let pool: Vec<Individual<usize>> = vec![
            Individual::new(0, ev(vec![1.0, 4.0])),
            Individual::new(1, ev(vec![4.0, 1.0])),
            Individual::new(2, ev(vec![2.0, 5.0])),
            Individual::new(3, ev(vec![5.0, 5.0])),
        ];
        let sel = nsga2_selection(&pool, 2);
        let ids: Vec<usize> = sel.iter().map(|i| i.genotype).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&0) && ids.contains(&1));
    }

    #[test]
    fn partial_front_broken_by_crowding() {
        // One front of 5; capacity 3 keeps extremes plus one middle point.
        let pool: Vec<Individual<usize>> = (0..5)
            .map(|i| Individual::new(i, ev(vec![i as f64, 4.0 - i as f64])))
            .collect();
        let sel = nsga2_selection(&pool, 3);
        let ids: Vec<usize> = sel.iter().map(|i| i.genotype).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&4));
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(non_dominated_sort(&[]).is_empty());
        let sel: Vec<Individual<usize>> = nsga2_selection(&[], 4);
        assert!(sel.is_empty());
    }
}
