//! Golden-file snapshot of the Prometheus text exposition: a fixed
//! registry must render byte-identically to `tests/golden/metrics.prom`.
//! Regenerate after an intentional format change with
//! `MCMAP_UPDATE_GOLDEN=1 cargo test -p mcmap-telemetry prometheus_golden`.

use mcmap_telemetry::{Class, Registry};

/// A registry exercising every exposition shape: unlabelled and labelled
/// counters, a gauge, and histograms with and without labels.
fn reference_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("eval.batches", Class::Det).add(3);
    reg.counter("eval.genomes", Class::Det).add(96);
    reg.counter_with("serve.requests", &[("verb", "stats")], Class::Nondet)
        .add(2);
    reg.counter_with("serve.requests", &[("verb", "submit")], Class::Nondet)
        .inc();
    reg.gauge("serve.queue_depth", Class::Nondet).set(4);
    let h = reg.histogram("sched.fixedpoint_iters", Class::Det);
    for v in [1u64, 2, 2, 3, 7] {
        h.observe(v);
    }
    let labelled = reg.histogram_with("serve.slice_ns", &[("job", "job-000001")], Class::Nondet);
    for v in [900u64, 1_500, 70_000] {
        labelled.observe(v);
    }
    reg
}

#[test]
fn prometheus_exposition_matches_golden() {
    let text = reference_registry().snapshot().to_prometheus();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("MCMAP_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("update golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("read golden metrics.prom");
    assert_eq!(
        text, want,
        "Prometheus exposition drifted from tests/golden/metrics.prom — \
         if intentional, regenerate with MCMAP_UPDATE_GOLDEN=1"
    );
}

#[test]
fn json_snapshot_is_stable_across_identical_registries() {
    // Two registries fed identically render byte-identical JSON too — the
    // snapshot order is (name, labels), never insertion order.
    let a = reference_registry().snapshot().to_json();
    let b = reference_registry().snapshot().to_json();
    assert_eq!(a, b);
}
