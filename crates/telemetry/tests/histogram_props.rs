//! Property tests for the log2 histogram: merge associativity against the
//! concatenated stream, quantile monotonicity, and bucket-edge bounds.

use mcmap_telemetry::{bucket_lower, bucket_of, bucket_upper, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Observation streams that exercise every bucket-size regime: zeros, the
/// exact power-of-two edges, and arbitrary magnitudes.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    let v = prop_oneof![
        Just(0u64),
        1u64..16,
        (0u32..63).prop_map(|s| 1u64 << s),
        (0u32..63).prop_map(|s| (1u64 << s).wrapping_sub(1)),
        any::<u64>(),
    ];
    prop::collection::vec(v, 0..64)
}

fn observed(stream: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in stream {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// `merge(a, b)` is exactly the histogram of the concatenated stream —
    /// the property that makes per-shard collection sound.
    #[test]
    fn merge_equals_concatenated_stream(a in arb_stream(), b in arb_stream()) {
        let mut merged = observed(&a);
        merged.merge(&observed(&b));

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let whole = observed(&concat);

        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.buckets(), whole.buckets());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    /// Quantile estimates never decrease as `q` grows, and every estimate
    /// stays inside the observed `[min, max]` range.
    #[test]
    fn quantiles_are_monotone_and_bounded(stream in arb_stream()) {
        let snap = observed(&stream);
        if stream.is_empty() {
            prop_assert_eq!(snap.quantile(0.5), None);
            return Ok(());
        }
        let min = *stream.iter().min().unwrap();
        let max = *stream.iter().max().unwrap();
        let mut last = None;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = snap.quantile(q).expect("non-empty");
            prop_assert!(v >= min && v <= max, "quantile {} = {} outside [{}, {}]", q, v, min, max);
            if let Some(prev) = last {
                prop_assert!(v >= prev, "quantile not monotone: q={} gave {} after {}", q, v, prev);
            }
            last = Some(v);
        }
    }

    /// The quantile estimate lies within the edges of the bucket that holds
    /// the rank-`ceil(q·count)` observation.
    #[test]
    fn quantile_within_selected_bucket_edges(stream in arb_stream(), q in 0.0f64..1.0) {
        if stream.is_empty() {
            return Ok(());
        }
        let snap = observed(&stream);
        let v = snap.quantile(q).expect("non-empty");
        // Recompute the selected bucket independently from the raw stream.
        let mut sorted = stream.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let bucket = bucket_of(sorted[rank - 1]);
        // Clamping to [min, max] can only tighten toward the true value,
        // never escape the bucket's theoretical edges by more than the
        // observed extremes allow.
        let lo = bucket_lower(bucket).min(snap.max().unwrap());
        let hi = bucket_upper(bucket).max(snap.min().unwrap());
        prop_assert!(
            v >= lo.min(snap.min().unwrap()) && v <= hi,
            "quantile {} = {} escapes bucket {} edges [{}, {}]",
            q, v, bucket, bucket_lower(bucket), bucket_upper(bucket)
        );
    }

    /// Every value lands in the bucket whose edges contain it — the exact
    /// deterministic bucket semantics the snapshot format promises.
    #[test]
    fn bucket_edges_contain_their_values(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(v >= bucket_lower(i));
        prop_assert!(v <= bucket_upper(i));
    }
}
