//! The log2-bucketed histogram: a lock-free live instrument plus a plain
//! mergeable snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for the value 0 plus one per power of
/// two up to `2^64`.
pub const BUCKETS: usize = 65;

/// The bucket index of a value: 0 for 0, otherwise the number of
/// significant bits (so bucket `k` holds `[2^(k-1), 2^k - 1]`). A pure
/// function of the value — bucketing never depends on observation order.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// The smallest value landing in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// The largest value landing in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i == 0 {
        0
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A thread-safe log2 histogram. `observe` is lock-free (relaxed atomics),
/// so it is safe on evaluation hot paths; read it out with
/// [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty — the identity of `min`.
    min: AtomicU64,
    /// `0` while empty — the identity of `max`.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_add wraps on overflow, matching the snapshot's wrapping
        // merge, so the concat/merge law holds even for pathological sums.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity of [`HistogramSnapshot::merge`].
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// Records one observation (the offline sibling of
    /// [`Histogram::observe`]).
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Associative and commutative, with the
    /// empty snapshot as identity: `merge(a, b)` equals observing the
    /// concatenation of both observation streams, exactly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += n;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Wrapping sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Per-bucket counts (index via [`bucket_of`], edges via
    /// [`bucket_lower`] / [`bucket_upper`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// An estimate of the `q`-quantile (`q` clamped to `[0, 1]`), or
    /// `None` when empty.
    ///
    /// The estimate is the upper edge of the bucket holding the rank
    /// `ceil(q·count)` observation, clamped to the observed `[min, max]`
    /// range — so it always lies within the selected bucket's edges and
    /// is monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(bucket_upper(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
            if i + 1 < BUCKETS {
                assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1));
            }
        }
    }

    #[test]
    fn live_and_offline_histograms_agree() {
        let live = Histogram::new();
        let mut off = HistogramSnapshot::new();
        for v in [0, 1, 7, 8, 1_000_000, u64::MAX] {
            live.observe(v);
            off.observe(v);
        }
        assert_eq!(live.snapshot(), off);
    }

    #[test]
    fn quantiles_hit_exact_buckets() {
        let mut h = HistogramSnapshot::new();
        for v in [10u64, 20, 30, 40, 1_000] {
            h.observe(v);
        }
        // rank 1 lives in bucket 4 ([8, 15]); p99 selects the last value,
        // whose bucket upper edge (1023) clamps to the observed max.
        assert_eq!(h.quantile(0.0), Some(15));
        assert_eq!(h.quantile(0.99), Some(1_000));
        assert!(h.quantile(0.5).unwrap() <= h.quantile(0.95).unwrap());
        assert_eq!(HistogramSnapshot::new().quantile(0.5), None);
    }

    #[test]
    fn merge_identity_and_minmax() {
        let mut a = HistogramSnapshot::new();
        a.observe(5);
        a.observe(500);
        let mut b = HistogramSnapshot::new();
        b.merge(&a);
        assert_eq!(a, b);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
        assert_eq!(HistogramSnapshot::new().min(), None);
    }
}
