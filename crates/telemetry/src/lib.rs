//! # mcmap-telemetry
//!
//! Fleet-grade metrics for the mcmap DSE stack: counters, gauges, and
//! log2-bucketed histograms behind a cloneable [`Registry`] handle, with
//! deterministic JSON snapshots and Prometheus text exposition.
//! Dependency-free (std only).
//!
//! ## Determinism contract
//!
//! The crate extends `mcmap-obs`'s deterministic-vs-nondeterministic
//! split to metrics: every instrument is registered with a [`Class`].
//!
//! * [`Class::Det`] — a deterministic function of the run (backend
//!   calls, fixed-point iterations, batch counts). For a fixed
//!   benchmark/seed/config, the canonical snapshot
//!   ([`Registry::snapshot_canonical`]) is identical regardless of
//!   `--threads`, `--scenario-threads`, or cache capacity.
//! * [`Class::Nondet`] — timing and thread-racy measurements (wall-time
//!   histograms, cache hit/miss splits, queue depths). Excluded from the
//!   canonical snapshot; operational only.
//!
//! Metrics never feed back into search results or the obs event stream,
//! so enabling a registry cannot perturb fronts or canonical traces.
//!
//! ## Histogram semantics
//!
//! [`Histogram`] buckets are exact powers of two: bucket 0 holds the
//! value 0 and bucket `k ≥ 1` holds `[2^(k-1), 2^k - 1]` — 65 buckets
//! covering all of `u64`. Bucketing is a pure function of the value, so
//! two histograms over the same observations are bit-identical, and
//! [`HistogramSnapshot::merge`] is associative and commutative with the
//! empty snapshot as identity: merging equals observing the concatenated
//! stream.
//!
//! ## Example
//!
//! ```
//! use mcmap_telemetry::{Class, Registry};
//!
//! let reg = Registry::new();
//! let batches = reg.counter("eval.batches", Class::Det);
//! let latency = reg.histogram("eval.batch_wall_ns", Class::Nondet);
//! batches.inc();
//! latency.observe(1_250);
//! let snap = reg.snapshot();
//! assert!(snap.to_json().contains("\"eval.batches\""));
//! assert!(snap.to_prometheus().contains("mcmap_eval_batches_total 1"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod registry;
mod render;

pub use hist::{bucket_lower, bucket_of, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    Class, Counter, Gauge, MetricId, MetricSample, Registry, SampleValue, Snapshot,
};
pub use render::prom_name;
