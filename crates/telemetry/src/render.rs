//! Snapshot rendering: a deterministic JSON document and Prometheus text
//! exposition format. Both render the same sorted sample list, so two
//! snapshots of identical registries produce byte-identical output.

use crate::hist::{bucket_upper, HistogramSnapshot};
use crate::registry::{SampleValue, Snapshot};

/// The Prometheus metric-family name of a dotted mcmap metric name:
/// `mcmap_` plus the name with every non-alphanumeric character mapped to
/// `_` (`eval.batch_wall_ns` → `mcmap_eval_batch_wall_ns`).
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("mcmap_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// JSON-escapes `s` (with surrounding quotes) into `out` — the same
/// escape set as the obs trace writer's, so snapshots parse back with
/// `mcmap_obs::parse_json`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_labels_json(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_str(out, v);
    }
    out.push('}');
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        ",\"value\":{{\"count\":{},\"sum\":{}",
        h.count(),
        h.sum()
    ));
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        out.push_str(&format!(",\"min\":{min},\"max\":{max}"));
        for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let v = h.quantile(q).expect("non-empty histogram");
            out.push_str(&format!(",\"{label}\":{v}"));
        }
    }
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{},{}]", bucket_upper(i), n));
    }
    out.push_str("]}");
}

impl Snapshot {
    /// Renders the snapshot as one JSON object:
    /// `{"metrics":[{"name":…,"labels":{…},"class":…,"kind":…,"value":…}]}`.
    /// A histogram's `value` is an object carrying `count`/`sum` (plus
    /// `min`/`max` and `p50`/`p95`/`p99` estimates when non-empty) and the
    /// non-empty `[upper_edge, count]` buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &m.id.name);
            out.push_str(",\"labels\":");
            push_labels_json(&mut out, &m.id.labels);
            out.push_str(&format!(",\"class\":\"{}\"", m.class.as_str()));
            match &m.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(",\"kind\":\"counter\",\"value\":{v}"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(",\"kind\":\"gauge\",\"value\":{v}"));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(",\"kind\":\"histogram\"");
                    push_histogram_json(&mut out, h);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Name mapping follows [`prom_name`]; counters gain the conventional
    /// `_total` suffix; histograms emit cumulative `_bucket{le=…}` lines
    /// at the upper edge of every non-empty bucket plus `le="+Inf"`,
    /// `_sum`, and `_count`. Each family is announced once with `# HELP`
    /// (carrying the dotted name and determinism class) and `# TYPE`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for m in &self.metrics {
            let base = prom_name(&m.id.name);
            let family = match m.value {
                SampleValue::Counter(_) => format!("{base}_total"),
                _ => base,
            };
            if last_family.as_deref() != Some(&family) {
                let kind = match m.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!(
                    "# HELP {family} {} ({})\n# TYPE {family} {kind}\n",
                    m.id.name,
                    m.class.as_str()
                ));
                last_family = Some(family.clone());
            }
            match &m.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{family}{} {v}\n",
                        prom_labels(&m.id.labels, None)
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{family}{} {v}\n",
                        prom_labels(&m.id.labels, None)
                    ));
                }
                SampleValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &n) in h.buckets().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        let le = bucket_upper(i).to_string();
                        out.push_str(&format!(
                            "{family}_bucket{} {cum}\n",
                            prom_labels(&m.id.labels, Some(&le))
                        ));
                    }
                    out.push_str(&format!(
                        "{family}_bucket{} {}\n",
                        prom_labels(&m.id.labels, Some("+Inf")),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{family}_sum{} {}\n",
                        prom_labels(&m.id.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{family}_count{} {}\n",
                        prom_labels(&m.id.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// Renders a Prometheus label set (empty string when there are no labels
/// and no `le` bound). Label values escape `\`, `"`, and newlines per the
/// exposition-format rules.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use crate::{Class, Registry};

    #[test]
    fn json_snapshot_parses_and_orders_metrics() {
        let reg = Registry::new();
        reg.counter("b.calls", Class::Det).add(4);
        reg.gauge("a.depth", Class::Nondet).set(-2);
        let h = reg.histogram("c.wall_ns", Class::Nondet);
        h.observe(3);
        h.observe(700);
        let json = reg.snapshot().to_json();
        assert!(json.find("a.depth").unwrap() < json.find("b.calls").unwrap());
        assert!(json.contains("\"value\":-2"));
        assert!(json.contains("\"p50\":3"));
        assert!(json.contains("\"buckets\":[[3,1],[1023,1]]"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("eval.batch_wall_ns", Class::Nondet);
        for v in [1u64, 1, 2, 900] {
            h.observe(v);
        }
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE mcmap_eval_batch_wall_ns histogram"));
        assert!(text.contains("mcmap_eval_batch_wall_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("mcmap_eval_batch_wall_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("mcmap_eval_batch_wall_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("mcmap_eval_batch_wall_ns_count 4"));
    }

    #[test]
    fn labelled_families_share_one_type_line() {
        let reg = Registry::new();
        reg.counter_with("serve.requests", &[("verb", "stats")], Class::Nondet)
            .inc();
        reg.counter_with("serve.requests", &[("verb", "front")], Class::Nondet)
            .inc();
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE mcmap_serve_requests_total").count(), 1);
        assert!(text.contains("mcmap_serve_requests_total{verb=\"front\"} 1"));
    }
}
