//! The metrics registry: named, optionally labelled instruments behind a
//! cloneable handle, with deterministic snapshots.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The determinism class of a metric (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// A deterministic function of the run — part of the canonical
    /// snapshot, invariant under thread counts and cache capacity.
    Det,
    /// Timing or thread-racy measurement — operational only, excluded
    /// from the canonical snapshot.
    Nondet,
}

impl Class {
    /// The lowercase name used in snapshots (`"det"` / `"nondet"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Det => "det",
            Class::Nondet => "nondet",
        }
    }
}

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, entry counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What uniquely identifies a metric: its dotted name plus its sorted
/// label set. The `Ord` impl (name first) keeps snapshot order — and
/// hence every rendering — deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Dotted metric name (`eval.batch_wall_ns`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>, Class),
    Gauge(Arc<Gauge>, Class),
    Histogram(Arc<Histogram>, Class),
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<MetricId, Instrument>>,
}

/// A cloneable handle to a metrics registry. The disabled default
/// ([`Registry::default`]) hands out detached instruments that record
/// into thin air, so instrumented code needs no enablement branches.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled, empty registry. Clones share the same metric store.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether this handle records anywhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics when the name is already registered as a different
    /// instrument kind.
    pub fn counter(&self, name: &str, class: Class) -> Arc<Counter> {
        self.counter_with(name, &[], class)
    }

    /// Registers (or retrieves) a labelled counter.
    ///
    /// # Panics
    ///
    /// Panics on an instrument-kind conflict.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], class: Class) -> Arc<Counter> {
        match self.instrument(name, labels, || {
            Instrument::Counter(Arc::new(Counter::default()), class)
        }) {
            Some(Instrument::Counter(c, _)) => c,
            Some(_) => panic!("metric {name:?} is already registered as a non-counter"),
            None => Arc::new(Counter::default()),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on an instrument-kind conflict.
    pub fn gauge(&self, name: &str, class: Class) -> Arc<Gauge> {
        self.gauge_with(name, &[], class)
    }

    /// Registers (or retrieves) a labelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on an instrument-kind conflict.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], class: Class) -> Arc<Gauge> {
        match self.instrument(name, labels, || {
            Instrument::Gauge(Arc::new(Gauge::default()), class)
        }) {
            Some(Instrument::Gauge(g, _)) => g,
            Some(_) => panic!("metric {name:?} is already registered as a non-gauge"),
            None => Arc::new(Gauge::default()),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram.
    ///
    /// # Panics
    ///
    /// Panics on an instrument-kind conflict.
    pub fn histogram(&self, name: &str, class: Class) -> Arc<Histogram> {
        self.histogram_with(name, &[], class)
    }

    /// Registers (or retrieves) a labelled histogram.
    ///
    /// # Panics
    ///
    /// Panics on an instrument-kind conflict.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        class: Class,
    ) -> Arc<Histogram> {
        match self.instrument(name, labels, || {
            Instrument::Histogram(Arc::new(Histogram::default()), class)
        }) {
            Some(Instrument::Histogram(h, _)) => h,
            Some(_) => panic!("metric {name:?} is already registered as a non-histogram"),
            None => Arc::new(Histogram::default()),
        }
    }

    fn instrument(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Option<Instrument> {
        let inner = self.inner.as_ref()?;
        let id = MetricId::new(name, labels);
        let mut metrics = inner.metrics.lock().expect("metrics registry poisoned");
        Some(metrics.entry(id).or_insert_with(make).clone())
    }

    /// A point-in-time copy of every metric, sorted by
    /// `(name, labels)`.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_filtered(|_| true)
    }

    /// The canonical snapshot: deterministic ([`Class::Det`]) metrics
    /// only. For a fixed benchmark/seed/config this rendering is
    /// identical at any thread count or cache capacity.
    pub fn snapshot_canonical(&self) -> Snapshot {
        self.snapshot_filtered(|class| class == Class::Det)
    }

    fn snapshot_filtered(&self, keep: impl Fn(Class) -> bool) -> Snapshot {
        let mut out = Vec::new();
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("metrics registry poisoned");
            for (id, instrument) in metrics.iter() {
                let (class, value) = match instrument {
                    Instrument::Counter(c, class) => (*class, SampleValue::Counter(c.get())),
                    Instrument::Gauge(g, class) => (*class, SampleValue::Gauge(g.get())),
                    Instrument::Histogram(h, class) => {
                        (*class, SampleValue::Histogram(Box::new(h.snapshot())))
                    }
                };
                if keep(class) {
                    out.push(MetricSample {
                        id: id.clone(),
                        class,
                        value,
                    });
                }
            }
        }
        Snapshot { metrics: out }
    }
}

/// One sampled metric.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Name + labels.
    pub id: MetricId,
    /// Determinism class.
    pub class: Class,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value side of a [`MetricSample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Monotone counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(i64),
    /// Full distribution copy (boxed: the 65-bucket array dwarfs the
    /// scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A sorted, point-in-time view of a registry — render it with
/// [`Snapshot::to_json`] or [`Snapshot::to_prometheus`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Samples sorted by `(name, labels)`.
    pub metrics: Vec<MetricSample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("x.calls", Class::Det);
        let b = reg.counter("x.calls", Class::Det);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert!(matches!(snap.metrics[0].value, SampleValue::Counter(3)));
    }

    #[test]
    fn labels_distinguish_series_and_sort_deterministically() {
        let reg = Registry::new();
        reg.counter_with("req", &[("verb", "status")], Class::Nondet)
            .inc();
        reg.counter_with("req", &[("verb", "front")], Class::Nondet)
            .add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.metrics[0].id.labels[0].1, "front");
        assert_eq!(snap.metrics[1].id.labels[0].1, "status");
    }

    #[test]
    fn canonical_snapshot_excludes_nondet() {
        let reg = Registry::new();
        reg.counter("det.calls", Class::Det).inc();
        reg.histogram("wall_ns", Class::Nondet).observe(9);
        assert_eq!(reg.snapshot().metrics.len(), 2);
        let canon = reg.snapshot_canonical();
        assert_eq!(canon.metrics.len(), 1);
        assert_eq!(canon.metrics[0].id.name, "det.calls");
    }

    #[test]
    fn disabled_registry_hands_out_detached_instruments() {
        let reg = Registry::default();
        assert!(!reg.enabled());
        let c = reg.counter("x", Class::Det);
        c.inc();
        assert_eq!(c.get(), 1, "the handle itself still works");
        assert!(reg.snapshot().metrics.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.gauge("depth", Class::Nondet);
        reg.counter("depth", Class::Nondet);
    }
}
