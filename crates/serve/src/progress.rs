//! The per-generation progress tap: a custom [`Sink`] attached to each
//! slice's recorder that forwards `ga.generation` span-ends to stream
//! subscribers.
//!
//! The tap never perturbs the trace — it observes the same event stream
//! the JSONL sink writes (under the recorder's emission lock, in sequence
//! order) and pushes a plain generation number into each subscriber's
//! channel. Slow or dead subscribers are dropped, not waited on: progress
//! streaming is a convenience view, the checkpoint is the durable record.

use mcmap_obs::{Event, EventKind, Sink};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};

/// One job's progress fan-out point. Lives as long as the job's registry
/// entry; each slice's recorder gets a [`TapSink`] handle.
#[derive(Debug, Default)]
pub struct ProgressTap {
    subscribers: Mutex<Vec<Sender<u64>>>,
}

impl ProgressTap {
    /// Registers a subscriber; the returned receiver yields one generation
    /// number per completed boundary from now on.
    pub fn subscribe(&self) -> Receiver<u64> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.subscribers
            .lock()
            .expect("progress tap poisoned")
            .push(tx);
        rx
    }

    /// Pushes one generation number to every live subscriber, pruning the
    /// disconnected ones.
    pub fn publish(&self, generation: u64) {
        self.subscribers
            .lock()
            .expect("progress tap poisoned")
            .retain(|tx| tx.send(generation).is_ok());
    }
}

/// Adapter letting a shared [`ProgressTap`] ride in a recorder's sink list.
#[derive(Debug)]
pub struct TapSink(pub Arc<ProgressTap>);

impl Sink for TapSink {
    fn record(&self, event: &Arc<Event>) {
        if event.kind != EventKind::SpanEnd || event.name != "ga.generation" {
            return;
        }
        let generation = event
            .fields
            .iter()
            .find(|(k, _)| k == "generation")
            .and_then(|(_, v)| v.as_u64());
        if let Some(g) = generation {
            self.0.publish(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_obs::{RecorderBuilder, Value};

    #[test]
    fn tap_forwards_generation_boundaries_only() {
        let tap = Arc::new(ProgressTap::default());
        let rx = tap.subscribe();
        let rec = RecorderBuilder::new()
            .sink(Box::new(TapSink(Arc::clone(&tap))))
            .build();
        rec.span("dse.run", &[]).end();
        for g in 0u64..2 {
            let mut span = rec.span("ga.generation", &[("generation", Value::from(g))]);
            span.field("generation", g);
            span.end();
        }
        let got: Vec<u64> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let tap = ProgressTap::default();
        let rx = tap.subscribe();
        drop(rx);
        let rx2 = tap.subscribe();
        tap.publish(7);
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), vec![7]);
    }
}
