//! The typed blocking client: one TCP connection, one frame in flight.
//!
//! Every method round-trips a single verb; `ok:false` responses surface as
//! `Err(String)` carrying the server's message. Streaming uses the same
//! connection but hands each pushed frame to a callback until the `done`
//! frame arrives — open a second [`Client`] for concurrent control verbs.

use crate::job::JobSpec;
use crate::proto::{push_json_str, read_frame, write_frame};
use mcmap_obs::Json;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Reconnection policy: bounded attempts with exponentially growing,
/// deterministically jittered backoff, and a per-attempt connect
/// timeout.
///
/// The jitter is seeded, not wall-clock driven: the k-th reconnect delay
/// of two clients built with the same seed is identical, which keeps
/// retry behavior reproducible in tests and keeps a fleet of clients
/// with *different* seeds from thundering against a restarting server in
/// lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection attempts per operation (>= 1). `1` means no
    /// retry — the pre-policy behavior.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Jitter seed (see type docs).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A single-attempt policy: fail on the first transport error.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff schedule: the delay before retry `k`
    /// (0-based), jittered into the upper half of the exponential step.
    /// Pure in `(self, k)` — two equally-seeded policies sleep the same.
    pub fn delay(&self, k: u32) -> Duration {
        let base = self.base_delay.as_millis().max(1) as u64;
        let cap = self.max_delay.as_millis().max(1) as u64;
        let full = base.checked_shl(k.min(16)).unwrap_or(u64::MAX).min(cap);
        // SplitMix64 on (seed, k): cheap, stateless, well distributed.
        let mut z = self.seed ^ (u64::from(k)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = full / 2;
        Duration::from_millis(half + z % (full - half + 1))
    }
}

/// A blocking connection to an `mcmap-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addr: String,
    retry: RetryPolicy,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7421`) with a single attempt
    /// and no reconnection (equivalent to
    /// [`Client::connect_with`]`(addr, RetryPolicy::none())`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            addr: addr.to_string(),
            retry: RetryPolicy::none(),
        })
    }

    /// Connects under a retry policy: up to `policy.attempts` timed
    /// connection attempts separated by the policy's backoff schedule.
    /// The policy stays attached to the client, so [`Client::stream`] and
    /// [`Client::wait`] transparently reconnect and re-subscribe when the
    /// server restarts mid-stream.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's connection error once the attempt
    /// budget is exhausted.
    pub fn connect_with(addr: &str, policy: RetryPolicy) -> std::io::Result<Client> {
        let mut last_err = None;
        for k in 0..policy.attempts.max(1) {
            if k > 0 {
                std::thread::sleep(policy.delay(k - 1));
            }
            match connect_timed(addr, policy.connect_timeout) {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        addr: addr.to_string(),
                        retry: policy,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Replaces the attached retry policy.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = policy;
        self
    }

    /// Tears down the current connection and dials again under the
    /// attached policy.
    fn reconnect(&mut self) -> Result<(), String> {
        let mut last_err = String::from("no attempt made");
        for k in 0..self.retry.attempts.max(1) {
            std::thread::sleep(self.retry.delay(k));
            match connect_timed(&self.addr, self.retry.connect_timeout) {
                Ok(stream) => {
                    self.stream = stream;
                    return Ok(());
                }
                Err(e) => last_err = format!("reconnect to {}: {e}", self.addr),
            }
        }
        Err(last_err)
    }

    /// Sends one raw request frame and returns the parsed `ok:true`
    /// response object.
    ///
    /// # Errors
    ///
    /// Returns the server's error message on `ok:false`, or a transport
    /// description when the connection fails mid-exchange.
    pub fn request(&mut self, frame: &str) -> Result<Json, String> {
        let text = self.request_raw(frame)?;
        mcmap_obs::parse_json(&text).map_err(|e| format!("bad response: {e}"))
    }

    /// Like [`Client::request`], but returns the raw `ok:true` response
    /// text — for passthrough printing (the CLI's `status --json` style
    /// output) without a serializer round-trip.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn request_raw(&mut self, frame: &str) -> Result<String, String> {
        write_frame(&mut self.stream, frame).map_err(|e| format!("send: {e}"))?;
        let Some(text) = read_frame(&mut self.stream).map_err(|e| format!("recv: {e}"))? else {
            return Err("server closed the connection".into());
        };
        let json = mcmap_obs::parse_json(&text).map_err(|e| format!("bad response: {e}"))?;
        match json.get("ok") {
            Some(Json::Bool(true)) => Ok(text),
            _ => Err(json
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("unspecified server error")
                .to_string()),
        }
    }

    /// Sends one verb (optionally with an `id` member) and returns the raw
    /// response frame.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn verb_raw(&mut self, verb: &str, id: Option<&str>) -> Result<String, String> {
        let mut frame = String::from("{\"verb\":");
        push_json_str(&mut frame, verb);
        if let Some(id) = id {
            frame.push_str(",\"id\":");
            push_json_str(&mut frame, id);
        }
        frame.push('}');
        self.request_raw(&frame)
    }

    fn id_verb(&mut self, verb: &str, id: &str) -> Result<Json, String> {
        let mut frame = String::from("{\"verb\":");
        push_json_str(&mut frame, verb);
        frame.push_str(",\"id\":");
        push_json_str(&mut frame, id);
        frame.push('}');
        self.request(&frame)
    }

    /// Submits a job spec; returns the assigned job id.
    ///
    /// # Errors
    ///
    /// Returns the server's rejection message (unknown benchmark,
    /// draining server) or a transport error.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, String> {
        let frame = format!("{{\"verb\":\"submit\",\"spec\":{}}}", spec.to_json());
        let resp = self.request(&frame)?;
        resp.get("id")
            .and_then(|v| v.as_str())
            .map(String::from)
            .ok_or_else(|| "submit response has no id".into())
    }

    /// The job's full status document (state, spec, per-tenant counters).
    ///
    /// # Errors
    ///
    /// Returns the server's message for unknown ids, or a transport error.
    pub fn status(&mut self, id: &str) -> Result<Json, String> {
        let resp = self.id_verb("status", id)?;
        resp.get("job")
            .cloned()
            .ok_or_else(|| "status response has no job".into())
    }

    /// One summary object per job on the server.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn list(&mut self) -> Result<Json, String> {
        let resp = self.request("{\"verb\":\"list\"}")?;
        resp.get("jobs")
            .cloned()
            .ok_or_else(|| "list response has no jobs".into())
    }

    /// Requests cancellation at the job's next generation boundary.
    ///
    /// # Errors
    ///
    /// Returns the server's message for unknown ids or terminal jobs.
    pub fn cancel(&mut self, id: &str) -> Result<(), String> {
        self.id_verb("cancel", id).map(|_| ())
    }

    /// Re-enqueues an interrupted or cancelled job.
    ///
    /// # Errors
    ///
    /// Returns the server's message for non-resumable states.
    pub fn resume(&mut self, id: &str) -> Result<(), String> {
        self.id_verb("resume", id).map(|_| ())
    }

    /// The persisted final front of a completed job.
    ///
    /// # Errors
    ///
    /// Returns the server's message when the job has not completed.
    pub fn front(&mut self, id: &str) -> Result<Json, String> {
        let resp = self.id_verb("front", id)?;
        resp.get("front")
            .cloned()
            .ok_or_else(|| "front response has no front".into())
    }

    /// Server-wide statistics: shared-cache counters and job population.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.request("{\"verb\":\"stats\"}")?;
        resp.get("stats")
            .cloned()
            .ok_or_else(|| "stats response has no stats".into())
    }

    /// The server's metrics snapshot as a JSON document: one entry per
    /// instrument, with per-verb request-latency and per-job
    /// slice-duration histograms carrying `p50`/`p95`/`p99` members.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn metrics(&mut self) -> Result<Json, String> {
        let resp = self.request("{\"verb\":\"metrics\"}")?;
        resp.get("metrics")
            .cloned()
            .ok_or_else(|| "metrics response has no metrics".into())
    }

    /// The server's metrics snapshot in the Prometheus text exposition
    /// format, ready to serve to a scraper.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn metrics_prometheus(&mut self) -> Result<String, String> {
        let resp = self.request("{\"verb\":\"metrics\",\"format\":\"prometheus\"}")?;
        resp.get("prometheus")
            .and_then(|v| v.as_str())
            .map(String::from)
            .ok_or_else(|| "metrics response has no prometheus text".into())
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns a transport error.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request("{\"verb\":\"shutdown\"}").map(|_| ())
    }

    /// Streams the job's progress on this connection: `on_generation` is
    /// called once per pushed boundary, and the job's terminal state name
    /// is returned when the `done` frame arrives. The connection stays
    /// usable for further verbs afterwards.
    ///
    /// # Errors
    ///
    /// Returns the server's message for unknown ids, or a transport error
    /// if the stream breaks before `done`.
    pub fn stream(
        &mut self,
        id: &str,
        mut on_generation: impl FnMut(u64),
    ) -> Result<String, String> {
        // Monotonic dedup across reconnects: a re-subscription replays
        // boundaries the first subscription already delivered.
        let mut last_seen: Option<u64> = None;
        let mut resubscriptions = 0u32;
        loop {
            match self.stream_once(id, &mut last_seen, &mut on_generation) {
                Ok(state) => return Ok(state),
                Err(Hiccup::Fatal(msg)) => return Err(msg),
                Err(Hiccup::Transport(msg)) => {
                    resubscriptions += 1;
                    if self.retry.attempts <= 1 || resubscriptions >= self.retry.attempts {
                        return Err(msg);
                    }
                    // Jobs and their terminal states are persisted, so
                    // after a server restart a re-subscription lands on
                    // the same stream (or an immediate `done`).
                    self.reconnect().map_err(|e| format!("{msg}; {e}"))?;
                }
            }
        }
    }

    /// One subscription attempt: subscribe, forward strictly increasing
    /// generation boundaries, and return the terminal state.
    fn stream_once(
        &mut self,
        id: &str,
        last_seen: &mut Option<u64>,
        on_generation: &mut impl FnMut(u64),
    ) -> Result<String, Hiccup> {
        let mut frame = String::from("{\"verb\":\"stream\",\"id\":");
        push_json_str(&mut frame, id);
        frame.push('}');
        write_frame(&mut self.stream, &frame)
            .map_err(|e| Hiccup::Transport(format!("send: {e}")))?;
        let Some(text) =
            read_frame(&mut self.stream).map_err(|e| Hiccup::Transport(format!("recv: {e}")))?
        else {
            return Err(Hiccup::Transport("server closed the connection".into()));
        };
        let ack = mcmap_obs::parse_json(&text)
            .map_err(|e| Hiccup::Fatal(format!("bad response: {e}")))?;
        if ack.get("ok") != Some(&Json::Bool(true)) {
            // The server answered: an unknown id (or other refusal) is
            // authoritative, not a transport wobble — do not retry it.
            return Err(Hiccup::Fatal(
                ack.get("error")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unspecified server error")
                    .to_string(),
            ));
        }
        if ack.get("streaming").is_none() {
            return Err(Hiccup::Fatal(
                "stream response has no streaming acknowledgement".into(),
            ));
        }
        loop {
            let Some(text) = read_frame(&mut self.stream)
                .map_err(|e| Hiccup::Transport(format!("stream recv: {e}")))?
            else {
                return Err(Hiccup::Transport(
                    "stream ended without a done frame".into(),
                ));
            };
            let json = mcmap_obs::parse_json(&text)
                .map_err(|e| Hiccup::Fatal(format!("bad frame: {e}")))?;
            match json.get("event").and_then(|v| v.as_str()) {
                Some("generation") => {
                    if let Some(g) = json.get("generation").and_then(|v| v.as_u64()) {
                        if last_seen.is_none_or(|seen| g > seen) {
                            *last_seen = Some(g);
                            on_generation(g);
                        }
                    }
                }
                Some("done") => {
                    return json
                        .get("state")
                        .and_then(|v| v.as_str())
                        .map(String::from)
                        .ok_or_else(|| Hiccup::Fatal("done frame has no state".into()));
                }
                _ => return Err(Hiccup::Fatal(format!("unexpected stream frame: {text}"))),
            }
        }
    }

    /// Streams until the job is terminal, discarding progress frames.
    ///
    /// # Errors
    ///
    /// Same as [`Client::stream`].
    pub fn wait(&mut self, id: &str) -> Result<String, String> {
        self.stream(id, |_| {})
    }
}

/// A mid-operation failure, split by whether retrying can help.
enum Hiccup {
    /// The connection failed — the server may just be restarting.
    Transport(String),
    /// The server (or the protocol) answered authoritatively.
    Fatal(String),
}

/// One timed TCP connection attempt: resolve `addr` and try every
/// resolved address under the timeout.
fn connect_timed(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last_err = None;
    for sock in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServeConfig;
    use crate::server::spawn_local;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mcmap_serve_client_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn end_to_end_submit_stream_front_stats_shutdown() {
        let dir = scratch("end_to_end");
        let handle = spawn_local(ServeConfig {
            jobs_dir: dir.clone(),
            workers: 2,
            slice: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr.to_string();
        let mut c = Client::connect(&addr).unwrap();
        let spec = JobSpec {
            benchmark: "cruise".into(),
            population: 8,
            generations: 2,
            seed: 8,
        };
        let id = c.submit(&spec).unwrap();
        assert!(id.starts_with("job-"));
        // Stream on a second connection while this one polls verbs.
        let mut streamer = Client::connect(&addr).unwrap();
        let mut boundaries = Vec::new();
        let state = streamer.stream(&id, |g| boundaries.push(g)).unwrap();
        assert_eq!(state, "completed");
        assert!(
            boundaries.contains(&(spec.generations as u64)),
            "stream never reported the final generation: {boundaries:?}"
        );
        let status = c.status(&id).unwrap();
        assert_eq!(
            status.get("state").and_then(|v| v.as_str()),
            Some("completed")
        );
        assert!(
            status
                .get("eval")
                .and_then(|e| e.get("genomes"))
                .and_then(|v| v.as_u64())
                .is_some_and(|g| g > 0),
            "status must expose per-job eval counters"
        );
        let front = c.front(&id).unwrap();
        assert!(front
            .get("reports")
            .is_some_and(|r| matches!(r, Json::Arr(v) if !v.is_empty())));
        let jobs = c.list().unwrap();
        assert!(matches!(jobs, Json::Arr(ref v) if v.len() == 1));
        let stats = c.stats().unwrap();
        assert!(stats.get("cache").is_some());
        assert!(
            stats
                .get("dropped_events")
                .and_then(|v| v.as_u64())
                .is_some(),
            "stats must report the silent-loss counter"
        );
        // Metrics snapshot: per-verb request latencies, per-job slice
        // histograms (with quantiles), and the exploration's own meters.
        let metrics = c.metrics().unwrap();
        let Some(Json::Arr(entries)) = metrics.get("metrics") else {
            panic!("metrics response has no entries: {metrics:?}");
        };
        let by_name = |name: &str| {
            entries
                .iter()
                .filter(|m| m.get("name").and_then(|v| v.as_str()) == Some(name))
                .collect::<Vec<_>>()
        };
        assert!(!by_name("serve.request_ns").is_empty(), "verb latencies");
        assert!(!by_name("eval.batches").is_empty(), "exploration meters");
        let slice = by_name("serve.slice_ns");
        let per_job = slice
            .iter()
            .find(|m| {
                m.get("labels")
                    .and_then(|l| l.get("job"))
                    .and_then(|v| v.as_str())
                    == Some(id.as_str())
            })
            .expect("per-job slice histogram");
        assert!(
            per_job
                .get("value")
                .and_then(|v| v.get("p95"))
                .and_then(|v| v.as_u64())
                .is_some(),
            "slice histogram carries quantiles: {per_job:?}"
        );
        let prom = c.metrics_prometheus().unwrap();
        assert!(prom.contains("# TYPE mcmap_serve_slice_ns histogram"));
        assert!(prom.contains("mcmap_eval_batches_total"));
        assert!(prom.contains("mcmap_serve_request_ns_bucket{"));
        // Unknown verbs and ids produce typed errors, not hangups.
        assert!(c.request("{\"verb\":\"bogus\"}").is_err());
        assert!(c.status("job-999999").is_err());
        c.shutdown().unwrap();
        handle.thread.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: std::time::Duration::from_millis(10),
            max_delay: std::time::Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let twin = policy.clone();
        for k in 0..policy.attempts {
            let d = policy.delay(k);
            assert_eq!(d, twin.delay(k), "same seed, same schedule");
            let full = (10u64 << k.min(16)).min(200);
            assert!(d.as_millis() as u64 >= full / 2, "at least half the step");
            assert!(d.as_millis() as u64 <= full, "never above the cap");
        }
        // A different seed shifts the jitter (with overwhelming
        // probability over 8 draws).
        let other = RetryPolicy {
            seed: policy.seed ^ 0xFFFF,
            ..policy.clone()
        };
        assert!(
            (0..8).any(|k| other.delay(k) != policy.delay(k)),
            "jitter must depend on the seed"
        );
    }

    #[test]
    fn connect_with_gives_up_after_bounded_attempts() {
        // A port nobody listens on: bind, learn the port, drop the
        // listener.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(2),
            connect_timeout: std::time::Duration::from_millis(100),
            seed: 7,
        };
        let t0 = std::time::Instant::now();
        let err = Client::connect_with(&format!("127.0.0.1:{port}"), policy);
        assert!(err.is_err(), "nothing listens there");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "three bounded attempts must not hang"
        );
    }

    #[test]
    fn wait_survives_a_server_restart() {
        use crate::server::Server;
        let dir = scratch("restart");
        let handle = spawn_local(ServeConfig {
            jobs_dir: dir.clone(),
            workers: 1,
            slice: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr.to_string();
        let spec = JobSpec {
            benchmark: "cruise".into(),
            population: 8,
            generations: 2,
            seed: 8,
        };
        let mut c = Client::connect_with(&addr, RetryPolicy::default()).unwrap();
        let id = c.submit(&spec).unwrap();
        assert_eq!(c.wait(&id).unwrap(), "completed");

        // Bounce the server: drain it (on a fresh control connection),
        // then bring a new instance up on the same address and jobs
        // directory after a beat.
        Client::connect(&addr).unwrap().shutdown().unwrap();
        handle.thread.join().unwrap();
        let restarter = {
            let addr = addr.clone();
            let dir = dir.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(150));
                let server = Server::bind(
                    &addr,
                    ServeConfig {
                        jobs_dir: dir,
                        workers: 1,
                        slice: 1,
                        ..ServeConfig::default()
                    },
                )
                .unwrap();
                let shutdown = server.shutdown_handle();
                let t = std::thread::spawn(move || server.run());
                (shutdown, t)
            })
        };

        // The old connection is dead; `wait` must reconnect under the
        // policy, re-subscribe, and land on the persisted terminal state.
        let state = c.wait(&id).expect("wait must survive the restart");
        assert_eq!(state, "completed");

        let (_shutdown, server_thread) = restarter.join().unwrap();
        let mut c2 = Client::connect_with(&addr, RetryPolicy::default()).unwrap();
        c2.shutdown().unwrap();
        server_thread.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
