//! The typed blocking client: one TCP connection, one frame in flight.
//!
//! Every method round-trips a single verb; `ok:false` responses surface as
//! `Err(String)` carrying the server's message. Streaming uses the same
//! connection but hands each pushed frame to a callback until the `done`
//! frame arrives — open a second [`Client`] for concurrent control verbs.

use crate::job::JobSpec;
use crate::proto::{push_json_str, read_frame, write_frame};
use mcmap_obs::Json;
use std::net::TcpStream;

/// A blocking connection to an `mcmap-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7421`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one raw request frame and returns the parsed `ok:true`
    /// response object.
    ///
    /// # Errors
    ///
    /// Returns the server's error message on `ok:false`, or a transport
    /// description when the connection fails mid-exchange.
    pub fn request(&mut self, frame: &str) -> Result<Json, String> {
        let text = self.request_raw(frame)?;
        mcmap_obs::parse_json(&text).map_err(|e| format!("bad response: {e}"))
    }

    /// Like [`Client::request`], but returns the raw `ok:true` response
    /// text — for passthrough printing (the CLI's `status --json` style
    /// output) without a serializer round-trip.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn request_raw(&mut self, frame: &str) -> Result<String, String> {
        write_frame(&mut self.stream, frame).map_err(|e| format!("send: {e}"))?;
        let Some(text) = read_frame(&mut self.stream).map_err(|e| format!("recv: {e}"))? else {
            return Err("server closed the connection".into());
        };
        let json = mcmap_obs::parse_json(&text).map_err(|e| format!("bad response: {e}"))?;
        match json.get("ok") {
            Some(Json::Bool(true)) => Ok(text),
            _ => Err(json
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("unspecified server error")
                .to_string()),
        }
    }

    /// Sends one verb (optionally with an `id` member) and returns the raw
    /// response frame.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn verb_raw(&mut self, verb: &str, id: Option<&str>) -> Result<String, String> {
        let mut frame = String::from("{\"verb\":");
        push_json_str(&mut frame, verb);
        if let Some(id) = id {
            frame.push_str(",\"id\":");
            push_json_str(&mut frame, id);
        }
        frame.push('}');
        self.request_raw(&frame)
    }

    fn id_verb(&mut self, verb: &str, id: &str) -> Result<Json, String> {
        let mut frame = String::from("{\"verb\":");
        push_json_str(&mut frame, verb);
        frame.push_str(",\"id\":");
        push_json_str(&mut frame, id);
        frame.push('}');
        self.request(&frame)
    }

    /// Submits a job spec; returns the assigned job id.
    ///
    /// # Errors
    ///
    /// Returns the server's rejection message (unknown benchmark,
    /// draining server) or a transport error.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, String> {
        let frame = format!("{{\"verb\":\"submit\",\"spec\":{}}}", spec.to_json());
        let resp = self.request(&frame)?;
        resp.get("id")
            .and_then(|v| v.as_str())
            .map(String::from)
            .ok_or_else(|| "submit response has no id".into())
    }

    /// The job's full status document (state, spec, per-tenant counters).
    ///
    /// # Errors
    ///
    /// Returns the server's message for unknown ids, or a transport error.
    pub fn status(&mut self, id: &str) -> Result<Json, String> {
        let resp = self.id_verb("status", id)?;
        resp.get("job")
            .cloned()
            .ok_or_else(|| "status response has no job".into())
    }

    /// One summary object per job on the server.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn list(&mut self) -> Result<Json, String> {
        let resp = self.request("{\"verb\":\"list\"}")?;
        resp.get("jobs")
            .cloned()
            .ok_or_else(|| "list response has no jobs".into())
    }

    /// Requests cancellation at the job's next generation boundary.
    ///
    /// # Errors
    ///
    /// Returns the server's message for unknown ids or terminal jobs.
    pub fn cancel(&mut self, id: &str) -> Result<(), String> {
        self.id_verb("cancel", id).map(|_| ())
    }

    /// Re-enqueues an interrupted or cancelled job.
    ///
    /// # Errors
    ///
    /// Returns the server's message for non-resumable states.
    pub fn resume(&mut self, id: &str) -> Result<(), String> {
        self.id_verb("resume", id).map(|_| ())
    }

    /// The persisted final front of a completed job.
    ///
    /// # Errors
    ///
    /// Returns the server's message when the job has not completed.
    pub fn front(&mut self, id: &str) -> Result<Json, String> {
        let resp = self.id_verb("front", id)?;
        resp.get("front")
            .cloned()
            .ok_or_else(|| "front response has no front".into())
    }

    /// Server-wide statistics: shared-cache counters and job population.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.request("{\"verb\":\"stats\"}")?;
        resp.get("stats")
            .cloned()
            .ok_or_else(|| "stats response has no stats".into())
    }

    /// The server's metrics snapshot as a JSON document: one entry per
    /// instrument, with per-verb request-latency and per-job
    /// slice-duration histograms carrying `p50`/`p95`/`p99` members.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn metrics(&mut self) -> Result<Json, String> {
        let resp = self.request("{\"verb\":\"metrics\"}")?;
        resp.get("metrics")
            .cloned()
            .ok_or_else(|| "metrics response has no metrics".into())
    }

    /// The server's metrics snapshot in the Prometheus text exposition
    /// format, ready to serve to a scraper.
    ///
    /// # Errors
    ///
    /// Returns a transport or protocol error.
    pub fn metrics_prometheus(&mut self) -> Result<String, String> {
        let resp = self.request("{\"verb\":\"metrics\",\"format\":\"prometheus\"}")?;
        resp.get("prometheus")
            .and_then(|v| v.as_str())
            .map(String::from)
            .ok_or_else(|| "metrics response has no prometheus text".into())
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns a transport error.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request("{\"verb\":\"shutdown\"}").map(|_| ())
    }

    /// Streams the job's progress on this connection: `on_generation` is
    /// called once per pushed boundary, and the job's terminal state name
    /// is returned when the `done` frame arrives. The connection stays
    /// usable for further verbs afterwards.
    ///
    /// # Errors
    ///
    /// Returns the server's message for unknown ids, or a transport error
    /// if the stream breaks before `done`.
    pub fn stream(
        &mut self,
        id: &str,
        mut on_generation: impl FnMut(u64),
    ) -> Result<String, String> {
        let mut frame = String::from("{\"verb\":\"stream\",\"id\":");
        push_json_str(&mut frame, id);
        frame.push('}');
        let ack = self.request(&frame)?;
        if ack.get("streaming").is_none() {
            return Err("stream response has no streaming acknowledgement".into());
        }
        loop {
            let Some(text) =
                read_frame(&mut self.stream).map_err(|e| format!("stream recv: {e}"))?
            else {
                return Err("stream ended without a done frame".into());
            };
            let json = mcmap_obs::parse_json(&text).map_err(|e| format!("bad frame: {e}"))?;
            match json.get("event").and_then(|v| v.as_str()) {
                Some("generation") => {
                    if let Some(g) = json.get("generation").and_then(|v| v.as_u64()) {
                        on_generation(g);
                    }
                }
                Some("done") => {
                    return json
                        .get("state")
                        .and_then(|v| v.as_str())
                        .map(String::from)
                        .ok_or_else(|| "done frame has no state".into());
                }
                _ => return Err(format!("unexpected stream frame: {text}")),
            }
        }
    }

    /// Streams until the job is terminal, discarding progress frames.
    ///
    /// # Errors
    ///
    /// Same as [`Client::stream`].
    pub fn wait(&mut self, id: &str) -> Result<String, String> {
        self.stream(id, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServeConfig;
    use crate::server::spawn_local;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mcmap_serve_client_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn end_to_end_submit_stream_front_stats_shutdown() {
        let dir = scratch("end_to_end");
        let handle = spawn_local(ServeConfig {
            jobs_dir: dir.clone(),
            workers: 2,
            slice: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr.to_string();
        let mut c = Client::connect(&addr).unwrap();
        let spec = JobSpec {
            benchmark: "cruise".into(),
            population: 8,
            generations: 2,
            seed: 8,
        };
        let id = c.submit(&spec).unwrap();
        assert!(id.starts_with("job-"));
        // Stream on a second connection while this one polls verbs.
        let mut streamer = Client::connect(&addr).unwrap();
        let mut boundaries = Vec::new();
        let state = streamer.stream(&id, |g| boundaries.push(g)).unwrap();
        assert_eq!(state, "completed");
        assert!(
            boundaries.contains(&(spec.generations as u64)),
            "stream never reported the final generation: {boundaries:?}"
        );
        let status = c.status(&id).unwrap();
        assert_eq!(
            status.get("state").and_then(|v| v.as_str()),
            Some("completed")
        );
        assert!(
            status
                .get("eval")
                .and_then(|e| e.get("genomes"))
                .and_then(|v| v.as_u64())
                .is_some_and(|g| g > 0),
            "status must expose per-job eval counters"
        );
        let front = c.front(&id).unwrap();
        assert!(front
            .get("reports")
            .is_some_and(|r| matches!(r, Json::Arr(v) if !v.is_empty())));
        let jobs = c.list().unwrap();
        assert!(matches!(jobs, Json::Arr(ref v) if v.len() == 1));
        let stats = c.stats().unwrap();
        assert!(stats.get("cache").is_some());
        assert!(
            stats
                .get("dropped_events")
                .and_then(|v| v.as_u64())
                .is_some(),
            "stats must report the silent-loss counter"
        );
        // Metrics snapshot: per-verb request latencies, per-job slice
        // histograms (with quantiles), and the exploration's own meters.
        let metrics = c.metrics().unwrap();
        let Some(Json::Arr(entries)) = metrics.get("metrics") else {
            panic!("metrics response has no entries: {metrics:?}");
        };
        let by_name = |name: &str| {
            entries
                .iter()
                .filter(|m| m.get("name").and_then(|v| v.as_str()) == Some(name))
                .collect::<Vec<_>>()
        };
        assert!(!by_name("serve.request_ns").is_empty(), "verb latencies");
        assert!(!by_name("eval.batches").is_empty(), "exploration meters");
        let slice = by_name("serve.slice_ns");
        let per_job = slice
            .iter()
            .find(|m| {
                m.get("labels")
                    .and_then(|l| l.get("job"))
                    .and_then(|v| v.as_str())
                    == Some(id.as_str())
            })
            .expect("per-job slice histogram");
        assert!(
            per_job
                .get("value")
                .and_then(|v| v.get("p95"))
                .and_then(|v| v.as_u64())
                .is_some(),
            "slice histogram carries quantiles: {per_job:?}"
        );
        let prom = c.metrics_prometheus().unwrap();
        assert!(prom.contains("# TYPE mcmap_serve_slice_ns histogram"));
        assert!(prom.contains("mcmap_eval_batches_total"));
        assert!(prom.contains("mcmap_serve_request_ns_bucket{"));
        // Unknown verbs and ids produce typed errors, not hangups.
        assert!(c.request("{\"verb\":\"bogus\"}").is_err());
        assert!(c.status("job-999999").is_err());
        c.shutdown().unwrap();
        handle.thread.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
