//! Human-facing table rendering of server documents — what the CLI's
//! `client stats` / `client status` print when `--json` is not given.

use mcmap_obs::Json;

/// One aligned `key  value` row block from an object's members, in source
/// order, with `snake_case` keys prettified to spaced words.
fn rows(doc: &Json, keys: &[&str], out: &mut String) {
    let width = keys
        .iter()
        .filter(|k| doc.get(k).is_some())
        .map(|k| k.len())
        .max()
        .unwrap_or(0);
    for key in keys {
        let Some(value) = doc.get(key) else { continue };
        out.push_str(&format!(
            "  {:<width$}  {}\n",
            key.replace('_', " "),
            scalar(value)
        ));
    }
}

/// A scalar rendered for a table cell (integers without the float tail,
/// strings unquoted).
fn scalar(v: &Json) -> String {
    match v {
        Json::Null => "-".into(),
        Json::Bool(b) => b.to_string(),
        Json::UInt(n) => n.to_string(),
        Json::Int(n) => n.to_string(),
        Json::Num(n) => format!("{n:.4}"),
        Json::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

/// Renders the `stats` verb payload as an aligned table: server totals,
/// job population by state, and the shared-cache counters.
pub fn render_stats(stats: &Json) -> String {
    let mut out = String::from("server\n");
    rows(
        stats,
        &["workers", "queue_depth", "dropped_events"],
        &mut out,
    );
    if let Some(Json::Obj(states)) = stats.get("jobs") {
        out.push_str("jobs\n");
        let width = states.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        for (state, count) in states {
            out.push_str(&format!("  {state:<width$}  {}\n", scalar(count)));
        }
    }
    if let Some(cache) = stats.get("cache") {
        out.push_str("shared cache\n");
        rows(
            cache,
            &[
                "entries",
                "hits",
                "misses",
                "insertions",
                "evictions",
                "hit_rate",
            ],
            &mut out,
        );
    }
    out
}

/// Renders the `status` verb payload as an aligned table: identity and
/// progress first, then the per-job evaluation and analysis counters.
pub fn render_status(job: &Json) -> String {
    let mut out = String::from("job");
    if let Some(id) = job.get("id").and_then(|v| v.as_str()) {
        out.push(' ');
        out.push_str(id);
    }
    out.push('\n');
    rows(
        job,
        &["state", "generation_done", "slices", "error"],
        &mut out,
    );
    if let Some(spec) = job.get("spec") {
        out.push_str("spec\n");
        rows(
            spec,
            &["benchmark", "population", "generations", "seed"],
            &mut out,
        );
    }
    if let Some(eval) = job.get("eval") {
        out.push_str("eval\n");
        rows(
            eval,
            &[
                "batches",
                "genomes",
                "cache_hits",
                "cache_misses",
                "evictions",
                "serial_fallbacks",
                "panics",
                "degraded",
            ],
            &mut out,
        );
    }
    if let Some(analysis) = job.get("analysis") {
        out.push_str("analysis\n");
        rows(
            analysis,
            &[
                "candidates",
                "scenarios",
                "backend_calls",
                "fixedpoint_iters",
                "scenarios_pruned",
                "warm_iters_saved",
                "backend_reused",
                "delta_reuses",
            ],
            &mut out,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_table_lists_server_jobs_and_cache_blocks() {
        let doc = mcmap_obs::parse_json(
            "{\"cache\":{\"entries\":10,\"hits\":7,\"misses\":3,\"insertions\":3,\
             \"evictions\":0,\"hit_rate\":0.7},\"workers\":2,\"queue_depth\":1,\
             \"dropped_events\":0,\"jobs\":{\"completed\":2,\"running\":1}}",
        )
        .unwrap();
        let text = render_stats(&doc);
        assert!(text.contains("server\n"));
        assert!(text.contains("queue depth"));
        assert!(text.contains("completed  2"));
        assert!(text.contains("hit rate"));
        assert!(text.contains("0.7000"));
    }

    #[test]
    fn status_table_leads_with_identity_and_skips_absent_blocks() {
        let doc = mcmap_obs::parse_json(
            "{\"id\":\"job-000001\",\"state\":\"running\",\"generation_done\":3,\
             \"slices\":2,\"spec\":{\"benchmark\":\"cruise\",\"population\":8,\
             \"generations\":4,\"seed\":8}}",
        )
        .unwrap();
        let text = render_status(&doc);
        assert!(text.starts_with("job job-000001\n"));
        assert!(text.contains("generation done  3"));
        assert!(text.contains("benchmark"));
        assert!(!text.contains("eval\n"), "absent blocks are not rendered");
    }
}
