//! The TCP front end: a nonblocking accept loop, one handler thread per
//! connection, and the verb dispatch over the framed-JSON protocol.
//!
//! The accept loop polls a shutdown flag (set by the `shutdown` verb or by
//! the process signal handler through [`Server::shutdown_handle`]); on
//! shutdown it stops accepting, drains the registry — running slices stop
//! at their next generation boundary with checkpoints written — and
//! returns. Handler threads are detached: they serve reads until their
//! peer hangs up and never outlive useful work.

use crate::job::JobSpec;
use crate::proto::{error_frame, ok_frame, read_frame, write_frame};
use crate::registry::{Registry, ServeConfig};
use mcmap_obs::Json;
use mcmap_telemetry::Class;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The polling interval of the accept loop and of progress-stream state
/// checks. Latency floor for shutdown, not for requests.
const POLL: Duration = Duration::from_millis(25);

/// A bound server: listener + registry + shutdown latch. Consume it with
/// [`Server::run`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and opens (or recovers) the jobs directory.
    ///
    /// # Errors
    ///
    /// Propagates bind and jobs-directory I/O errors.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let registry = Registry::open(cfg)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared job registry (for in-process harnesses).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A latch that stops the accept loop and drains the server when set —
    /// hand it to a signal handler for graceful SIGTERM shutdown.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the server until the shutdown latch is set, then drains the
    /// registry (running slices stop at their next checkpointed boundary)
    /// and joins the worker pool.
    pub fn run(self) {
        let workers = self.registry.start_workers();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let registry = Arc::clone(&self.registry);
                    let shutdown = Arc::clone(&self.shutdown);
                    let _ = std::thread::Builder::new()
                        .name("mcmap-serve-conn".into())
                        .spawn(move || handle_connection(stream, &registry, &shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
        }
        self.registry.drain();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Serves one connection: strict request/response frames, except the
/// `stream` verb which pushes progress frames until the job is terminal.
fn handle_connection(mut stream: TcpStream, registry: &Arc<Registry>, shutdown: &AtomicBool) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let response = match mcmap_obs::parse_json(&frame) {
            Ok(req) => {
                let verb = known_verb(req.get("verb").and_then(|v| v.as_str()));
                let t0 = std::time::Instant::now();
                let response = dispatch(&req, registry, shutdown, &mut stream);
                registry
                    .metrics()
                    .histogram_with("serve.request_ns", &[("verb", verb)], Class::Nondet)
                    .observe(t0.elapsed().as_nanos() as u64);
                response
            }
            Err(e) => Some(error_frame(&format!("malformed request: {e}"))),
        };
        match response {
            Some(r) => {
                if write_frame(&mut stream, &r).is_err() {
                    return;
                }
            }
            None => return, // the verb owned the connection (stream) and it ended
        }
    }
}

/// Executes one verb. Returns the response frame, or `None` when the verb
/// consumed the connection.
fn dispatch(
    req: &Json,
    registry: &Arc<Registry>,
    shutdown: &AtomicBool,
    stream: &mut TcpStream,
) -> Option<String> {
    let Some(verb) = req.get("verb").and_then(|v| v.as_str()) else {
        return Some(error_frame("request has no \"verb\" member"));
    };
    let id_of = |req: &Json| -> Result<String, String> {
        req.get("id")
            .and_then(|v| v.as_str())
            .map(String::from)
            .ok_or_else(|| "request has no \"id\" member".to_string())
    };
    Some(match verb {
        "submit" => {
            let spec = match req.get("spec").ok_or("request has no \"spec\" member") {
                Ok(s) => match JobSpec::from_json(s) {
                    Ok(spec) => spec,
                    Err(e) => return Some(error_frame(&e)),
                },
                Err(e) => return Some(error_frame(e)),
            };
            match registry.submit(spec) {
                Ok(id) => {
                    let mut payload = String::from(",\"id\":");
                    crate::proto::push_json_str(&mut payload, &id);
                    ok_frame(&payload)
                }
                Err(e) => error_frame(&e),
            }
        }
        "status" => match id_of(req) {
            Ok(id) => match registry.status_json(&id) {
                Some(doc) => ok_frame(&format!(",\"job\":{doc}")),
                None => error_frame(&format!("no such job {id:?}")),
            },
            Err(e) => error_frame(&e),
        },
        "list" => ok_frame(&format!(",\"jobs\":{}", registry.list_json())),
        "cancel" => match id_of(req).and_then(|id| registry.cancel(&id)) {
            Ok(()) => ok_frame(""),
            Err(e) => error_frame(&e),
        },
        "resume" => match id_of(req).and_then(|id| registry.resume(&id)) {
            Ok(()) => ok_frame(""),
            Err(e) => error_frame(&e),
        },
        "front" => match id_of(req).and_then(|id| registry.front_json(&id)) {
            Ok(front) => ok_frame(&format!(",\"front\":{front}")),
            Err(e) => error_frame(&e),
        },
        "stats" => ok_frame(&format!(",\"stats\":{}", registry.server_stats_json())),
        "metrics" => {
            let snap = registry.metrics().snapshot();
            match req.get("format").and_then(|v| v.as_str()) {
                // The Prometheus exposition is plain text, so it ships as
                // one JSON string member — scrape bridges unwrap it.
                Some("prometheus") => {
                    let mut payload = String::from(",\"prometheus\":");
                    crate::proto::push_json_str(&mut payload, &snap.to_prometheus());
                    ok_frame(&payload)
                }
                Some(other) => error_frame(&format!("unknown metrics format {other:?}")),
                None => ok_frame(&format!(",\"metrics\":{}", snap.to_json())),
            }
        }
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            ok_frame("")
        }
        "stream" => {
            let id = match id_of(req) {
                Ok(id) => id,
                Err(e) => return Some(error_frame(&e)),
            };
            return stream_job(&id, registry, stream);
        }
        other => error_frame(&format!("unknown verb {other:?}")),
    })
}

/// The request-latency label for a verb: the verb itself when it is one
/// the protocol knows, `"other"` otherwise — so a client probing with
/// garbage verbs cannot grow the metric family without bound.
fn known_verb(verb: Option<&str>) -> &'static str {
    match verb {
        Some("submit") => "submit",
        Some("status") => "status",
        Some("list") => "list",
        Some("cancel") => "cancel",
        Some("resume") => "resume",
        Some("front") => "front",
        Some("stats") => "stats",
        Some("metrics") => "metrics",
        Some("shutdown") => "shutdown",
        Some("stream") => "stream",
        _ => "other",
    }
}

/// The `stream` verb body: acknowledge, then push one frame per completed
/// generation boundary until the job reaches a terminal state, and close
/// with a `done` frame naming it.
fn stream_job(id: &str, registry: &Arc<Registry>, stream: &mut TcpStream) -> Option<String> {
    // Subscribe before reading the state so no boundary between the two
    // can be missed (at-least-once: the first frames may repeat history).
    let Some((rx, _)) = registry.subscribe(id) else {
        return Some(error_frame(&format!("no such job {id:?}")));
    };
    if write_frame(stream, &ok_frame(",\"streaming\":true")).is_err() {
        return None;
    }
    loop {
        match rx.recv_timeout(POLL) {
            Ok(generation) => {
                let frame = format!("{{\"event\":\"generation\",\"generation\":{generation}}}");
                if write_frame(stream, &frame).is_err() {
                    return None;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout)
            | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                let state = registry.state_of(id)?;
                if state.is_terminal() {
                    // Flush any boundary that raced the state transition.
                    for generation in rx.try_iter() {
                        let frame =
                            format!("{{\"event\":\"generation\",\"generation\":{generation}}}");
                        if write_frame(stream, &frame).is_err() {
                            return None;
                        }
                    }
                    let mut done = String::from("{\"event\":\"done\",\"state\":");
                    crate::proto::push_json_str(&mut done, state.as_str());
                    done.push('}');
                    let _ = write_frame(stream, &done);
                    let _ = stream.flush();
                    return None;
                }
            }
        }
    }
}

/// Everything a caller needs to run a server in the background of a test
/// or benchmark: the bound address, the shutdown latch, and the join
/// handle of the accept loop.
#[derive(Debug)]
pub struct ServerHandle {
    /// The bound socket address.
    pub addr: std::net::SocketAddr,
    /// Setting this stops the accept loop and drains the registry.
    pub shutdown: Arc<AtomicBool>,
    /// Joins once the accept loop has drained and returned.
    pub thread: std::thread::JoinHandle<()>,
}

/// Binds on `127.0.0.1:0` and runs the server on a background thread.
///
/// # Errors
///
/// Propagates bind and jobs-directory I/O errors.
pub fn spawn_local(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let server = Server::bind("127.0.0.1:0", cfg)?;
    let addr = server.local_addr()?;
    let shutdown = server.shutdown_handle();
    let thread = std::thread::Builder::new()
        .name("mcmap-serve-accept".into())
        .spawn(move || server.run())?;
    Ok(ServerHandle {
        addr,
        shutdown,
        thread,
    })
}
