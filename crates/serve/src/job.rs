//! Job specs, lifecycle states, per-tenant counters, and the on-disk
//! layout of one job directory.
//!
//! Each job owns a directory under the server's jobs root:
//!
//! ```text
//! jobs/<id>/spec.json    # the submitted spec (atomic write, immutable)
//! jobs/<id>/status.json  # last persisted state (atomic write)
//! jobs/<id>/ckpt         # sealed-envelope checkpoint (+ ckpt.bak)
//! jobs/<id>/trace.jsonl  # the job's stitched observability trace
//! jobs/<id>/front.json   # final Pareto front, written on completion
//! ```
//!
//! The checkpoint and trace are written by the exploration itself through
//! the `mcmap-resilience` / `mcmap-obs` machinery; this module only adds
//! the spec/status/front documents, all through
//! [`mcmap_resilience::atomic_write`] so a crash can never leave a torn
//! document behind.

use mcmap_core::{AnalysisStats, DesignReport, EvalStats};
use mcmap_obs::Json;
use std::path::{Path, PathBuf};

use crate::proto::push_json_str;

/// What one tenant asked the server to explore. The assembled
/// [`DseConfig`](mcmap_core::DseConfig) mirrors the CLI's `dse` command
/// (bi-objective power/service, the benchmark's own policies, repair
/// budget 80), so a served job's front is directly comparable to a batch
/// run of the same budget and seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Built-in benchmark name (`cruise`, `dt-med`, `dt-large`, `synth1`,
    /// `synth2`).
    pub benchmark: String,
    /// GA population size.
    pub population: usize,
    /// GA generation budget.
    pub generations: usize,
    /// GA seed. Part of the evaluation context fingerprint: only jobs with
    /// an identical (benchmark, budget-independent config, seed) triple
    /// share entries in the cross-job cache.
    pub seed: u64,
}

impl JobSpec {
    /// Renders the spec as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"benchmark\":");
        push_json_str(&mut out, &self.benchmark);
        out.push_str(&format!(
            ",\"population\":{},\"generations\":{},\"seed\":{}}}",
            self.population, self.generations, self.seed
        ));
        out
    }

    /// Reads a spec back from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed member.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let benchmark = json
            .get("benchmark")
            .and_then(|v| v.as_str())
            .ok_or("spec is missing string member \"benchmark\"")?
            .to_string();
        let population =
            json.get("population")
                .and_then(|v| v.as_u64())
                .ok_or("spec is missing integer member \"population\"")? as usize;
        let generations =
            json.get("generations")
                .and_then(|v| v.as_u64())
                .ok_or("spec is missing integer member \"generations\"")? as usize;
        let seed = json.get("seed").and_then(|v| v.as_u64()).unwrap_or(8);
        if population == 0 || generations == 0 {
            return Err("population and generations must be positive".into());
        }
        Ok(JobSpec {
            benchmark,
            population,
            generations,
            seed,
        })
    }

    /// Resolves the spec's benchmark, mirroring the CLI's name table.
    pub fn resolve(&self) -> Option<mcmap_benchmarks::Benchmark> {
        match self.benchmark.as_str() {
            "cruise" => Some(mcmap_benchmarks::cruise()),
            "dt-med" => Some(mcmap_benchmarks::dt_med()),
            "dt-large" => Some(mcmap_benchmarks::dt_large()),
            "synth1" => Some(mcmap_benchmarks::synth1(42)),
            "synth2" => Some(mcmap_benchmarks::synth2(42)),
            _ => None,
        }
    }
}

/// Lifecycle state of one job. Transitions:
///
/// ```text
/// queued → running → queued        (slice budget spent, requeued)
///                  → completed     (generation budget exhausted)
///                  → cancelled     (tenant cancel, at a boundary)
///                  → interrupted   (server drain, at a boundary)
///                  → failed        (typed DseError)
/// interrupted|cancelled → queued   (explicit resume verb)
/// ```
///
/// A server restart maps every non-terminal persisted state to
/// `interrupted` — the checkpoint vouches for everything up to the last
/// completed boundary, and resuming from it is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the round-robin runnable queue.
    Queued,
    /// A worker is running one of its slices right now.
    Running,
    /// Stopped by a server shutdown or restart; resumable.
    Interrupted,
    /// Stopped by a tenant's cancel; resumable.
    Cancelled,
    /// Generation budget exhausted; `front.json` is final.
    Completed,
    /// The exploration returned a typed error (bad spec, corrupt
    /// checkpoint beyond the `.bak` fallback, lint pre-flight).
    Failed,
}

impl JobState {
    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Interrupted => "interrupted",
            JobState::Cancelled => "cancelled",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// Parses a wire name back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "interrupted" => JobState::Interrupted,
            "cancelled" => JobState::Cancelled,
            "completed" => JobState::Completed,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the job can never run again without an explicit resume.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled | JobState::Interrupted
        )
    }
}

/// Per-job lifetime totals of the engine and analysis instrumentation,
/// summed over every slice this server process ran. Like the underlying
/// [`EvalStats`], totals are not checkpointed: after a restart they cover
/// the work done since, which is exactly what a capacity dashboard wants.
#[derive(Debug, Clone, Default)]
pub struct JobTotals {
    /// Slices executed.
    pub slices: u64,
    /// Summed evaluation-engine counters (`cache_entries` is the latest
    /// snapshot, not a sum — it is a gauge).
    pub eval: EvalStats,
    /// Summed Algorithm 1 effort counters.
    pub analysis: AnalysisStats,
}

impl JobTotals {
    /// Folds one slice's instrumentation into the totals.
    pub fn absorb(&mut self, eval: &EvalStats, analysis: &AnalysisStats) {
        self.slices += 1;
        let e = &mut self.eval;
        e.batches += eval.batches;
        e.genomes += eval.genomes;
        e.cache_hits += eval.cache_hits;
        e.cache_misses += eval.cache_misses;
        e.evictions += eval.evictions;
        e.panics += eval.panics;
        e.degraded += eval.degraded;
        e.serial_fallbacks += eval.serial_fallbacks;
        e.cache_entries = eval.cache_entries;
        e.lookup_nanos += eval.lookup_nanos;
        e.eval_nanos += eval.eval_nanos;
        e.insert_nanos += eval.insert_nanos;
        e.wall_nanos += eval.wall_nanos;
        if e.worker_loads.len() < eval.worker_loads.len() {
            e.worker_loads
                .resize(eval.worker_loads.len(), Default::default());
        }
        for (slot, load) in e.worker_loads.iter_mut().zip(&eval.worker_loads) {
            slot.busy_nanos += load.busy_nanos;
            slot.items += load.items;
        }
        let a = &mut self.analysis;
        a.candidates += analysis.candidates;
        a.scenarios += analysis.scenarios;
        a.backend_calls += analysis.backend_calls;
        a.fixedpoint_iters += analysis.fixedpoint_iters;
        a.scenarios_pruned += analysis.scenarios_pruned;
        a.warm_iters_saved += analysis.warm_iters_saved;
        a.analysis_nanos += analysis.analysis_nanos;
        a.backend_reused += analysis.backend_reused;
        a.delta_reuses += analysis.delta_reuses;
        a.delta_cold_fallbacks += analysis.delta_cold_fallbacks;
        a.affect_set_size += analysis.affect_set_size;
    }
}

/// Paths inside one job's directory.
#[derive(Debug, Clone)]
pub struct JobPaths {
    /// The job directory itself.
    pub dir: PathBuf,
}

impl JobPaths {
    /// The layout rooted at `jobs_dir/<id>`.
    pub fn new(jobs_dir: &Path, id: &str) -> Self {
        JobPaths {
            dir: jobs_dir.join(id),
        }
    }

    /// `spec.json` — the submitted spec.
    pub fn spec(&self) -> PathBuf {
        self.dir.join("spec.json")
    }

    /// `status.json` — the last persisted lifecycle state.
    pub fn status(&self) -> PathBuf {
        self.dir.join("status.json")
    }

    /// `ckpt` — the sealed-envelope checkpoint.
    pub fn checkpoint(&self) -> PathBuf {
        self.dir.join("ckpt")
    }

    /// `trace.jsonl` — the stitched observability trace.
    pub fn trace(&self) -> PathBuf {
        self.dir.join("trace.jsonl")
    }

    /// `front.json` — the final Pareto front.
    pub fn front(&self) -> PathBuf {
        self.dir.join("front.json")
    }
}

/// Renders a Pareto front as JSON with exact f64 bit patterns alongside
/// the decimal rendering, so two fronts can be compared for bit-identity
/// with a plain `diff` and still read by humans.
pub fn front_to_json(reports: &[DesignReport], app_name: impl Fn(usize) -> String) -> String {
    let mut out = String::from("{\"reports\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dropped: Vec<String> = r
            .dropped
            .iter()
            .map(|a| {
                let mut s = String::new();
                push_json_str(&mut s, &app_name(a.index()));
                s
            })
            .collect();
        out.push_str(&format!(
            "{{\"power_bits\":\"{:016x}\",\"service_bits\":\"{:016x}\",\
             \"power\":{:?},\"service\":{:?},\"feasible\":{},\"dropped\":[{}]}}",
            r.power.to_bits(),
            r.service.to_bits(),
            r.power,
            r.service,
            r.feasible,
            dropped.join(","),
        ));
    }
    out.push_str("]}");
    out
}

/// Persisted `status.json` payload: state plus the last completed
/// generation, enough for restart recovery (counters are process-lifetime
/// and deliberately not persisted).
pub fn status_doc(state: JobState, generation_done: Option<usize>, error: Option<&str>) -> String {
    let mut out = String::from("{\"state\":");
    push_json_str(&mut out, state.as_str());
    match generation_done {
        Some(g) => out.push_str(&format!(",\"generation_done\":{g}")),
        None => out.push_str(",\"generation_done\":null"),
    }
    if let Some(e) = error {
        out.push_str(",\"error\":");
        push_json_str(&mut out, e);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_obs::parse_json;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            benchmark: "cruise".into(),
            population: 8,
            generations: 4,
            seed: 9,
        };
        let back = JobSpec::from_json(&parse_json(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert!(back.resolve().is_some());
    }

    #[test]
    fn spec_rejects_missing_and_degenerate_fields() {
        let err = JobSpec::from_json(&parse_json("{\"population\":8}").unwrap()).unwrap_err();
        assert!(err.contains("benchmark"));
        let err = JobSpec::from_json(
            &parse_json("{\"benchmark\":\"cruise\",\"population\":0,\"generations\":4}").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("positive"));
        // Seed defaults to the CLI's 8.
        let spec = JobSpec::from_json(
            &parse_json("{\"benchmark\":\"cruise\",\"population\":8,\"generations\":4}").unwrap(),
        )
        .unwrap();
        assert_eq!(spec.seed, 8);
    }

    #[test]
    fn states_round_trip_and_classify_terminality() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Interrupted,
            JobState::Cancelled,
            JobState::Completed,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Interrupted.is_terminal());
    }

    #[test]
    fn totals_sum_slices_and_keep_the_entries_gauge() {
        let mut t = JobTotals::default();
        let mut e = EvalStats {
            genomes: 10,
            cache_hits: 4,
            cache_misses: 6,
            cache_entries: 6,
            ..EvalStats::default()
        };
        let a = AnalysisStats {
            candidates: 10,
            backend_calls: 30,
            ..AnalysisStats::default()
        };
        t.absorb(&e, &a);
        e.cache_entries = 9;
        t.absorb(&e, &a);
        assert_eq!(t.slices, 2);
        assert_eq!(t.eval.genomes, 20);
        assert_eq!(t.eval.cache_hits, 8);
        assert_eq!(t.eval.cache_entries, 9, "gauge, not a sum");
        assert_eq!(t.analysis.backend_calls, 60);
    }

    #[test]
    fn status_doc_and_front_parse_back() {
        let doc = status_doc(JobState::Failed, Some(3), Some("boom \"quoted\""));
        let json = parse_json(&doc).unwrap();
        assert_eq!(json.get("state").and_then(|v| v.as_str()), Some("failed"));
        assert_eq!(
            json.get("generation_done").and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            json.get("error").and_then(|v| v.as_str()),
            Some("boom \"quoted\"")
        );
    }
}
