//! The wire protocol: 4-byte big-endian length prefix + one JSON document
//! per frame, in the workspace's hand-rolled JSON idiom (no serde).
//!
//! Requests are objects with a `"verb"` member; responses either carry
//! `"ok":true` plus verb-specific payload members, or `"ok":false` with an
//! `"error"` string. The `stream` verb is the one exception to strict
//! request/response alternation: after the initial acknowledgement the
//! server pushes progress frames until the job reaches a terminal state.

use std::io::{Read, Write};

/// Frames larger than this are rejected as malformed — no legitimate
/// request or response comes close, and the bound keeps a corrupt length
/// prefix from allocating gigabytes.
pub const MAX_FRAME: usize = 16 << 20;

/// A typed frame-decode failure. Both variants are detected from the
/// 4-byte length prefix alone, *before* any payload buffer is allocated,
/// so a corrupt or adversarial prefix can neither panic the decoder nor
/// reserve gigabytes. `read_frame` wraps these in
/// [`std::io::ErrorKind::InvalidData`]; recover the typed value with
/// [`FrameError::from_io`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A zero-length frame. No valid request or response is empty (the
    /// smallest legal frame is `{}`), so an empty frame means the peer is
    /// desynchronized and the connection must be dropped.
    Empty,
    /// The length prefix promises more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The advertised frame length.
        len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Empty => write!(f, "zero-length frame (desynchronized peer)"),
            FrameError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Recovers the typed frame error carried inside an I/O error, if
    /// any.
    pub fn from_io(e: &std::io::Error) -> Option<FrameError> {
        e.get_ref()?.downcast_ref::<FrameError>().copied()
    }

    fn into_io(self) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, self)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// (peer closed between frames).
///
/// # Errors
///
/// Propagates I/O errors. A zero-length or over-[`MAX_FRAME`] prefix
/// yields `InvalidData` carrying a typed [`FrameError`] — both are
/// rejected before the payload buffer is allocated — and an invalid-UTF-8
/// payload yields plain `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(FrameError::Empty.into_io());
    }
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len }.into_io());
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// JSON-escapes `s` (with surrounding quotes) into `out` — same escape set
/// as the trace writer's, so every frame this crate emits parses back with
/// [`mcmap_obs::parse_json`].
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds the uniform error response frame.
pub fn error_frame(message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    push_json_str(&mut out, message);
    out.push('}');
    out
}

/// Builds an `"ok":true` response from pre-rendered payload members
/// (`payload` is spliced verbatim after `"ok":true`, so it must start
/// with `,` or be empty).
pub fn ok_frame(payload: &str) -> String {
    debug_assert!(payload.is_empty() || payload.starts_with(','));
    format!("{{\"ok\":true{payload}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_obs::parse_json;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"verb\":\"status\"}").unwrap();
        write_frame(&mut buf, &ok_frame(",\"id\":\"job-1\"")).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            "{\"verb\":\"status\"}"
        );
        let second = read_frame(&mut r).unwrap().unwrap();
        let json = parse_json(&second).unwrap();
        assert_eq!(json.get("ok"), Some(&mcmap_obs::Json::Bool(true)));
        assert_eq!(json.get("id").and_then(|v| v.as_str()), Some("job-1"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_torn_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(
            FrameError::from_io(&err),
            Some(FrameError::Oversized {
                len: u32::MAX as usize
            })
        );
        // A length prefix promising more bytes than present is an
        // unexpected EOF, not a clean close.
        let mut torn = Vec::new();
        torn.extend_from_slice(&8u32.to_be_bytes());
        torn.extend_from_slice(b"abc");
        assert!(read_frame(&mut torn.as_slice()).is_err());
    }

    #[test]
    fn zero_length_frames_are_a_typed_desync_error() {
        let buf = 0u32.to_be_bytes();
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(FrameError::from_io(&err), Some(FrameError::Empty));
        // The error survives the usual stringly transport wrapping.
        assert!(err.to_string().contains("zero-length"));
    }

    #[test]
    fn escapes_cover_control_characters() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let parsed = parse_json(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn error_frames_parse() {
        let f = error_frame("no such job \"x\"");
        let json = parse_json(&f).unwrap();
        assert_eq!(json.get("ok"), Some(&mcmap_obs::Json::Bool(false)));
        assert_eq!(
            json.get("error").and_then(|v| v.as_str()),
            Some("no such job \"x\"")
        );
    }
}
