//! The job registry: the in-memory job table, the round-robin runnable
//! queue, the bounded worker pool, and the server-wide evaluation cache.
//!
//! Scheduling model: a job runs as a sequence of **slices**. One slice is
//! one `explore_checked` call that resumes the job's checkpoint, observes
//! a bounded number of generation boundaries
//! ([`ServeConfig::slice`]), writes its checkpoint, and stops
//! cooperatively. Unfinished jobs go to the back of the queue, so `W`
//! workers serve any number of tenants fairly with at most `W` slices in
//! flight. Because every slice boundary is a checkpoint boundary, the
//! interleaving is invisible in the results: fronts, audit counters, and
//! canonical traces are bit-identical to an uninterrupted run.

use crate::job::{front_to_json, status_doc, JobPaths, JobSpec, JobState, JobTotals};
use crate::progress::{ProgressTap, TapSink};
use crate::proto::push_json_str;
use mcmap_core::{
    explore_checked, read_checkpoint_with_fallback, CacheStats, DseConfig, ObjectiveMode,
    SharedEvalCache,
};
use mcmap_ga::GaConfig;
use mcmap_obs::RecorderBuilder;
use mcmap_resilience::atomic_write;
use mcmap_telemetry::{Class, Counter, Gauge, Histogram, Registry as MetricsRegistry};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Server-side knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory holding one subdirectory per job.
    pub jobs_dir: PathBuf,
    /// Worker threads running job slices (0 = one per available core).
    pub workers: usize,
    /// Generation boundaries per slice — the fairness quantum. Small
    /// values interleave tenants finely at the cost of more checkpoint
    /// writes; the results never change either way.
    pub slice: usize,
    /// Entry bound of the server-wide cross-job evaluation cache.
    pub cache_cap: usize,
    /// Evaluation threads per slice. Defaults to 1: the worker pool
    /// already parallelizes across jobs, so per-job fan-out would just
    /// oversubscribe the cores.
    pub job_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs_dir: PathBuf::from("jobs"),
            workers: 0,
            slice: 2,
            cache_cap: 1 << 20,
            job_threads: 1,
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Per-job cooperative-stop flag, handed to every slice. A fresh
    /// `Arc` is installed on resume so an old cancel cannot leak in.
    stop: Arc<AtomicBool>,
    cancel_requested: bool,
    generation_done: Option<usize>,
    error: Option<String>,
    totals: JobTotals,
    tap: Arc<ProgressTap>,
}

#[derive(Debug)]
struct Inner {
    jobs: BTreeMap<String, JobEntry>,
    queue: VecDeque<String>,
    next_id: u64,
    draining: bool,
}

/// The shared state behind every connection handler and worker thread.
#[derive(Debug)]
pub struct Registry {
    cfg: ServeConfig,
    shared: SharedEvalCache,
    inner: Mutex<Inner>,
    /// Signalled when the queue gains work or draining starts.
    work: Condvar,
    /// Signalled when a worker finishes a slice (drain waits on this).
    idle: Condvar,
    /// The server's metrics registry. Every slice's exploration runs with
    /// it attached, so `eval.*` / `sched.*` instruments aggregate across
    /// all tenants; the serve layer adds its own `serve.*` instruments
    /// (request latency, queue depth, slice duration) — all timing, hence
    /// `Class::Nondet`.
    metrics: MetricsRegistry,
    /// Runnable-queue length (all timing-dependent: `Class::Nondet`).
    queue_depth: Arc<Gauge>,
    /// Trace events lost server-wide: ring evictions and failed JSONL
    /// writes, summed from every finished slice's recorder.
    dropped_events: Arc<Counter>,
    /// Server-wide slice duration (per-job siblings carry a `job` label).
    slice_wall: Arc<Histogram>,
}

/// What one slice produced, handed back to the worker loop for the state
/// transition under the registry lock.
enum SliceVerdict {
    /// The slice hit its boundary budget; the job has more generations.
    Unfinished,
    /// The generation budget is exhausted; `front.json` is written.
    Completed,
    /// The exploration returned a typed error.
    Failed(String),
}

impl Registry {
    /// Opens (or creates) the jobs directory and recovers every persisted
    /// job: terminal states are kept, anything else becomes `interrupted`
    /// — its checkpoint vouches for the last completed boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating or scanning the jobs directory.
    pub fn open(cfg: ServeConfig) -> std::io::Result<Arc<Registry>> {
        std::fs::create_dir_all(&cfg.jobs_dir)?;
        let mut jobs = BTreeMap::new();
        let mut next_id = 1u64;
        for entry in std::fs::read_dir(&cfg.jobs_dir)? {
            let entry = entry?;
            let id = entry.file_name().to_string_lossy().to_string();
            let paths = JobPaths::new(&cfg.jobs_dir, &id);
            let Ok(spec_text) = std::fs::read_to_string(paths.spec()) else {
                continue; // not a job directory
            };
            let Ok(spec_json) = mcmap_obs::parse_json(&spec_text) else {
                continue;
            };
            let Ok(spec) = JobSpec::from_json(&spec_json) else {
                continue;
            };
            if let Some(n) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) {
                next_id = next_id.max(n + 1);
            }
            let status = std::fs::read_to_string(paths.status())
                .ok()
                .and_then(|t| mcmap_obs::parse_json(&t).ok());
            let persisted = status
                .as_ref()
                .and_then(|j| {
                    j.get("state")
                        .and_then(|v| v.as_str())
                        .and_then(JobState::parse)
                })
                .unwrap_or(JobState::Interrupted);
            let generation_done = status
                .as_ref()
                .and_then(|j| j.get("generation_done").and_then(|v| v.as_u64()))
                .map(|g| g as usize);
            let error = status
                .as_ref()
                .and_then(|j| j.get("error").and_then(|v| v.as_str()).map(String::from));
            // `queued` and `running` cannot survive a restart: whatever
            // was in flight died with the old process.
            let state = match persisted {
                s if s.is_terminal() => s,
                _ => JobState::Interrupted,
            };
            if state != persisted {
                let _ = atomic_write(
                    &paths.status(),
                    status_doc(state, generation_done, error.as_deref()).as_bytes(),
                );
            }
            jobs.insert(
                id,
                JobEntry {
                    spec,
                    state,
                    stop: Arc::new(AtomicBool::new(false)),
                    cancel_requested: false,
                    generation_done,
                    error,
                    totals: JobTotals::default(),
                    tap: Arc::new(ProgressTap::default()),
                },
            );
        }
        let shared = SharedEvalCache::with_capacity(cfg.cache_cap);
        let metrics = MetricsRegistry::new();
        let queue_depth = metrics.gauge("serve.queue_depth", Class::Nondet);
        let dropped_events = metrics.counter("telemetry.dropped_events", Class::Nondet);
        let slice_wall = metrics.histogram("serve.slice_ns", Class::Nondet);
        Ok(Arc::new(Registry {
            cfg,
            shared,
            inner: Mutex::new(Inner {
                jobs,
                queue: VecDeque::new(),
                next_id,
                draining: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            metrics,
            queue_depth,
            dropped_events,
            slice_wall,
        }))
    }

    /// The server's metrics registry (the `metrics` verb payload source).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Keeps the `serve.queue_depth` gauge in step with the queue. Called
    /// under the registry lock after every queue mutation.
    fn note_queue_depth(&self, inner: &Inner) {
        self.queue_depth.set(inner.queue.len() as i64);
    }

    /// The effective worker-pool size.
    pub fn worker_count(&self) -> usize {
        if self.cfg.workers > 0 {
            self.cfg.workers
        } else {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        }
    }

    /// Spawns the worker pool. The handles join once [`Registry::drain`]
    /// completes.
    pub fn start_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.worker_count())
            .map(|i| {
                let reg = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("mcmap-serve-worker-{i}"))
                    .spawn(move || reg.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("registry poisoned")
    }

    /// Submits a spec: persists it, enqueues the job, and returns its id.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec names an unknown benchmark, the
    /// server is draining, or persistence fails.
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        if spec.resolve().is_none() {
            return Err(format!("unknown benchmark {:?}", spec.benchmark));
        }
        let mut inner = self.lock();
        if inner.draining {
            return Err("server is shutting down".into());
        }
        let id = format!("job-{:06}", inner.next_id);
        inner.next_id += 1;
        let paths = JobPaths::new(&self.cfg.jobs_dir, &id);
        std::fs::create_dir_all(&paths.dir).map_err(|e| format!("create job dir: {e}"))?;
        atomic_write(&paths.spec(), spec.to_json().as_bytes()).map_err(|e| e.to_string())?;
        atomic_write(
            &paths.status(),
            status_doc(JobState::Queued, None, None).as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Queued,
                stop: Arc::new(AtomicBool::new(false)),
                cancel_requested: false,
                generation_done: None,
                error: None,
                totals: JobTotals::default(),
                tap: Arc::new(ProgressTap::default()),
            },
        );
        inner.queue.push_back(id.clone());
        self.note_queue_depth(&inner);
        drop(inner);
        self.work.notify_one();
        Ok(id)
    }

    /// Requests cancellation: a queued job cancels immediately, a running
    /// one stops at its next generation boundary (checkpoint written).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown ids and already-terminal jobs.
    pub fn cancel(&self, id: &str) -> Result<(), String> {
        let mut inner = self.lock();
        let entry = inner
            .jobs
            .get_mut(id)
            .ok_or_else(|| format!("no such job {id:?}"))?;
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.cancel_requested = true;
                let generation = entry.generation_done;
                self.persist_status(id, JobState::Cancelled, generation, None);
                inner.queue.retain(|q| q != id);
                self.note_queue_depth(&inner);
                Ok(())
            }
            JobState::Running => {
                entry.cancel_requested = true;
                entry.stop.store(true, Ordering::SeqCst);
                Ok(())
            }
            s => Err(format!("job {id:?} is already {}", s.as_str())),
        }
    }

    /// Re-enqueues an interrupted or cancelled job; its next slice resumes
    /// the checkpoint bit-identically.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown ids and non-resumable states.
    pub fn resume(&self, id: &str) -> Result<(), String> {
        let mut inner = self.lock();
        if inner.draining {
            return Err("server is shutting down".into());
        }
        let entry = inner
            .jobs
            .get_mut(id)
            .ok_or_else(|| format!("no such job {id:?}"))?;
        match entry.state {
            JobState::Interrupted | JobState::Cancelled => {
                entry.state = JobState::Queued;
                entry.stop = Arc::new(AtomicBool::new(false));
                entry.cancel_requested = false;
                entry.error = None;
                let generation = entry.generation_done;
                self.persist_status(id, JobState::Queued, generation, None);
                inner.queue.push_back(id.to_string());
                self.note_queue_depth(&inner);
                drop(inner);
                self.work.notify_one();
                Ok(())
            }
            s => Err(format!("job {id:?} is {}, not resumable", s.as_str())),
        }
    }

    /// The job's current state, if it exists.
    pub fn state_of(&self, id: &str) -> Option<JobState> {
        self.lock().jobs.get(id).map(|e| e.state)
    }

    /// Subscribes to the job's progress stream (one generation number per
    /// completed boundary), along with its state at subscription time.
    pub fn subscribe(&self, id: &str) -> Option<(Receiver<u64>, JobState)> {
        let inner = self.lock();
        let entry = inner.jobs.get(id)?;
        Some((entry.tap.subscribe(), entry.state))
    }

    /// The full status document of one job (the `status` verb payload).
    pub fn status_json(&self, id: &str) -> Option<String> {
        let inner = self.lock();
        let e = inner.jobs.get(id)?;
        let mut out = String::from("{\"id\":");
        push_json_str(&mut out, id);
        out.push_str(",\"state\":");
        push_json_str(&mut out, e.state.as_str());
        out.push_str(",\"spec\":");
        out.push_str(&e.spec.to_json());
        match e.generation_done {
            Some(g) => out.push_str(&format!(",\"generation_done\":{g}")),
            None => out.push_str(",\"generation_done\":null"),
        }
        out.push_str(&format!(",\"slices\":{}", e.totals.slices));
        if let Some(err) = &e.error {
            out.push_str(",\"error\":");
            push_json_str(&mut out, err);
        }
        out.push_str(&format!(
            ",\"eval\":{},\"analysis\":{}}}",
            e.totals.eval.to_json(),
            e.totals.analysis.to_json()
        ));
        Some(out)
    }

    /// One line per job: id, state, benchmark, last completed generation.
    pub fn list_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("[");
        for (i, (id, e)) in inner.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            push_json_str(&mut out, id);
            out.push_str(",\"state\":");
            push_json_str(&mut out, e.state.as_str());
            out.push_str(",\"benchmark\":");
            push_json_str(&mut out, &e.spec.benchmark);
            match e.generation_done {
                Some(g) => out.push_str(&format!(",\"generation_done\":{g}}}")),
                None => out.push_str(",\"generation_done\":null}"),
            }
        }
        out.push(']');
        out
    }

    /// The persisted final front of a completed job.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown ids and jobs without a front yet.
    pub fn front_json(&self, id: &str) -> Result<String, String> {
        if self.state_of(id).is_none() {
            return Err(format!("no such job {id:?}"));
        }
        let paths = JobPaths::new(&self.cfg.jobs_dir, id);
        std::fs::read_to_string(paths.front())
            .map_err(|_| format!("job {id:?} has no front yet (not completed)"))
    }

    /// Global server statistics: the cross-job cache counters and the job
    /// population by state.
    pub fn server_stats_json(&self) -> String {
        let stats = self.shared.stats();
        let inner = self.lock();
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in inner.jobs.values() {
            *counts.entry(e.state.as_str()).or_insert(0) += 1;
        }
        let jobs: Vec<String> = counts.iter().map(|(s, n)| format!("\"{s}\":{n}")).collect();
        format!(
            "{{\"cache\":{},\"workers\":{},\"queue_depth\":{},\"dropped_events\":{},\
             \"jobs\":{{{}}}}}",
            cache_stats_json(&stats),
            self.worker_count(),
            inner.queue.len(),
            self.dropped_events.get(),
            jobs.join(","),
        )
    }

    /// The shared cross-job cache handle (for in-process harnesses).
    pub fn shared_cache(&self) -> &SharedEvalCache {
        &self.shared
    }

    /// Drains the server: no new slices start, running slices stop at
    /// their next generation boundary (checkpoints written), and every
    /// non-terminal job is persisted as `interrupted`. Returns once all
    /// workers are idle; the worker threads then exit.
    pub fn drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        for e in inner.jobs.values() {
            if e.state == JobState::Running {
                e.stop.store(true, Ordering::SeqCst);
            }
        }
        self.work.notify_all();
        while inner.jobs.values().any(|e| e.state == JobState::Running) {
            inner = self.idle.wait(inner).expect("registry poisoned");
        }
        let pending: Vec<String> = inner
            .jobs
            .iter()
            .filter(|(_, e)| !e.state.is_terminal())
            .map(|(id, _)| id.clone())
            .collect();
        for id in pending {
            let e = inner.jobs.get_mut(&id).expect("listed above");
            e.state = JobState::Interrupted;
            let generation = e.generation_done;
            self.persist_status(&id, JobState::Interrupted, generation, None);
        }
        inner.queue.clear();
        self.note_queue_depth(&inner);
    }

    /// Whether [`Registry::drain`] has started.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    fn persist_status(
        &self,
        id: &str,
        state: JobState,
        generation_done: Option<usize>,
        error: Option<&str>,
    ) {
        let paths = JobPaths::new(&self.cfg.jobs_dir, id);
        // Best-effort: the checkpoint is the durable record, status.json
        // only speeds up restart recovery.
        let _ = atomic_write(
            &paths.status(),
            status_doc(state, generation_done, error).as_bytes(),
        );
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let (id, spec, stop, tap) = {
                let mut inner = self.lock();
                loop {
                    if inner.draining {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        self.note_queue_depth(&inner);
                        let e = inner.jobs.get_mut(&id).expect("queued job exists");
                        e.state = JobState::Running;
                        let out = (
                            id.clone(),
                            e.spec.clone(),
                            Arc::clone(&e.stop),
                            Arc::clone(&e.tap),
                        );
                        let generation = e.generation_done;
                        self.persist_status(&id, JobState::Running, generation, None);
                        break out;
                    }
                    inner = self.work.wait(inner).expect("registry poisoned");
                }
            };
            let t0 = Instant::now();
            let (verdict, stats) = self.run_slice(&id, &spec, stop, tap);
            let slice_ns = t0.elapsed().as_nanos() as u64;
            self.slice_wall.observe(slice_ns);
            self.metrics
                .histogram_with("serve.slice_ns", &[("job", &id)], Class::Nondet)
                .observe(slice_ns);
            let mut inner = self.lock();
            let draining = inner.draining;
            let e = inner.jobs.get_mut(&id).expect("running job exists");
            if let Some((eval, analysis, generation)) = stats {
                e.totals.absorb(&eval, &analysis);
                e.generation_done = generation.or(e.generation_done);
            }
            let next = match verdict {
                SliceVerdict::Failed(msg) => {
                    e.error = Some(msg);
                    JobState::Failed
                }
                SliceVerdict::Completed => JobState::Completed,
                SliceVerdict::Unfinished if e.cancel_requested => JobState::Cancelled,
                SliceVerdict::Unfinished if draining => JobState::Interrupted,
                SliceVerdict::Unfinished => JobState::Queued,
            };
            e.state = next;
            let generation = e.generation_done;
            let error = e.error.clone();
            self.persist_status(&id, next, generation, error.as_deref());
            if next == JobState::Queued {
                inner.queue.push_back(id);
                self.note_queue_depth(&inner);
                drop(inner);
                self.work.notify_one();
            } else {
                drop(inner);
            }
            self.idle.notify_all();
        }
    }

    /// Runs one budget slice of a job: resume checkpoint → bounded number
    /// of generation boundaries → checkpoint → stop.
    #[allow(clippy::type_complexity)]
    fn run_slice(
        &self,
        id: &str,
        spec: &JobSpec,
        stop: Arc<AtomicBool>,
        tap: Arc<ProgressTap>,
    ) -> (
        SliceVerdict,
        Option<(
            mcmap_core::EvalStats,
            mcmap_core::AnalysisStats,
            Option<usize>,
        )>,
    ) {
        let Some(b) = spec.resolve() else {
            return (
                SliceVerdict::Failed(format!("unknown benchmark {:?}", spec.benchmark)),
                None,
            );
        };
        let paths = JobPaths::new(&self.cfg.jobs_dir, id);
        let ckpt = paths.checkpoint();
        let resume = ckpt.exists().then(|| ckpt.clone());
        let trace = paths.trace();
        let mut builder = RecorderBuilder::new().sink(Box::new(TapSink(tap)));
        let attached = match &resume {
            Some(path) => {
                // The checkpoint's trace high-water mark bounds what the
                // salvaged part-1 trace may keep; the resumed recorder then
                // skips the re-emitted preamble below it.
                let trace_seq = read_checkpoint_with_fallback(path)
                    .map(|(c, _)| c.trace_seq)
                    .unwrap_or(0);
                salvage_trace(&trace, trace_seq);
                builder.jsonl_append(&trace, trace_seq)
            }
            None => builder.jsonl(&trace),
        };
        builder = match attached {
            Ok(bld) => bld,
            Err(e) => {
                return (
                    SliceVerdict::Failed(format!("cannot open trace {}: {e}", trace.display())),
                    None,
                );
            }
        };
        let mut cfg = DseConfig {
            ga: GaConfig {
                population: spec.population,
                generations: spec.generations,
                seed: spec.seed,
                threads: self.cfg.job_threads,
                ..GaConfig::default()
            },
            objectives: ObjectiveMode::PowerService,
            policies: Some(b.policies.clone()),
            repair_iters: 80,
            shared_cache: Some(self.shared.clone()),
            obs: builder.build(),
            telemetry: self.metrics.clone(),
            ..DseConfig::default()
        };
        cfg.resilience.checkpoint = Some(ckpt);
        cfg.resilience.resume = resume;
        cfg.resilience.stop = Some(stop);
        cfg.resilience.stop_after_slice = Some(self.cfg.slice.max(1));
        match explore_checked(&b.apps, &b.arch, cfg) {
            Ok(outcome) => {
                // The slice's recorder is done emitting: whatever its sinks
                // lost (ring evictions, failed trace writes) is final, and
                // silent loss becomes a visible server-wide counter.
                self.dropped_events.add(outcome.obs.dropped_events());
                let generation = outcome.result.history.last().map(|row| row.generation);
                let stats = Some((outcome.eval_stats.clone(), outcome.analysis, generation));
                if outcome.interrupted {
                    (SliceVerdict::Unfinished, stats)
                } else {
                    let front = front_to_json(&outcome.reports, |i| {
                        b.apps.app(mcmap_model::AppId::new(i)).name().to_string()
                    });
                    if let Err(e) = atomic_write(&paths.front(), front.as_bytes()) {
                        return (SliceVerdict::Failed(format!("persist front: {e}")), stats);
                    }
                    (SliceVerdict::Completed, stats)
                }
            }
            Err(e) => (SliceVerdict::Failed(e.to_string()), None),
        }
    }
}

/// Renders the shared cache's counters as JSON.
pub fn cache_stats_json(stats: &CacheStats) -> String {
    format!(
        "{{\"entries\":{},\"hits\":{},\"misses\":{},\"insertions\":{},\
         \"evictions\":{},\"hit_rate\":{:.6}}}",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        stats.hit_rate(),
    )
}

/// Rewrites the job's trace down to its valid prefix of events with
/// `seq <= trace_seq` — exactly what the checkpoint being resumed from
/// vouches for. A SIGKILL mid-slice can leave a torn final line and events
/// past the checkpoint boundary; both must go before the resumed slice
/// appends, or the stitched stream would differ from an uninterrupted
/// run's.
fn salvage_trace(path: &std::path::Path, trace_seq: u64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let (events, _) = mcmap_obs::events_from_jsonl_lossy(&text);
    let mut out = String::with_capacity(text.len());
    for event in &events {
        if event.seq <= trace_seq {
            event.write_jsonl(&mut out);
            out.push('\n');
        }
    }
    if out != text {
        let _ = atomic_write(path, out.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mcmap_serve_registry_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec(seed: u64) -> JobSpec {
        JobSpec {
            benchmark: "cruise".into(),
            population: 8,
            generations: 2,
            seed,
        }
    }

    fn wait_terminal(reg: &Registry, id: &str) -> JobState {
        for _ in 0..600 {
            let s = reg.state_of(id).expect("job exists");
            if s.is_terminal() {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("job {id} did not reach a terminal state");
    }

    #[test]
    fn jobs_complete_identically_to_a_direct_run_and_share_the_cache() {
        let dir = scratch("complete");
        let reg = Registry::open(ServeConfig {
            jobs_dir: dir.clone(),
            workers: 2,
            slice: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let workers = reg.start_workers();
        // Two identical tenants plus one distinct one.
        let a = reg.submit(tiny_spec(8)).unwrap();
        let b = reg.submit(tiny_spec(8)).unwrap();
        let c = reg.submit(tiny_spec(9)).unwrap();
        for id in [&a, &b, &c] {
            assert_eq!(wait_terminal(&reg, id), JobState::Completed);
        }
        // Identical specs produce byte-identical fronts; the distinct seed
        // may differ.
        let fa = reg.front_json(&a).unwrap();
        let fb = reg.front_json(&b).unwrap();
        assert_eq!(fa, fb, "identical tenants must agree bit-for-bit");
        // The twin job resolves from the shared cache.
        let stats = reg.shared_cache().stats();
        assert!(stats.hits > 0, "cross-job sharing produced no hits");
        // Per-job counters are observable through the status document.
        let status = reg.status_json(&b).unwrap();
        let json = mcmap_obs::parse_json(&status).unwrap();
        assert!(json.get("eval").and_then(|e| e.get("cache_hits")).is_some());
        assert!(json.get("analysis").is_some());
        assert_eq!(
            json.get("state").and_then(|v| v.as_str()),
            Some("completed")
        );
        reg.drain();
        for w in workers {
            w.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_interrupts_and_a_reopened_registry_resumes_bit_identically() {
        let ref_dir = scratch("drain_reference");
        let dir = scratch("drain_resume");
        let spec = JobSpec {
            benchmark: "cruise".into(),
            population: 8,
            generations: 4,
            seed: 8,
        };
        // Reference: an uninterrupted run of the same spec.
        let reference = {
            let reg = Registry::open(ServeConfig {
                jobs_dir: ref_dir.clone(),
                workers: 1,
                slice: 1,
                ..ServeConfig::default()
            })
            .unwrap();
            let workers = reg.start_workers();
            let id = reg.submit(spec.clone()).unwrap();
            assert_eq!(wait_terminal(&reg, &id), JobState::Completed);
            let front = reg.front_json(&id).unwrap();
            reg.drain();
            for w in workers {
                w.join().unwrap();
            }
            front
        };
        // Interrupted leg: drain once the first boundary is checkpointed.
        {
            let reg = Registry::open(ServeConfig {
                jobs_dir: dir.clone(),
                workers: 1,
                slice: 1,
                ..ServeConfig::default()
            })
            .unwrap();
            let workers = reg.start_workers();
            let id = reg.submit(spec.clone()).unwrap();
            for _ in 0..600 {
                let status = reg.status_json(&id).unwrap();
                let json = mcmap_obs::parse_json(&status).unwrap();
                if json
                    .get("generation_done")
                    .and_then(|v| v.as_u64())
                    .is_some()
                {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            reg.drain();
            for w in workers {
                w.join().unwrap();
            }
            let state = reg.state_of(&id).unwrap();
            assert!(
                state == JobState::Interrupted || state == JobState::Completed,
                "drain left the job {state:?}"
            );
        }
        // Reopen the same jobs directory: the unfinished job surfaces as
        // interrupted and resumes to the reference front bit-for-bit.
        {
            let reg = Registry::open(ServeConfig {
                jobs_dir: dir.clone(),
                workers: 1,
                slice: 1,
                ..ServeConfig::default()
            })
            .unwrap();
            let workers = reg.start_workers();
            let id = "job-000001";
            match reg.state_of(id).expect("job recovered from disk") {
                JobState::Interrupted => reg.resume(id).unwrap(),
                JobState::Completed => {}
                s => panic!("unexpected recovered state {s:?}"),
            }
            assert_eq!(wait_terminal(&reg, id), JobState::Completed);
            assert_eq!(
                reg.front_json(id).unwrap(),
                reference,
                "resumed front must be bit-identical to the uninterrupted run"
            );
            reg.drain();
            for w in workers {
                w.join().unwrap();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn queued_jobs_cancel_immediately_and_resume_requeues() {
        let dir = scratch("cancel_queued");
        // No workers started: submissions stay queued.
        let reg = Registry::open(ServeConfig {
            jobs_dir: dir.clone(),
            ..ServeConfig::default()
        })
        .unwrap();
        let id = reg.submit(tiny_spec(8)).unwrap();
        assert_eq!(reg.state_of(&id), Some(JobState::Queued));
        reg.cancel(&id).unwrap();
        assert_eq!(reg.state_of(&id), Some(JobState::Cancelled));
        assert!(
            reg.cancel(&id).is_err(),
            "terminal jobs cannot cancel again"
        );
        reg.resume(&id).unwrap();
        assert_eq!(reg.state_of(&id), Some(JobState::Queued));
        assert!(
            reg.submit(JobSpec {
                benchmark: "nope".into(),
                ..tiny_spec(8)
            })
            .is_err(),
            "unknown benchmarks are rejected at submission"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
