//! # mcmap-serve
//!
//! The design-space exploration as a long-running, multi-tenant job
//! service: a dependency-light TCP server speaking a length-framed JSON
//! protocol, a bounded worker pool that timeslices many explorations
//! fairly, and a server-wide candidate-evaluation cache so identical
//! work submitted by different tenants evaluates once.
//!
//! Three properties carry over unchanged from the batch pipeline:
//!
//! * **Determinism** — a job is a sequence of budget slices, each one a
//!   resumed [`mcmap_core::explore_checked`] call stopped cooperatively at
//!   a generation boundary. The checkpoint/resume machinery guarantees the
//!   sliced run walks the exact same boundaries as an uninterrupted run,
//!   so fronts, audit counters, and canonical traces are bit-identical no
//!   matter how the scheduler interleaves tenants.
//! * **Durability** — every slice ends with an atomic sealed-envelope
//!   checkpoint in the job's directory. Killing the server (SIGTERM or
//!   SIGKILL) loses at most the slice in flight; on restart, unfinished
//!   jobs surface as `interrupted` and resume bit-identically.
//! * **Sharing soundness** — the cross-job memo cache keys every record by
//!   the submitting run's context fingerprint (model, configuration,
//!   seed), so tenants with different inputs can contend on capacity but
//!   never exchange content.
//!
//! The module split mirrors the data flow: [`proto`] (frames and verbs) →
//! [`server`] (connection handling) → [`registry`] (job table, worker
//! pool, shared cache) → [`job`] (specs, states, persistence), with
//! [`progress`] tapping the observability stream for per-generation
//! progress frames and [`client`] as the typed blocking driver.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod job;
pub mod progress;
pub mod proto;
pub mod registry;
pub mod render;
pub mod server;

pub use client::{Client, RetryPolicy};
pub use job::{JobSpec, JobState};
pub use registry::{Registry, ServeConfig};
pub use server::Server;
