//! Fuzz-style properties of the frame decoder: arbitrary byte prefixes
//! must never panic, never mis-classify, and always round-trip what the
//! encoder produced.

use mcmap_serve::proto::{read_frame, write_frame, FrameError, MAX_FRAME};
use proptest::prelude::*;

proptest! {
    /// Feeding the decoder an arbitrary byte prefix (as a torn TCP stream
    /// would) yields a clean EOF, a frame, or an error — never a panic,
    /// and never an allocation driven by a hostile length prefix.
    #[test]
    fn random_prefixes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut r = bytes.as_slice();
        match read_frame(&mut r) {
            Ok(None) => prop_assert!(bytes.len() < 4, "clean EOF only before a full prefix"),
            Ok(Some(frame)) => {
                let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
                prop_assert!((1..=MAX_FRAME).contains(&len));
                prop_assert_eq!(frame.len(), len);
            }
            Err(e) => {
                // Typed errors only for the two prefix classes.
                if let Some(fe) = FrameError::from_io(&e) {
                    let len =
                        u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
                    match fe {
                        FrameError::Empty => prop_assert_eq!(len, 0),
                        FrameError::Oversized { len: l } => {
                            prop_assert_eq!(l, len);
                            prop_assert!(len > MAX_FRAME);
                        }
                    }
                }
            }
        }
    }

    /// Every frame the encoder writes decodes back to the same payload,
    /// and trailing garbage after the frame is left untouched.
    #[test]
    fn encoded_frames_round_trip(
        payload in proptest::collection::vec(0x20u8..0x7f, 1..256)
            .prop_map(|v| String::from_utf8(v).unwrap()),
        trailing in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        buf.extend_from_slice(&trailing);
        let mut r = buf.as_slice();
        let decoded = read_frame(&mut r).unwrap();
        prop_assert_eq!(decoded.as_deref(), Some(payload.as_str()));
        prop_assert_eq!(r, trailing.as_slice());
    }

    /// An over-cap length prefix is rejected from the prefix alone: the
    /// body bytes (whatever few are present) are irrelevant.
    #[test]
    fn oversized_prefixes_reject_before_reading_the_body(
        extra in (MAX_FRAME as u32 + 1)..=u32::MAX,
        body in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&extra.to_be_bytes());
        buf.extend_from_slice(&body);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        prop_assert_eq!(
            FrameError::from_io(&err),
            Some(FrameError::Oversized { len: extra as usize })
        );
    }
}
