//! Property-based tests for the discrete-event simulator.

use mcmap_hardening::{harden, HardenedSystem, HardeningPlan, TaskHardening};
use mcmap_model::{
    AppId, AppSet, Architecture, Criticality, ExecBounds, Fabric, ProcId, ProcKind, Processor,
    Task, TaskGraph, Time,
};
use mcmap_sched::{
    nominal_bounds, uniform_policies, HolisticAnalysis, Mapping, SchedBackend, SchedPolicy,
};
use mcmap_sim::{ExecModel, NoFaults, RandomFaults, SimConfig, Simulator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Desc {
    apps: Vec<(u64, Vec<u64>, bool)>, // period, task wcets, droppable
    placements: Vec<usize>,
    reexec: Vec<u8>,
    seed: u64,
}

fn desc_strategy() -> impl Strategy<Value = Desc> {
    let app = (
        prop::sample::select(vec![1_000u64, 2_000, 4_000]),
        prop::collection::vec(5u64..120, 1..4),
        any::<bool>(),
    );
    (
        prop::collection::vec(app, 1..4),
        prop::collection::vec(0usize..2, 12),
        prop::collection::vec(0u8..3, 12),
        any::<u64>(),
    )
        .prop_map(|(apps, placements, reexec, seed)| Desc {
            apps,
            placements,
            reexec,
            seed,
        })
}

fn build(d: &Desc) -> (Architecture, HardenedSystem, Mapping, Vec<SchedPolicy>) {
    let arch = Architecture::builder()
        .homogeneous(2, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
        .fabric(Fabric::new(16))
        .build()
        .expect("valid");
    let graphs: Vec<TaskGraph> = d
        .apps
        .iter()
        .enumerate()
        .map(|(i, (period, wcets, droppable))| {
            let crit = if *droppable {
                Criticality::Droppable { service: 1.0 }
            } else {
                Criticality::NonDroppable {
                    max_failure_rate: 0.99,
                }
            };
            let mut b =
                TaskGraph::builder(format!("a{i}"), Time::from_ticks(*period)).criticality(crit);
            for (j, w) in wcets.iter().enumerate() {
                b = b.task(
                    Task::new(format!("t{i}_{j}"))
                        .with_uniform_exec(
                            1,
                            ExecBounds::new(Time::from_ticks(w / 2), Time::from_ticks(*w)),
                        )
                        .with_detect_overhead(Time::from_ticks(2)),
                );
            }
            for j in 1..wcets.len() {
                b = b.channel(j - 1, j, 8);
            }
            b.build().expect("chains are valid")
        })
        .collect();
    let apps = AppSet::new(graphs).expect("nonempty");
    let mut plan = HardeningPlan::unhardened(&apps);
    for flat in 0..apps.num_tasks() {
        let k = d.reexec[flat % d.reexec.len()];
        if k > 0 {
            plan.set_by_flat_index(flat, TaskHardening::reexecution(k));
        }
    }
    let hsys = harden(&apps, &plan, &arch).expect("valid");
    let placement: Vec<ProcId> = (0..hsys.num_tasks())
        .map(|i| ProcId::new(d.placements[i % d.placements.len()]))
        .collect();
    let mapping = Mapping::new(&hsys, &arch, placement).expect("kind 0 everywhere");
    let policies = uniform_policies(2, SchedPolicy::FixedPriorityPreemptive);
    (arch, hsys, mapping, policies)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulation_is_deterministic(d in desc_strategy()) {
        let (arch, hsys, mapping, policies) = build(&d);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let cfg = SimConfig::worst_case(
            hsys.apps().iter().filter(|a| a.criticality.is_droppable()).map(|a| a.app).collect(),
        );
        let run = |seed: u64| {
            let mut f = RandomFaults::new(&hsys, &arch, &mapping, seed).with_boost(1e5);
            sim.run(&cfg, &mut f)
        };
        prop_assert_eq!(run(d.seed), run(d.seed));
    }

    #[test]
    fn fault_free_run_is_bounded_by_the_analysis(d in desc_strategy()) {
        let (arch, hsys, mapping, policies) = build(&d);
        let analysis = HolisticAnalysis::new(&hsys, &arch, &mapping, policies.clone());
        let w = analysis.analyze(&nominal_bounds(&hsys, &arch, &mapping));
        prop_assume!(w.all_deadlines_met(&hsys));

        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let r = sim.run(&SimConfig::default(), &mut NoFaults);
        for happ in hsys.apps() {
            prop_assert!(
                r.app_wcrt[happ.app.index()] <= w.app_wcrt(&hsys, happ.app),
                "app {}: simulated {} > analyzed {}",
                happ.name,
                r.app_wcrt[happ.app.index()],
                w.app_wcrt(&hsys, happ.app)
            );
        }
        // Fault-free runs never enter the critical state or drop anything.
        prop_assert_eq!(r.critical_entries, 0);
        prop_assert_eq!(r.dropped_instances.iter().sum::<u64>(), 0);
        prop_assert_eq!(r.unsafe_instances.iter().sum::<u64>(), 0);
    }

    #[test]
    fn best_case_model_is_never_slower(d in desc_strategy()) {
        let (arch, hsys, mapping, policies) = build(&d);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let worst = sim.run(&SimConfig::default(), &mut NoFaults);
        let best = sim.run(
            &SimConfig {
                exec_model: ExecModel::BestCase,
                ..SimConfig::default()
            },
            &mut NoFaults,
        );
        for i in 0..worst.app_wcrt.len() {
            prop_assert!(best.app_wcrt[i] <= worst.app_wcrt[i]);
        }
    }

    #[test]
    fn dropping_never_delays_nondroppable_apps(d in desc_strategy(), seed in any::<u64>()) {
        let (arch, hsys, mapping, policies) = build(&d);
        let sim = Simulator::new(&hsys, &arch, &mapping, policies);
        let droppable: Vec<AppId> = hsys
            .apps()
            .iter()
            .filter(|a| a.criticality.is_droppable())
            .map(|a| a.app)
            .collect();
        prop_assume!(!droppable.is_empty());

        let mut f1 = RandomFaults::new(&hsys, &arch, &mapping, seed).with_boost(1e4);
        let keep = sim.run(&SimConfig::worst_case(vec![]), &mut f1);
        let mut f2 = RandomFaults::new(&hsys, &arch, &mapping, seed).with_boost(1e4);
        let drop = sim.run(&SimConfig::worst_case(droppable), &mut f2);
        for happ in hsys.apps() {
            if !happ.criticality.is_droppable() {
                prop_assert!(
                    drop.app_wcrt[happ.app.index()] <= keep.app_wcrt[happ.app.index()],
                    "dropping must not delay critical app {}",
                    happ.name
                );
            }
        }
    }
}
