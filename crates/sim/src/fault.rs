//! Fault models: who decides which execution attempts are hit by a
//! transient fault.

use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{Architecture, ExecBounds, Time};
use mcmap_sched::Mapping;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Decides whether a given execution attempt of a job is hit by a transient
/// fault.
///
/// # Determinism contract
///
/// The simulator queries the model with `(task, instance, attempt)` and
/// every implementation must be a *pure function of that triple* (plus
/// its own construction-time state, e.g. a seed). Concretely:
///
/// 1. **Repeated queries agree** — asking the same triple twice within
///    one run returns the same verdict. The engine does re-ask: a
///    passive standby's final value is resolved by replaying its
///    attempt's verdict, and the validation campaigns re-simulate
///    configurations while bisecting a violation.
/// 2. **Query order is irrelevant** — the verdict must not depend on
///    which triples were asked before it. Two simulations that drop
///    different application sets (and therefore interleave queries very
///    differently) must face the *same* fault profile, otherwise
///    degraded-mode runs would not be comparable to the analysis.
/// 3. **Equal construction, equal profile** — two models built with the
///    same inputs (same seed for the random model) answer identically,
///    which is what makes a campaign profile reproducible from
///    `(campaign seed + profile index)` alone.
///
/// `&mut self` exists so models *may* keep caches or statistics, not so
/// verdicts may drift: anything mutated must be invisible in the answers.
/// The `fault_model_contract` test module checks all three properties for
/// every model shipped by this crate.
pub trait FaultModel {
    /// Returns `true` if attempt `attempt` of instance `instance` of `task`
    /// is faulty.
    fn faulty(&mut self, task: HTaskId, instance: u64, attempt: u8) -> bool;
}

/// A fault-free run.
///
/// # Examples
///
/// ```
/// use mcmap_sim::{FaultModel, NoFaults};
/// use mcmap_hardening::HTaskId;
/// assert!(!NoFaults.faulty(HTaskId::new(0), 0, 0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn faulty(&mut self, _task: HTaskId, _instance: u64, _attempt: u8) -> bool {
        false
    }
}

/// A scripted fault trace: exactly the listed `(task, instance, attempt)`
/// triples are faulty. Used for directed scenarios such as the paper's
/// Fig. 1 motivational example ("a fault occurs at A").
#[derive(Debug, Clone, Default)]
pub struct ScriptedFaults {
    faults: HashSet<(HTaskId, u64, u8)>,
}

impl ScriptedFaults {
    /// Creates an empty script (equivalent to [`NoFaults`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one faulty attempt.
    pub fn with_fault(mut self, task: HTaskId, instance: u64, attempt: u8) -> Self {
        self.faults.insert((task, instance, attempt));
        self
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no fault is scripted.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl FaultModel for ScriptedFaults {
    fn faulty(&mut self, task: HTaskId, instance: u64, attempt: u8) -> bool {
        self.faults.contains(&(task, instance, attempt))
    }
}

/// Seeded random faults: each execution attempt of task `v` on its mapped
/// processor is faulty independently with probability
/// `1 − exp(−λ_p · wcet_v)`.
///
/// Determinism: the verdict is a pure hash of
/// `(seed, task, instance, attempt)`, so repeated queries agree, two models
/// with the same seed produce identical profiles, and — crucially — the
/// profile does not depend on the *order* in which the simulator asks
/// (runs that drop different job sets still face the same faults).
#[derive(Debug, Clone)]
pub struct RandomFaults {
    probs: Vec<f64>,
    seed: u64,
    /// Multiplier applied to every fault probability (≥ 1 accelerates fault
    /// injection for worst-case hunting).
    boost: f64,
}

impl RandomFaults {
    /// Creates the model from the mapped system; per-task probabilities are
    /// derived from the mapped processor's fault rate and the task's
    /// worst-case execution time.
    pub fn new(hsys: &HardenedSystem, arch: &Architecture, mapping: &Mapping, seed: u64) -> Self {
        let probs = hsys
            .tasks()
            .map(|(id, t)| {
                let proc = mapping.proc_of(id);
                let p = arch.processor(proc);
                let wcet = t
                    .nominal_bounds(p.kind)
                    .map(|b: ExecBounds| b.wcet)
                    .unwrap_or(Time::ZERO);
                p.fault_probability(wcet)
            })
            .collect();
        RandomFaults {
            probs,
            seed,
            boost: 1.0,
        }
    }

    /// Multiplies every fault probability by `factor` (clamped to `[0, 1]`
    /// at query time). Monte-Carlo worst-case hunting uses boosts ≫ 1 so
    /// that rare fault combinations are actually visited within a bounded
    /// number of profiles.
    pub fn with_boost(mut self, factor: f64) -> Self {
        self.boost = factor;
        self
    }
}

impl FaultModel for RandomFaults {
    fn faulty(&mut self, task: HTaskId, instance: u64, attempt: u8) -> bool {
        let p = (self.probs[task.index()] * self.boost).clamp(0.0, 1.0);
        // Order-independent pseudo-random verdict.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        task.index().hash(&mut h);
        instance.hash(&mut h);
        attempt.hash(&mut h);
        let u = h.finish() as f64 / u64::MAX as f64;
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan};
    use mcmap_model::{
        AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };

    fn fixture() -> (Architecture, HardenedSystem, Mapping) {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-3))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        (arch, hsys, mapping)
    }

    #[test]
    fn scripted_faults_hit_exactly_the_script() {
        let mut f = ScriptedFaults::new()
            .with_fault(HTaskId::new(0), 2, 0)
            .with_fault(HTaskId::new(1), 0, 1);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert!(f.faulty(HTaskId::new(0), 2, 0));
        assert!(f.faulty(HTaskId::new(1), 0, 1));
        assert!(!f.faulty(HTaskId::new(0), 0, 0));
        assert!(!f.faulty(HTaskId::new(1), 0, 0));
    }

    #[test]
    fn random_faults_are_deterministic_per_seed() {
        let (arch, hsys, mapping) = fixture();
        let mut a = RandomFaults::new(&hsys, &arch, &mapping, 42).with_boost(500.0);
        let mut b = RandomFaults::new(&hsys, &arch, &mapping, 42).with_boost(500.0);
        for inst in 0..50 {
            assert_eq!(
                a.faulty(HTaskId::new(0), inst, 0),
                b.faulty(HTaskId::new(0), inst, 0)
            );
        }
    }

    #[test]
    fn random_fault_answers_are_stable_within_a_run() {
        let (arch, hsys, mapping) = fixture();
        let mut f = RandomFaults::new(&hsys, &arch, &mapping, 7).with_boost(10_000.0);
        let first = f.faulty(HTaskId::new(0), 3, 0);
        for _ in 0..10 {
            assert_eq!(f.faulty(HTaskId::new(0), 3, 0), first);
        }
    }

    #[test]
    fn boost_increases_fault_frequency() {
        let (arch, hsys, mapping) = fixture();
        let count = |boost: f64| {
            let mut f = RandomFaults::new(&hsys, &arch, &mapping, 1).with_boost(boost);
            (0..2000)
                .filter(|&i| f.faulty(HTaskId::new(0), i, 0))
                .count()
        };
        let low = count(1.0);
        let high = count(2000.0);
        assert!(high > low);
        assert!(
            high > 100,
            "boosted rate should fire frequently, got {high}"
        );
    }

    #[test]
    fn zero_rate_never_faults() {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 0.0))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        let mut f = RandomFaults::new(&hsys, &arch, &mapping, 3).with_boost(1e9);
        assert!((0..100).all(|i| !f.faulty(HTaskId::new(0), i, 0)));
    }
}

#[cfg(test)]
mod fault_model_contract {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan};
    use mcmap_model::{
        AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph,
    };

    fn fixture() -> (Architecture, HardenedSystem, Mapping) {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-3))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(50))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        (arch, hsys, mapping)
    }

    /// The query universe the contract is exercised over.
    fn triples() -> Vec<(HTaskId, u64, u8)> {
        let mut v = Vec::new();
        for inst in 0..40 {
            for attempt in 0..3 {
                v.push((HTaskId::new(0), inst, attempt));
            }
        }
        v
    }

    /// Contract checks 1 and 2 for any model: the full verdict table is
    /// identical when queried forward, backward, and with every triple
    /// repeated three times in a row.
    fn assert_contract(mut make: impl FnMut() -> Box<dyn FaultModel>) {
        let ts = triples();
        let forward: Vec<bool> = {
            let mut m = make();
            ts.iter().map(|&(t, i, a)| m.faulty(t, i, a)).collect()
        };
        let backward: Vec<bool> = {
            let mut m = make();
            let mut v: Vec<bool> = ts
                .iter()
                .rev()
                .map(|&(t, i, a)| m.faulty(t, i, a))
                .collect();
            v.reverse();
            v
        };
        assert_eq!(forward, backward, "verdicts must not depend on query order");
        let mut m = make();
        for (k, &(t, i, a)) in ts.iter().enumerate() {
            for repeat in 0..3 {
                assert_eq!(
                    m.faulty(t, i, a),
                    forward[k],
                    "repeat {repeat} of {t:?}/{i}/{a} drifted"
                );
            }
        }
    }

    #[test]
    fn all_shipped_models_obey_the_contract() {
        let (arch, hsys, mapping) = fixture();
        assert_contract(|| Box::new(NoFaults));
        assert_contract(|| {
            Box::new(
                ScriptedFaults::new()
                    .with_fault(HTaskId::new(0), 2, 0)
                    .with_fault(HTaskId::new(0), 17, 1),
            )
        });
        assert_contract(|| {
            Box::new(RandomFaults::new(&hsys, &arch, &mapping, 42).with_boost(500.0))
        });
        assert_contract(|| Box::new(ExhaustiveReexecution::new(&hsys)));
    }

    /// Contract check 3 for the random model: the profile is a function
    /// of the seed alone — equal seeds agree everywhere, and different
    /// seeds disagree somewhere (at a boost that makes faults common).
    #[test]
    fn random_profiles_are_seed_functions() {
        let (arch, hsys, mapping) = fixture();
        // Boost 5 puts the per-attempt probability near 0.25 — faults are
        // common but far from certain, so distinct seeds can diverge.
        let table = |seed: u64| -> Vec<bool> {
            let mut m = RandomFaults::new(&hsys, &arch, &mapping, seed).with_boost(5.0);
            triples()
                .iter()
                .map(|&(t, i, a)| m.faulty(t, i, a))
                .collect()
        };
        assert_eq!(table(9), table(9));
        assert_ne!(table(9), table(10), "distinct seeds must diverge");
    }
}

/// The *Adhoc* fault model: every re-execution-hardened task is maximally
/// re-executed — all attempts before the last one in the budget are faulty,
/// the final one succeeds. Tasks without a re-execution budget never fault.
///
/// Combined with [`SimConfig::start_critical`](crate::SimConfig) and
/// worst-case execution times, this reproduces the paper's ad-hoc worst-case
/// trace (§5.1): critical from the start of the hyperperiod, `wcet'` from
/// Eq. (1) everywhere, droppable tasks absent.
#[derive(Debug, Clone)]
pub struct ExhaustiveReexecution {
    budgets: Vec<u8>,
}

impl ExhaustiveReexecution {
    /// Builds the model from the hardened system's re-execution budgets.
    pub fn new(hsys: &HardenedSystem) -> Self {
        ExhaustiveReexecution {
            budgets: hsys.tasks().map(|(_, t)| t.reexec).collect(),
        }
    }
}

impl FaultModel for ExhaustiveReexecution {
    fn faulty(&mut self, task: HTaskId, _instance: u64, attempt: u8) -> bool {
        attempt < self.budgets[task.index()]
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{
        AppSet, Architecture, ExecBounds, ProcKind, Processor, Task, TaskGraph, Time,
    };

    #[test]
    fn exhausts_budget_then_succeeds() {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        plan.set_by_flat_index(0, TaskHardening::reexecution(2));
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mut f = ExhaustiveReexecution::new(&hsys);
        assert!(f.faulty(HTaskId::new(0), 0, 0));
        assert!(f.faulty(HTaskId::new(0), 0, 1));
        assert!(!f.faulty(HTaskId::new(0), 0, 2));
        assert!(f.faulty(HTaskId::new(0), 7, 1));
    }

    #[test]
    fn unhardened_tasks_never_fault() {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(100))
            .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch).unwrap();
        let mut f = ExhaustiveReexecution::new(&hsys);
        assert!(!f.faulty(HTaskId::new(0), 0, 0));
    }
}
