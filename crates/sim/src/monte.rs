//! Monte-Carlo worst-case hunting (the paper's *WC-Sim* column).
//!
//! Table 2 of the paper compares the proposed analysis against the maximum
//! response time observed over 10 000 random failure profiles. This module
//! provides that driver: repeated simulation under seeded [`RandomFaults`],
//! aggregating per-application maxima.

use crate::{RandomFaults, SimConfig, SimResult, Simulator};
use mcmap_hardening::HardenedSystem;
use mcmap_model::{Architecture, Time};
use mcmap_sched::{Mapping, SchedPolicy};

/// Parameters of a Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Number of independent failure profiles to simulate.
    pub runs: usize,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Fault-probability boost (≥ 1) so that rare fault combinations are
    /// actually visited within the budget. The paper's simulation coverage
    /// caveat (Adhoc occasionally beating WC-Sim) is reproduced with low
    /// boosts.
    pub boost: f64,
    /// Per-run simulation parameters.
    pub sim: SimConfig,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            runs: 1000,
            seed: 0xC0FFEE,
            boost: 1.0,
            sim: SimConfig::default(),
        }
    }
}

/// Aggregated maxima over a Monte-Carlo campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// Per application: the largest response time observed in any run.
    pub app_wcrt: Vec<Time>,
    /// Per hardened task: the largest relative finish observed in any run.
    pub task_wcrt: Vec<Time>,
    /// Total normal→critical transitions across all runs.
    pub critical_entries: u64,
    /// Total unsafe (post-masking corrupted) instances across all runs.
    pub unsafe_instances: u64,
    /// Number of runs performed.
    pub runs: usize,
    /// Per application: every run's observed response time, sorted
    /// ascending — the empirical response-time distribution.
    samples: Vec<Vec<Time>>,
}

impl MonteCarloResult {
    fn merge(&mut self, r: &SimResult) {
        for (acc, &v) in self.app_wcrt.iter_mut().zip(&r.app_wcrt) {
            *acc = (*acc).max(v);
        }
        for (acc, &v) in self.task_wcrt.iter_mut().zip(&r.task_wcrt) {
            *acc = (*acc).max(v);
        }
        for (bucket, &v) in self.samples.iter_mut().zip(&r.app_wcrt) {
            bucket.push(v);
        }
        self.critical_entries += r.critical_entries;
        self.unsafe_instances += r.unsafe_instances.iter().sum::<u64>();
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of one application's observed
    /// response times (nearest-rank). Returns [`Time::ZERO`] when no run
    /// was recorded.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    pub fn percentile(&self, app: mcmap_model::AppId, q: f64) -> Time {
        let bucket = &self.samples[app.index()];
        if bucket.is_empty() {
            return Time::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((bucket.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(bucket.len() - 1);
        bucket[rank]
    }

    /// The median observed response time of one application.
    pub fn median(&self, app: mcmap_model::AppId) -> Time {
        self.percentile(app, 0.5)
    }
}

/// Runs `cfg.runs` seeded simulations and returns the per-application and
/// per-task maxima.
///
/// # Examples
///
/// ```
/// use mcmap_hardening::{harden, HardeningPlan};
/// use mcmap_model::{AppSet, Architecture, ExecBounds, ProcId, ProcKind, Processor, Task,
///     TaskGraph, Time};
/// use mcmap_sched::{uniform_policies, Mapping, SchedPolicy};
/// use mcmap_sim::{monte_carlo, MonteCarloConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let arch = Architecture::builder()
/// #     .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, 1e-6))
/// #     .build()?;
/// # let g = TaskGraph::builder("g", Time::from_ticks(100))
/// #     .task(Task::new("t").with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(10))))
/// #     .build()?;
/// # let apps = AppSet::new(vec![g])?;
/// # let hsys = harden(&apps, &HardeningPlan::unhardened(&apps), &arch)?;
/// # let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)])?;
/// let cfg = MonteCarloConfig { runs: 16, ..MonteCarloConfig::default() };
/// let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
/// let result = monte_carlo(&hsys, &arch, &mapping, &policies, &cfg);
/// assert_eq!(result.runs, 16);
/// assert_eq!(result.app_wcrt[0], Time::from_ticks(10));
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo(
    hsys: &HardenedSystem,
    arch: &Architecture,
    mapping: &Mapping,
    policies: &[SchedPolicy],
    cfg: &MonteCarloConfig,
) -> MonteCarloResult {
    let sim = Simulator::new(hsys, arch, mapping, policies.to_vec());
    let mut result = MonteCarloResult {
        app_wcrt: vec![Time::ZERO; hsys.apps().len()],
        task_wcrt: vec![Time::ZERO; hsys.num_tasks()],
        critical_entries: 0,
        unsafe_instances: 0,
        runs: cfg.runs,
        samples: vec![Vec::with_capacity(cfg.runs); hsys.apps().len()],
    };
    for i in 0..cfg.runs {
        let mut faults = RandomFaults::new(hsys, arch, mapping, cfg.seed.wrapping_add(i as u64))
            .with_boost(cfg.boost);
        let r = sim.run(&cfg.sim, &mut faults);
        result.merge(&r);
    }
    for bucket in &mut result.samples {
        bucket.sort_unstable();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcmap_hardening::{harden, HardeningPlan, TaskHardening};
    use mcmap_model::{AppSet, ExecBounds, ProcId, ProcKind, Processor, Task, TaskGraph};
    use mcmap_sched::uniform_policies;

    fn fixture(rate: f64, reexec: u8) -> (Architecture, HardenedSystem, Mapping) {
        let arch = Architecture::builder()
            .homogeneous(1, Processor::new("p", ProcKind::new(0), 5.0, 20.0, rate))
            .build()
            .unwrap();
        let g = TaskGraph::builder("g", Time::from_ticks(1_000))
            .task(
                Task::new("t")
                    .with_uniform_exec(1, ExecBounds::exact(Time::from_ticks(100)))
                    .with_detect_overhead(Time::from_ticks(10)),
            )
            .build()
            .unwrap();
        let apps = AppSet::new(vec![g]).unwrap();
        let mut plan = HardeningPlan::unhardened(&apps);
        if reexec > 0 {
            plan.set_by_flat_index(0, TaskHardening::reexecution(reexec));
        }
        let hsys = harden(&apps, &plan, &arch).unwrap();
        let mapping = Mapping::new(&hsys, &arch, vec![ProcId::new(0)]).unwrap();
        (arch, hsys, mapping)
    }

    #[test]
    fn fault_free_campaign_matches_single_run() {
        let (arch, hsys, mapping) = fixture(0.0, 1);
        let cfg = MonteCarloConfig {
            runs: 8,
            ..Default::default()
        };
        let r = monte_carlo(
            &hsys,
            &arch,
            &mapping,
            &uniform_policies(1, SchedPolicy::FixedPriorityPreemptive),
            &cfg,
        );
        // No faults: every run sees the nominal 110-tick execution.
        assert_eq!(r.app_wcrt[0], Time::from_ticks(110));
        assert_eq!(r.critical_entries, 0);
        assert_eq!(r.unsafe_instances, 0);
        // Degenerate distribution: every quantile equals the maximum.
        let a = mcmap_model::AppId::new(0);
        assert_eq!(r.percentile(a, 0.0), Time::from_ticks(110));
        assert_eq!(r.median(a), Time::from_ticks(110));
        assert_eq!(r.percentile(a, 1.0), Time::from_ticks(110));
    }

    #[test]
    fn boosted_faults_reveal_reexecution_worst_case() {
        let (arch, hsys, mapping) = fixture(1e-4, 1);
        let cfg = MonteCarloConfig {
            runs: 64,
            boost: 10_000.0,
            ..Default::default()
        };
        let r = monte_carlo(
            &hsys,
            &arch,
            &mapping,
            &uniform_policies(1, SchedPolicy::FixedPriorityPreemptive),
            &cfg,
        );
        // With near-certain faults, the task re-executes: 2 × 110.
        assert_eq!(r.app_wcrt[0], Time::from_ticks(220));
        assert!(r.critical_entries > 0);
        // Quantiles are monotone and bounded by the maximum.
        let a = mcmap_model::AppId::new(0);
        assert!(r.percentile(a, 0.1) <= r.median(a));
        assert!(r.median(a) <= r.percentile(a, 0.99));
        assert!(r.percentile(a, 1.0) == r.app_wcrt[0]);
    }

    #[test]
    fn maxima_grow_monotonically_with_runs() {
        let (arch, hsys, mapping) = fixture(1e-4, 2);
        let policies = uniform_policies(1, SchedPolicy::FixedPriorityPreemptive);
        let small = monte_carlo(
            &hsys,
            &arch,
            &mapping,
            &policies,
            &MonteCarloConfig {
                runs: 4,
                boost: 300.0,
                ..Default::default()
            },
        );
        let large = monte_carlo(
            &hsys,
            &arch,
            &mapping,
            &policies,
            &MonteCarloConfig {
                runs: 64,
                boost: 300.0,
                ..Default::default()
            },
        );
        assert!(large.app_wcrt[0] >= small.app_wcrt[0]);
    }
}
