//! Execution-trace recording and ASCII Gantt rendering.
//!
//! The event engine can record every execution segment (start/stop of a job
//! on its processor) plus job-level outcomes. Traces serve two purposes:
//! debugging mappings ("why did E miss?") and rendering the Fig. 1-style
//! schedules the paper draws.

use core::fmt;
use mcmap_hardening::{HTaskId, HardenedSystem};
use mcmap_model::{ProcId, Time};

/// One contiguous execution segment of a job on a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The executing task.
    pub task: HTaskId,
    /// The job's periodic instance index.
    pub instance: u64,
    /// The re-execution attempt this segment belongs to.
    pub attempt: u8,
    /// Hosting processor.
    pub proc: ProcId,
    /// Segment start time.
    pub start: Time,
    /// Segment end time (exclusive).
    pub end: Time,
}

/// Why a job left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed (possibly after re-executions).
    Completed,
    /// Discarded by the mixed-criticality dropping protocol.
    Dropped,
}

/// A job-level trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The task.
    pub task: HTaskId,
    /// The periodic instance.
    pub instance: u64,
    /// Completion or drop time.
    pub time: Time,
    /// How the job ended.
    pub outcome: JobOutcome,
}

/// A recorded execution trace: execution segments in chronological order of
/// their end times, plus job outcomes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Execution segments (each preemption splits a job into segments).
    pub segments: Vec<Segment>,
    /// Job completions and drops.
    pub jobs: Vec<JobRecord>,
    /// Times at which the system entered the critical state.
    pub critical_entries: Vec<Time>,
}

impl Trace {
    /// Segments of one processor, in order.
    pub fn on_proc(&self, proc: ProcId) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(move |s| s.proc == proc)
    }

    /// Total busy time of a processor.
    pub fn busy_time(&self, proc: ProcId) -> Time {
        self.on_proc(proc)
            .map(|s| s.end.saturating_sub(s.start))
            .sum()
    }

    /// Renders an ASCII Gantt chart of the first `horizon` ticks, one row
    /// per processor, `width` characters wide. Each cell shows the first
    /// letter of the task occupying that time slot (`.` = idle); a `!`
    /// header marks critical-state entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcmap_sim::Trace;
    /// let t = Trace::default();
    /// // An empty trace renders only idle rows.
    /// let s = t.render_gantt(&[], mcmap_model::Time::from_ticks(10), 10);
    /// assert!(s.is_empty());
    /// ```
    pub fn render_gantt(
        &self,
        names: &[(HTaskId, String, ProcId)],
        horizon: Time,
        width: usize,
    ) -> String {
        if names.is_empty() || horizon.is_zero() || width == 0 {
            return String::new();
        }
        let procs: Vec<ProcId> = {
            let mut p: Vec<ProcId> = names.iter().map(|(_, _, p)| *p).collect();
            p.sort();
            p.dedup();
            p
        };
        let label = |task: HTaskId| -> char {
            names
                .iter()
                .find(|(id, _, _)| *id == task)
                .and_then(|(_, n, _)| n.chars().next())
                .unwrap_or('?')
        };
        let scale = |t: Time| -> usize {
            ((t.ticks() as u128 * width as u128) / horizon.ticks() as u128) as usize
        };

        let mut out = String::new();
        // Critical-state marker row.
        let mut marker = vec![' '; width];
        for &t in &self.critical_entries {
            if t < horizon {
                let i = scale(t).min(width - 1);
                marker[i] = '!';
            }
        }
        out.push_str("      ");
        out.extend(marker);
        out.push('\n');

        for proc in procs {
            let mut row = vec!['.'; width];
            for s in self.on_proc(proc) {
                if s.start >= horizon {
                    continue;
                }
                let a = scale(s.start).min(width - 1);
                let b = scale(s.end.min(horizon)).max(a + 1).min(width);
                let c = label(s.task);
                for cell in &mut row[a..b] {
                    *cell = c;
                }
            }
            out.push_str(&format!("{:>4}: ", proc.to_string()));
            out.extend(row);
            out.push('\n');
        }
        out
    }

    /// Convenience: name table derived from a hardened system and mapping
    /// placements, for [`Trace::render_gantt`].
    pub fn name_table(
        hsys: &HardenedSystem,
        placement: &[ProcId],
    ) -> Vec<(HTaskId, String, ProcId)> {
        hsys.tasks()
            .map(|(id, t)| (id, t.name.clone(), placement[id.index()]))
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} segments, {} job records, {} critical entries",
            self.segments.len(),
            self.jobs.len(),
            self.critical_entries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(task: usize, proc: usize, start: u64, end: u64) -> Segment {
        Segment {
            task: HTaskId::new(task),
            instance: 0,
            attempt: 0,
            proc: ProcId::new(proc),
            start: Time::from_ticks(start),
            end: Time::from_ticks(end),
        }
    }

    #[test]
    fn busy_time_sums_segments() {
        let t = Trace {
            segments: vec![seg(0, 0, 0, 10), seg(1, 0, 15, 20), seg(2, 1, 0, 7)],
            ..Trace::default()
        };
        assert_eq!(t.busy_time(ProcId::new(0)), Time::from_ticks(15));
        assert_eq!(t.busy_time(ProcId::new(1)), Time::from_ticks(7));
        assert_eq!(t.busy_time(ProcId::new(2)), Time::ZERO);
    }

    #[test]
    fn gantt_renders_rows_per_processor() {
        let t = Trace {
            segments: vec![seg(0, 0, 0, 50), seg(1, 1, 50, 100)],
            critical_entries: vec![Time::from_ticks(50)],
            ..Trace::default()
        };
        let names = vec![
            (HTaskId::new(0), "alpha".to_string(), ProcId::new(0)),
            (HTaskId::new(1), "beta".to_string(), ProcId::new(1)),
        ];
        let s = t.render_gantt(&names, Time::from_ticks(100), 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // marker + 2 processors
        assert!(lines[0].contains('!'));
        assert!(lines[1].contains("p0"));
        assert!(lines[1].contains('a'));
        assert!(!lines[1].contains('b'));
        assert!(lines[2].contains('b'));
        // First half of p0's row busy, second half idle.
        let row0: Vec<char> = lines[1].chars().skip(6).collect();
        assert_eq!(row0[0], 'a');
        assert_eq!(row0[19], '.');
    }

    #[test]
    fn gantt_clips_to_horizon() {
        let t = Trace {
            segments: vec![seg(0, 0, 90, 500)],
            ..Trace::default()
        };
        let names = vec![(HTaskId::new(0), "x".to_string(), ProcId::new(0))];
        let s = t.render_gantt(&names, Time::from_ticks(100), 10);
        let row: Vec<char> = s.lines().nth(1).unwrap().chars().skip(6).collect();
        assert_eq!(row[9], 'x');
        assert_eq!(row[0], '.');
    }

    #[test]
    fn empty_inputs_render_nothing() {
        let t = Trace::default();
        assert_eq!(t.render_gantt(&[], Time::from_ticks(10), 10), "");
        let names = vec![(HTaskId::new(0), "x".to_string(), ProcId::new(0))];
        assert_eq!(t.render_gantt(&names, Time::ZERO, 10), "");
        assert_eq!(t.render_gantt(&names, Time::from_ticks(10), 0), "");
    }
}
